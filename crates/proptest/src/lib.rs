//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of proptest's API that its tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, implemented for integer
//!   ranges, tuples, fixed-size arrays, boxed strategies, and `&str`
//!   regex-lite patterns (character classes, `*`/`+`/`?`/`{m,n}`
//!   quantifiers, and `\PC` for "any printable character"),
//! * `proptest::collection::vec`,
//! * `any::<T>()` for the primitive types,
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   and `prop_assert_ne!` macros,
//! * [`ProptestConfig`] with a `cases` knob.
//!
//! Differences from real proptest: generation is a fixed splitmix64
//! sequence per case index (fully deterministic across runs — useful for
//! CI), and there is **no shrinking**; a failing case reports its case
//! index and the `Debug` rendering of every generated input instead of a
//! minimal counterexample.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;
pub use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only `cases` is honored by the stand-in; the other fields exist so that
/// struct-update syntax against `ProptestConfig::default()` compiles.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local-rejection limits are not enforced.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_local_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs one property body as a set of random cases.
///
/// Used by the `proptest!` macro expansion; not part of the public
/// proptest API.
#[doc(hidden)]
pub fn __run_cases(name: &str, config: &ProptestConfig, mut case: impl FnMut(u64)) {
    for i in 0..config.cases as u64 {
        // Salt the per-case seed with the test name so sibling properties
        // see different streams.
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        case(seed ^ i.wrapping_mul(0x9e3779b97f4a7c15));
    }
}

/// Defines property tests.
///
/// ```ignore
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __case_no: u64 = 0;
                $crate::__run_cases(stringify!($name), &__config, |__seed| {
                    let mut __rng = $crate::TestRng::from_seed(__seed);
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut __rng); )+
                    let __inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("\n");
                        )+
                        s
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(e) = __outcome {
                        eprintln!(
                            "proptest: property `{}` failed at case {} with inputs:\n{}",
                            stringify!($name),
                            __case_no,
                            __inputs
                        );
                        ::std::panic::resume_unwind(e);
                    }
                    __case_no += 1;
                });
            }
        )*
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

/// Like `assert!` inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Like `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Like `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when an assumption fails. The stand-in has no
/// rejection bookkeeping, so a failed assumption simply returns from the
/// case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
