//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A size specification for collections. Converts from `Range<usize>` and
/// from a fixed `usize`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let s = vec(0u8..4, 1..8);
        let mut r = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        // The shape used by tests/properties.rs.
        let s = vec(
            (0u8..3, [0u8..4, 0u8..4, 0u8..4], crate::any::<bool>()),
            1..25,
        );
        let mut r = TestRng::from_seed(11);
        let v = s.generate(&mut r);
        assert!(!v.is_empty());
    }
}
