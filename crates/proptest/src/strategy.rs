//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous collections of strategies).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy producing `T`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by `prop_oneof!`.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies (the `prop_oneof!` macro).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                if hi == u64::MAX {
                    return rng.next_u64() as $t;
                }
                rng.range_u64(lo, hi + 1) as $t
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i64(self.start as i64, self.end as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                if hi == i64::MAX {
                    return rng.next_u64() as $t;
                }
                rng.range_i64(lo, hi + 1) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// `&str` regex-lite patterns generate matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(1234)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (-4i32..4).generate(&mut r);
            assert!((-4..4).contains(&w));
        }
    }

    #[test]
    fn tuple_and_array() {
        let mut r = rng();
        let (a, b): (u8, bool) = (0u8..4, crate::any::<bool>()).generate(&mut r);
        assert!(a < 4);
        let _ = b;
        let arr = [0u8..4, 0u8..4, 0u8..4].generate(&mut r);
        assert!(arr.iter().all(|&v| v < 4));
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = OneOf::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_applies() {
        let s = (0u8..10).prop_map(|v| v as u32 * 2);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
