//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut r = TestRng::from_seed(5);
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..100 {
            if s.generate(&mut r) {
                t += 1;
            }
        }
        assert!(t > 20 && t < 80, "suspiciously skewed: {t}/100");
    }
}
