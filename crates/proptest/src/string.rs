//! Regex-lite string generation.
//!
//! Real proptest compiles `&str` strategies through the `regex-syntax`
//! crate. The stand-in supports the subset the workspace's tests use:
//!
//! * literal characters and `\`-escapes,
//! * character classes `[...]` with ranges (`a-z`) and escaped members
//!   (a trailing `-` is a literal),
//! * `\PC` — "any printable character" (non-control; includes a few
//!   multi-byte code points to exercise UTF-8 handling),
//! * `.` — treated like `\PC`,
//! * quantifiers `*`, `+`, `?`, `{m}`, and `{m,n}` (`*`/`+` cap repeats
//!   at 16).
//!
//! Unsupported syntax (alternation, groups, anchors, negated classes)
//! panics with a clear message rather than silently generating garbage.

use crate::test_runner::TestRng;

enum Atom {
    Lit(char),
    Class(Vec<char>),
    Printable,
}

struct Elem {
    atom: Atom,
    min: usize,
    /// Inclusive.
    max: usize,
}

fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
    pool.extend(['é', 'λ', '→', '×', '中', '�']);
    pool
}

fn parse(pattern: &str) -> Vec<Elem> {
    let mut elems = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let m = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in /{pattern}/"));
                    match m {
                        ']' => break,
                        '\\' => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in /{pattern}/"));
                            members.push(esc);
                            prev = Some(esc);
                        }
                        '^' if prev.is_none() && members.is_empty() => {
                            panic!("negated classes are not supported by the proptest stand-in: /{pattern}/")
                        }
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "bad range {lo}-{hi} in /{pattern}/");
                            // `lo` is already in `members`; add the rest.
                            let mut x = lo as u32 + 1;
                            while x <= hi as u32 {
                                if let Some(ch) = char::from_u32(x) {
                                    members.push(ch);
                                }
                                x += 1;
                            }
                        }
                        other => {
                            members.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!members.is_empty(), "empty class in /{pattern}/");
                Atom::Class(members)
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in /{pattern}/"));
                match esc {
                    'P' => {
                        // \PC = "not a control character".
                        let prop = chars.next();
                        assert_eq!(
                            prop,
                            Some('C'),
                            "only \\PC is supported by the proptest stand-in: /{pattern}/"
                        );
                        Atom::Printable
                    }
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut m: Vec<char> = ('a'..='z').collect();
                        m.extend('A'..='Z');
                        m.extend('0'..='9');
                        m.push('_');
                        Atom::Class(m)
                    }
                    's' => Atom::Class(vec![' ', '\t']),
                    other => Atom::Lit(other),
                }
            }
            '.' => Atom::Printable,
            '(' | ')' | '|' | '^' | '$' => {
                panic!("regex feature {c:?} is not supported by the proptest stand-in: /{pattern}/")
            }
            other => Atom::Lit(other),
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut lo = String::new();
                let mut hi = String::new();
                let mut in_hi = false;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => in_hi = true,
                        Some(d) if d.is_ascii_digit() => {
                            if in_hi {
                                hi.push(d)
                            } else {
                                lo.push(d)
                            }
                        }
                        other => panic!("bad quantifier near {other:?} in /{pattern}/"),
                    }
                }
                let m: usize = lo.parse().expect("quantifier lower bound");
                let n: usize = if in_hi {
                    hi.parse().expect("quantifier upper bound")
                } else {
                    m
                };
                assert!(m <= n, "bad quantifier {{{m},{n}}} in /{pattern}/");
                (m, n)
            }
            _ => (1, 1),
        };
        elems.push(Elem { atom, min, max });
    }
    elems
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let elems = parse(pattern);
    let pool = printable_pool();
    let mut out = String::new();
    for e in &elems {
        let reps = rng.range_u64(e.min as u64, e.max as u64 + 1) as usize;
        for _ in 0..reps {
            match &e.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(members) => out.push(*rng.pick(members)),
                Atom::Printable => out.push(*rng.pick(&pool)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(31337)
    }

    #[test]
    fn symbol_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9-]{0,10}", &mut r);
            assert!(!s.is_empty() && s.len() <= 11);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_star() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn paren_soup_class() {
        let mut r = rng();
        let allowed: Vec<char> = {
            let mut v = vec!['(', ')', 'p', '-', '<', '>', '=', '^', ' ', '{', '}'];
            v.extend('a'..='z');
            v.extend('0'..='9');
            v
        };
        for _ in 0..200 {
            let s = generate("[()p\\-<>=^ a-z0-9{}]*", &mut r);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_quantifier() {
        let mut r = rng();
        assert_eq!(generate("a{4}", &mut r), "aaaa");
    }
}
