//! Deterministic random number generation for property cases.

/// A splitmix64 generator. Deterministic: the same seed always produces
/// the same value stream, so failing cases reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[lo, hi)`. Panics if the range is empty.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }

    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_i64_handles_negatives() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }
}
