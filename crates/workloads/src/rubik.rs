//! Rubik — the cube-solver workload.
//!
//! James Allen's 70-rule Rubik program gave the paper its best speed-up
//! (12.4× at 1+13). The original source is lost; this rebuild keeps the
//! match profile: a facelet cube lives in working memory, every move firing
//! rewrites ~20 facelet WMEs (a burst of 40+ WME changes per cycle), the
//! move productions have deep LHS chains (21 condition elements) with
//! single-WME alpha memories — lots of cheap, independent node activations
//! and no cross-products.
//!
//! The 18 move productions are *generated* from facelet permutations that
//! are themselves derived from 3D sticker rotation (correct by
//! construction, verified by `move⁴ = identity` tests). Solving plans come
//! from an IDDFS solver for short scrambles or scramble inversion for long
//! benchmark runs; either way the plan is *executed and verified entirely
//! by rule firings*.

use crate::rng::SplitMix64;
use crate::{SetupVal, SetupWme, Workload};
use engine::Engine;
use ops5::Value;
use std::fmt::Write as _;

/// Total sticker count.
pub const N_FACELETS: usize = 54;

/// Face order: U, D, F, B, L, R.
pub const FACE_NAMES: [char; 6] = ['u', 'd', 'f', 'b', 'l', 'r'];

type V3 = [i32; 3];

/// (normal, right, down) basis per face, fixing the facelet numbering:
/// `face*9 + (down+1)*3 + (right+1)`.
const FACES: [(V3, V3, V3); 6] = [
    ([0, 1, 0], [1, 0, 0], [0, 0, 1]),    // U
    ([0, -1, 0], [1, 0, 0], [0, 0, -1]),  // D
    ([0, 0, 1], [1, 0, 0], [0, -1, 0]),   // F
    ([0, 0, -1], [-1, 0, 0], [0, -1, 0]), // B
    ([-1, 0, 0], [0, 0, 1], [0, -1, 0]),  // L
    ([1, 0, 0], [0, 0, -1], [0, -1, 0]),  // R
];

fn dot(a: V3, b: V3) -> i32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn add(a: V3, b: V3) -> V3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: V3, k: i32) -> V3 {
    [a[0] * k, a[1] * k, a[2] * k]
}

fn facelet_index(cell: V3, normal: V3) -> usize {
    let face = FACES
        .iter()
        .position(|(n, _, _)| *n == normal)
        .expect("normal is a face normal");
    let (_, r, d) = FACES[face];
    let rc = dot(cell, r);
    let dc = dot(cell, d);
    face * 9 + ((dc + 1) * 3 + (rc + 1)) as usize
}

/// Clockwise quarter-turn rotation (viewed from outside the face).
fn rotate(face: usize, v: V3) -> V3 {
    let [x, y, z] = v;
    match face {
        0 => [-z, y, x], // U (from +y)
        1 => [z, y, -x], // D (from -y)
        2 => [y, -x, z], // F (from +z)
        3 => [-y, x, z], // B (from -z)
        4 => [x, -z, y], // L (from -x)
        5 => [x, z, -y], // R (from +x)
        _ => unreachable!(),
    }
}

/// A move: face 0..6, quarter turns 1..=3 (3 = counter-clockwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Move {
    pub face: u8,
    pub turns: u8,
}

impl Move {
    pub fn name(&self) -> String {
        format!("{}{}", FACE_NAMES[self.face as usize], self.turns)
    }

    pub fn inverse(&self) -> Move {
        Move {
            face: self.face,
            turns: 4 - self.turns,
        }
    }

    /// All 18 distinct moves.
    pub fn all() -> Vec<Move> {
        let mut v = Vec::with_capacity(18);
        for face in 0..6u8 {
            for turns in 1..=3u8 {
                v.push(Move { face, turns });
            }
        }
        v
    }
}

/// Facelet permutation of a quarter turn of `face`: `perm[i]` is where the
/// sticker at `i` moves.
pub fn quarter_perm(face: usize) -> [usize; N_FACELETS] {
    let mut perm = [0usize; N_FACELETS];
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }
    let (n, _r, _d) = FACES[face];
    // Every sticker on every face; rotate those in the moving layer.
    for (fi, (fnorm, fr, fd)) in FACES.iter().enumerate() {
        for b in -1..=1i32 {
            for a in -1..=1i32 {
                let cell = add(*fnorm, add(scale(*fr, a), scale(*fd, b)));
                // In the moving layer iff the cell's coordinate along the
                // move axis equals the face normal's.
                let along = dot(cell, n);
                let nn = dot(n, n); // 1
                debug_assert_eq!(nn, 1);
                if along != 1 {
                    continue;
                }
                let from = facelet_index(cell, *fnorm);
                let to = facelet_index(rotate(face, cell), rotate(face, *fnorm));
                perm[from] = to;
                let _ = fi;
            }
        }
    }
    perm
}

/// Permutation of a full move (1..3 quarter turns).
pub fn move_perm(m: Move) -> [usize; N_FACELETS] {
    let q = quarter_perm(m.face as usize);
    let mut perm = [0usize; N_FACELETS];
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }
    for _ in 0..m.turns {
        let mut next = [0usize; N_FACELETS];
        for i in 0..N_FACELETS {
            next[i] = q[perm[i]];
        }
        perm = next;
    }
    perm
}

/// The cube: 54 sticker colors (color = face index of origin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cube {
    pub stickers: [u8; N_FACELETS],
}

impl Default for Cube {
    fn default() -> Self {
        Self::solved()
    }
}

impl Cube {
    pub fn solved() -> Cube {
        let mut stickers = [0u8; N_FACELETS];
        for (i, s) in stickers.iter_mut().enumerate() {
            *s = (i / 9) as u8;
        }
        Cube { stickers }
    }

    pub fn apply(&mut self, m: Move) {
        let perm = move_perm(m);
        let old = self.stickers;
        for (i, &to) in perm.iter().enumerate() {
            self.stickers[to] = old[i];
        }
    }

    pub fn apply_seq(&mut self, seq: &[Move]) {
        for &m in seq {
            self.apply(m);
        }
    }

    pub fn is_solved(&self) -> bool {
        self.stickers
            .iter()
            .enumerate()
            .all(|(i, &c)| c == (i / 9) as u8)
    }
}

/// A random scramble with no two consecutive turns of the same face.
pub fn scramble(seed: u64, len: usize) -> Vec<Move> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(len);
    let mut last_face = 6u8;
    for _ in 0..len {
        let mut face = rng.below(6) as u8;
        while face == last_face {
            face = rng.below(6) as u8;
        }
        last_face = face;
        out.push(Move {
            face,
            turns: rng.below(3) as u8 + 1,
        });
    }
    out
}

/// Inverse of a move sequence (solves what the sequence scrambled).
pub fn invert(seq: &[Move]) -> Vec<Move> {
    seq.iter().rev().map(|m| m.inverse()).collect()
}

/// Iterative-deepening DFS solver in the half-turn metric, pruning
/// consecutive same-face turns. Practical to depth ~6.
pub fn solve_iddfs(cube: &Cube, max_depth: usize) -> Option<Vec<Move>> {
    if cube.is_solved() {
        return Some(Vec::new());
    }
    let moves = Move::all();
    for depth in 1..=max_depth {
        let mut path = Vec::with_capacity(depth);
        let mut c = cube.clone();
        if dfs(&mut c, depth, 6, &moves, &mut path) {
            return Some(path);
        }
    }
    None
}

fn dfs(cube: &mut Cube, depth: usize, last_face: u8, moves: &[Move], path: &mut Vec<Move>) -> bool {
    if depth == 0 {
        return cube.is_solved();
    }
    for &m in moves {
        if m.face == last_face {
            continue;
        }
        let before = cube.clone();
        cube.apply(m);
        path.push(m);
        if dfs(cube, depth - 1, m.face, moves, path) {
            return true;
        }
        path.pop();
        *cube = before;
    }
    false
}

/// How the solving plan is produced.
#[derive(Debug, Clone, Copy)]
pub enum PlanMode {
    /// Genuine search (short scrambles; depth-bounded).
    Iddfs { max_depth: usize },
    /// Scramble inversion (long benchmark runs; the plan is still executed
    /// and verified entirely by rule firings).
    Inverse,
}

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct RubikConfig {
    pub seed: u64,
    pub scramble_len: usize,
    pub plan: PlanMode,
}

impl Default for RubikConfig {
    fn default() -> Self {
        RubikConfig {
            seed: 7,
            scramble_len: 20,
            plan: PlanMode::Inverse,
        }
    }
}

/// Generates the OPS5 source for the Rubik program.
pub fn generate_source() -> String {
    let mut s = String::new();
    s.push_str("(literalize f pos color)\n");
    s.push_str("(literalize plan step move)\n");
    s.push_str("(literalize counter value)\n");
    s.push_str("(literalize phase name)\n");
    s.push_str("(literalize face-ok face)\n");

    // 18 move-application productions.
    for m in Move::all() {
        let perm = move_perm(m);
        let affected: Vec<usize> = (0..N_FACELETS).filter(|&i| perm[i] != i).collect();
        // inv[j] = source position whose sticker lands on j.
        let mut inv = [usize::MAX; N_FACELETS];
        for &i in &affected {
            inv[perm[i]] = i;
        }
        // One production per move: the plan step and counter drive it
        // directly, so a whole move is a single recognize-act cycle whose
        // RHS pipelines ~41 WME changes into the matcher — the burst that
        // gives Rubik its parallelism.
        let _ = writeln!(s, "(p apply-{}", m.name());
        s.push_str("  (counter ^value <s>)\n");
        let _ = writeln!(s, "  (plan ^step <s> ^move {})", m.name());
        for &p in &affected {
            let _ = writeln!(s, "  (f ^pos {p} ^color <c{p}>)");
        }
        s.push_str("  -->\n");
        for (k, &j) in affected.iter().enumerate() {
            let src = inv[j];
            debug_assert_ne!(src, usize::MAX);
            let _ = writeln!(s, "  (modify {} ^color <c{src}>)", k + 3);
        }
        s.push_str("  (modify 1 ^value (compute <s> + 1)))\n");
    }

    // Plan driver: when no plan step remains, switch to the check phase.
    s.push_str(
        "(p plan-exhausted
  (counter ^value <s>)
  - (plan ^step <s>)
  -->
  (remove 1)
  (make phase ^name check))\n",
    );

    // Solved-face detection, one production per face.
    for (face, face_name) in FACE_NAMES.iter().enumerate() {
        let base = face * 9;
        let _ = writeln!(s, "(p solved-{face_name}");
        s.push_str("  (phase ^name check)\n");
        let _ = writeln!(s, "  (f ^pos {} ^color <c>)", base + 4);
        for k in 0..9 {
            if k == 4 {
                continue;
            }
            let _ = writeln!(s, "  (f ^pos {} ^color <c>)", base + k);
        }
        s.push_str("  -->\n");
        let _ = writeln!(s, "  (make face-ok ^face {face}))");
    }
    s.push_str(
        "(p all-solved
  (phase ^name check)
  (face-ok ^face 0) (face-ok ^face 1) (face-ok ^face 2)
  (face-ok ^face 3) (face-ok ^face 4) (face-ok ^face 5)
  -->
  (write cube solved (crlf))
  (halt))\n",
    );
    s
}

/// Builds the complete Rubik workload.
pub fn workload(cfg: RubikConfig) -> Workload {
    let scr = scramble(cfg.seed, cfg.scramble_len);
    let mut cube = Cube::solved();
    cube.apply_seq(&scr);
    let plan = match cfg.plan {
        PlanMode::Iddfs { max_depth } => {
            solve_iddfs(&cube, max_depth).expect("IDDFS failed: scramble longer than max_depth?")
        }
        PlanMode::Inverse => invert(&scr),
    };
    let mut check = cube.clone();
    check.apply_seq(&plan);
    assert!(check.is_solved(), "plan must solve the cube");

    let mut setup = Vec::new();
    for (i, &c) in cube.stickers.iter().enumerate() {
        setup.push(SetupWme::new(
            "f",
            &[
                ("pos", SetupVal::Int(i as i64)),
                ("color", SetupVal::Int(c as i64)),
            ],
        ));
    }
    for (k, m) in plan.iter().enumerate() {
        setup.push(SetupWme::new(
            "plan",
            &[
                ("step", SetupVal::Int(k as i64)),
                ("move", SetupVal::sym(m.name())),
            ],
        ));
    }
    setup.push(SetupWme::new("counter", &[("value", SetupVal::Int(0))]));

    let plan_len = plan.len() as u64;
    Workload {
        name: format!("rubik(scramble={}, plan={})", cfg.scramble_len, plan_len),
        source: generate_source(),
        setup,
        // One cycle per move, plus the check phase.
        max_cycles: plan_len + 20,
        validate: Box::new(validate_solved),
    }
}

fn validate_solved(e: &Engine) -> std::result::Result<(), String> {
    if !e.output().iter().any(|l| l.contains("cube solved")) {
        return Err("missing 'cube solved' output".into());
    }
    // Read the facelets back out of working memory.
    let fclass = e.prog.symbols.get("f").ok_or("no f class")?;
    let wmes = e.wm().of_class(fclass);
    if wmes.len() != N_FACELETS {
        return Err(format!("expected 54 facelets, found {}", wmes.len()));
    }
    for w in wmes {
        let pos = match w.field(0) {
            Value::Int(i) => i as usize,
            other => return Err(format!("bad pos {other:?}")),
        };
        let color = match w.field(1) {
            Value::Int(i) => i as u8,
            other => return Err(format!("bad color {other:?}")),
        };
        if color != (pos / 9) as u8 {
            return Err(format!("facelet {pos} has color {color}, cube not solved"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workload, MatcherChoice};

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn four_quarter_turns_are_identity() {
        for face in 0..6 {
            let mut c = Cube::solved();
            // Scramble first so the check is not vacuous.
            c.apply_seq(&scramble(1, 10));
            let before = c.clone();
            for _ in 0..4 {
                c.apply(Move {
                    face: face as u8,
                    turns: 1,
                });
            }
            assert_eq!(c, before, "face {face}");
        }
    }

    #[test]
    fn move_and_inverse_cancel() {
        for m in Move::all() {
            let mut c = Cube::solved();
            c.apply_seq(&scramble(2, 8));
            let before = c.clone();
            c.apply(m);
            c.apply(m.inverse());
            assert_eq!(c, before, "{m:?}");
        }
    }

    #[test]
    fn moves_preserve_color_counts_and_centers() {
        for m in Move::all() {
            let mut c = Cube::solved();
            c.apply(m);
            let mut counts = [0u8; 6];
            for &s in &c.stickers {
                counts[s as usize] += 1;
            }
            assert!(counts.iter().all(|&n| n == 9), "{m:?}");
            for face in 0..6 {
                assert_eq!(c.stickers[face * 9 + 4], face as u8, "center moved: {m:?}");
            }
        }
    }

    #[test]
    fn quarter_turn_moves_exactly_20_stickers() {
        for face in 0..6 {
            let p = quarter_perm(face);
            let moved = (0..N_FACELETS).filter(|&i| p[i] != i).count();
            assert_eq!(moved, 20, "face {face}");
        }
    }

    #[test]
    fn scramble_inversion_solves() {
        let s = scramble(3, 25);
        let mut c = Cube::solved();
        c.apply_seq(&s);
        assert!(!c.is_solved());
        c.apply_seq(&invert(&s));
        assert!(c.is_solved());
    }

    #[test]
    fn iddfs_finds_short_solutions() {
        let s = scramble(4, 3);
        let mut c = Cube::solved();
        c.apply_seq(&s);
        let sol = solve_iddfs(&c, 3).expect("solvable in 3");
        assert!(sol.len() <= 3);
        c.apply_seq(&sol);
        assert!(c.is_solved());
    }

    #[test]
    fn rubik_program_solves_cube_via_rules() {
        let cfg = RubikConfig {
            seed: 11,
            scramble_len: 4,
            plan: PlanMode::Inverse,
        };
        let w = workload(cfg);
        let (eng, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
        assert!(eng.output().iter().any(|l| l.contains("cube solved")));
    }

    #[test]
    fn rubik_with_iddfs_plan() {
        let cfg = RubikConfig {
            seed: 5,
            scramble_len: 3,
            plan: PlanMode::Iddfs { max_depth: 3 },
        };
        let w = workload(cfg);
        let (_eng, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
    }
}
