//! # workloads — the paper's three benchmark production systems, rebuilt
//!
//! The paper evaluates PSM-E on Weaver (VLSI routing, 637 rules), Rubik
//! (cube solver, 70 rules), and Tourney (tournament scheduling, 17 rules).
//! The original sources are not available, so this crate rebuilds each as a
//! *real working program* with the same match profile (see DESIGN.md §3):
//!
//! * [`rubik`] — a facelet-model Rubik's cube in working memory; the 18 move
//!   productions are generated from 3D rotation permutations; plans come
//!   from an IDDFS solver (short scrambles) or scramble inversion (long
//!   benchmark runs). High activation rate, no cross-products — the
//!   best-speedup program, as in the paper.
//! * [`tourney`] — round-robin tournament scheduling. The pathological
//!   variant pairs teams through condition elements with *no common
//!   variables* (the paper's "culprit productions"), driving every token of
//!   the pairing join into one hash line; the *fixed* variant encodes the
//!   circle-method pairings in working memory, giving every join equality
//!   tests — the paper's "modifying two productions using domain specific
//!   knowledge" (2.7× → 5.1×).
//! * [`weaver`] — a generated VLSI grid router: Lee-style wavefront
//!   expansion over a two-layer grid with vias, rule variants specialized by
//!   direction × layer × net class to reach Weaver's ~600-rule scale.
//! * [`synth`] — parameterized synthetic workloads for ablation benches.
//!
//! All workloads share the [`Workload`] interface: OPS5 source + initial
//! working memory + a semantic validator, runnable against any matcher via
//! [`build_engine`].

pub mod rng;
pub mod rubik;
pub mod synth;
pub mod tourney;
pub mod weaver;

use engine::{Engine, EngineBuilder, MatcherKind};
use ops5::{Result, Value};
use psm::trace::RunTrace;
use psm::PsmConfig;
use std::sync::{Arc, Mutex};

/// A setup value (pre-symbol-table).
#[derive(Debug, Clone, PartialEq)]
pub enum SetupVal {
    Sym(String),
    Int(i64),
}

impl SetupVal {
    pub fn sym(s: impl Into<String>) -> SetupVal {
        SetupVal::Sym(s.into())
    }
}

/// One initial working-memory element.
#[derive(Debug, Clone)]
pub struct SetupWme {
    pub class: String,
    pub sets: Vec<(String, SetupVal)>,
}

impl SetupWme {
    pub fn new(class: &str, sets: &[(&str, SetupVal)]) -> SetupWme {
        SetupWme {
            class: class.to_string(),
            sets: sets
                .iter()
                .map(|(a, v)| (a.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Post-run semantic check (solved cube, valid schedule, legal routes).
pub type Validator = Box<dyn Fn(&Engine) -> std::result::Result<(), String> + Send + Sync>;

/// A complete benchmark program: source, initial WM, cycle budget, and a
/// semantic validator run after the engine stops.
pub struct Workload {
    pub name: String,
    pub source: String,
    pub setup: Vec<SetupWme>,
    pub max_cycles: u64,
    /// Post-run semantic check (solved cube, valid schedule, legal routes).
    pub validate: Validator,
}

/// Which match engine to drive a workload with.
#[derive(Clone)]
pub enum MatcherChoice {
    /// vs1: sequential, linear-list memories.
    Vs1,
    /// vs2: sequential, global hash-table memories.
    Vs2,
    /// The interpretive lisp-style baseline.
    Lisp,
    /// PSM-E with real threads.
    Psm(PsmConfig),
    /// col: columnar set-at-a-time matcher.
    Col,
    /// Sequential trace recorder (feeds the Multimax simulator).
    Trace(Arc<Mutex<RunTrace>>),
}

impl MatcherChoice {
    pub fn label(&self) -> &'static str {
        match self {
            MatcherChoice::Vs1 => "vs1",
            MatcherChoice::Vs2 => "vs2",
            MatcherChoice::Lisp => "lisp",
            MatcherChoice::Psm(_) => "psm-e",
            MatcherChoice::Col => "col",
            MatcherChoice::Trace(_) => "trace",
        }
    }

    /// The [`MatcherKind`] this choice maps to.
    pub fn kind(&self) -> MatcherKind {
        match self.clone() {
            MatcherChoice::Vs1 => MatcherKind::Vs1,
            MatcherChoice::Vs2 => MatcherKind::Vs2(rete::HashMemConfig::default()),
            MatcherChoice::Lisp => MatcherKind::Lisp,
            MatcherChoice::Psm(cfg) => MatcherKind::Psm(cfg),
            MatcherChoice::Col => MatcherKind::Col,
            MatcherChoice::Trace(sink) => MatcherKind::Trace {
                buckets: 32768,
                sink,
            },
        }
    }
}

/// Builds an engine for a workload: parses the source, compiles the network,
/// installs the chosen matcher, and loads the initial working memory.
pub fn build_engine(w: &Workload, choice: &MatcherChoice) -> Result<Engine> {
    build_engine_with(w, choice, None)
}

/// [`build_engine`] with explicit network compile options (beta-prefix
/// sharing / unlinking); `None` keeps the builder's default resolution
/// (environment knobs for non-trace matchers).
pub fn build_engine_with(
    w: &Workload,
    choice: &MatcherChoice,
    options: Option<rete::NetworkOptions>,
) -> Result<Engine> {
    build_engine_obs(w, choice, options, obs::ObsConfig::default())
}

/// [`build_engine_with`] plus an observability configuration — the profiling
/// harnesses build the same engine twice, instruments off and on, to measure
/// overhead.
pub fn build_engine_obs(
    w: &Workload,
    choice: &MatcherChoice,
    options: Option<rete::NetworkOptions>,
    obs_cfg: obs::ObsConfig,
) -> Result<Engine> {
    let mut b = EngineBuilder::from_source(&w.source)?
        .matcher(choice.kind())
        .obs(obs_cfg);
    if let Some(o) = options {
        b = b.network_options(o);
    }
    let mut eng = b.build()?;
    for wme in &w.setup {
        let sets: Vec<(String, Value)> = wme
            .sets
            .iter()
            .map(|(a, v)| {
                let val = match v {
                    SetupVal::Sym(s) => eng.sym(s),
                    SetupVal::Int(i) => Value::Int(*i),
                };
                (a.clone(), val)
            })
            .collect();
        let set_refs: Vec<(&str, Value)> = sets.iter().map(|(a, v)| (a.as_str(), *v)).collect();
        eng.make_wme(&wme.class, &set_refs)?;
    }
    Ok(eng)
}

/// Runs a workload to completion and validates the outcome. Returns the
/// engine (for stats inspection) and the run result.
pub fn run_workload(w: &Workload, choice: &MatcherChoice) -> Result<(Engine, engine::RunResult)> {
    let mut eng = build_engine(w, choice)?;
    let res = eng.run(w.max_cycles)?;
    if let Err(e) = (w.validate)(&eng) {
        return Err(ops5::Ops5Error::Runtime(format!(
            "workload {} failed validation under {}: {}",
            w.name,
            choice.label(),
            e
        )));
    }
    Ok((eng, res))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_workload() -> Workload {
        Workload {
            name: "counter".into(),
            source: "(p count (c ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
                     (p done (c ^n <n> ^limit <n>) --> (write done (crlf)) (halt))"
                .into(),
            setup: vec![SetupWme::new(
                "c",
                &[("n", SetupVal::Int(0)), ("limit", SetupVal::Int(4))],
            )],
            max_cycles: 100,
            validate: Box::new(|e: &Engine| {
                if e.output().iter().any(|l| l.contains("done")) {
                    Ok(())
                } else {
                    Err("missing done output".into())
                }
            }),
        }
    }

    #[test]
    fn run_workload_all_engines() {
        let w = counter_workload();
        for choice in [
            MatcherChoice::Vs1,
            MatcherChoice::Vs2,
            MatcherChoice::Lisp,
            MatcherChoice::Psm(PsmConfig::default()),
            MatcherChoice::Col,
        ] {
            let (eng, res) = run_workload(&w, &choice).unwrap();
            assert_eq!(res.cycles, 5, "engine {}", choice.label());
            assert_eq!(eng.cycles(), 5);
        }
    }

    #[test]
    fn trace_choice_records() {
        let w = counter_workload();
        let sink = Arc::new(Mutex::new(RunTrace::default()));
        let (_eng, res) = run_workload(&w, &MatcherChoice::Trace(sink.clone())).unwrap();
        assert_eq!(res.cycles, 5);
        let t = sink.lock().unwrap();
        assert!(t.total_tasks() > 5);
    }

    #[test]
    fn validation_failure_reported() {
        let mut w = counter_workload();
        w.validate = Box::new(|_| Err("always fails".into()));
        assert!(run_workload(&w, &MatcherChoice::Vs2).is_err());
    }
}
