//! Synthetic workloads for ablation benchmarks.
//!
//! These isolate single phenomena the paper discusses: cross-product joins
//! (hash-line serialization), wide independent matches (best-case
//! parallelism), long dependency chains (no parallelism), and memory-size
//! scaling (vs1 vs vs2 gap).

use crate::{SetupVal, SetupWme, Workload};
use engine::Engine;

fn expect_output(marker: &'static str) -> crate::Validator {
    Box::new(move |e: &Engine| {
        if e.output().iter().any(|l| l.contains(marker)) {
            Ok(())
        } else {
            Err(format!("missing '{marker}' output"))
        }
    })
}

/// Cross-product pathology: pairs every `a` with every `b` (no shared
/// variables), consuming pairs one per cycle.
pub fn cross_product(n: usize) -> Workload {
    let source = "(p pair
  (ctl ^left <k>)
  (a ^v <x> ^used no)
  (b ^w <y>)
  - (hit ^x <x> ^y <y>)
  -->
  (make hit ^x <x> ^y <y>)
  (modify 1 ^left (compute <k> - 1)))
(p done
  (ctl ^left 0)
  -->
  (write pairs done (crlf))
  (halt))"
        .to_string();
    let mut setup = Vec::new();
    for i in 0..n {
        setup.push(SetupWme::new(
            "a",
            &[
                ("v", SetupVal::Int(i as i64)),
                ("used", SetupVal::sym("no")),
            ],
        ));
        setup.push(SetupWme::new("b", &[("w", SetupVal::Int(i as i64))]));
    }
    setup.push(SetupWme::new(
        "ctl",
        &[("left", SetupVal::Int((n * n) as i64))],
    ));
    Workload {
        name: format!("synth-cross-product({n})"),
        source,
        setup,
        max_cycles: (n * n) as u64 + 10,
        validate: expect_output("pairs done"),
    }
}

/// Wide independent work: `groups` independent keyed joins, each consumed
/// once; friendly to parallel match.
pub fn wide_independent(groups: usize) -> Workload {
    let source = "(p join
  (ctl ^left <k>)
  (a ^key <g> ^done no)
  (b ^key <g>)
  -->
  (modify 2 ^done yes)
  (modify 1 ^left (compute <k> - 1)))
(p done
  (ctl ^left 0)
  -->
  (write wide done (crlf))
  (halt))"
        .to_string();
    let mut setup = Vec::new();
    for g in 0..groups {
        setup.push(SetupWme::new(
            "a",
            &[
                ("key", SetupVal::Int(g as i64)),
                ("done", SetupVal::sym("no")),
            ],
        ));
        setup.push(SetupWme::new("b", &[("key", SetupVal::Int(g as i64))]));
    }
    setup.push(SetupWme::new(
        "ctl",
        &[("left", SetupVal::Int(groups as i64))],
    ));
    Workload {
        name: format!("synth-wide({groups})"),
        source,
        setup,
        max_cycles: groups as u64 + 10,
        validate: expect_output("wide done"),
    }
}

/// A pure dependency chain: token `i` enables token `i+1`.
pub fn long_chain(depth: usize) -> Workload {
    let source = "(p step
  (tok ^n <n> ^limit > <n>)
  -->
  (modify 1 ^n (compute <n> + 1)))
(p done
  (tok ^n <n> ^limit <n>)
  -->
  (write chain done (crlf))
  (halt))"
        .to_string();
    let setup = vec![SetupWme::new(
        "tok",
        &[
            ("n", SetupVal::Int(0)),
            ("limit", SetupVal::Int(depth as i64)),
        ],
    )];
    Workload {
        name: format!("synth-chain({depth})"),
        source,
        setup,
        max_cycles: depth as u64 + 10,
        validate: expect_output("chain done"),
    }
}

/// Memory-size scaling: one join whose right memory holds `m` tokens per
/// key; exercises the vs1/vs2 gap (Table 4-2's mechanism).
pub fn fat_memories(keys: usize, per_key: usize) -> Workload {
    let source = "(p probe
  (q ^key <g> ^served no)
  (item ^key <g> ^v <v>)
  -->
  (modify 1 ^served yes))
(p finish
  (ctl ^tag go)
  - (q ^served no)
  -->
  (write fat done (crlf))
  (halt))"
        .to_string();
    let mut setup = Vec::new();
    for k in 0..keys {
        for v in 0..per_key {
            setup.push(SetupWme::new(
                "item",
                &[
                    ("key", SetupVal::Int(k as i64)),
                    ("v", SetupVal::Int(v as i64)),
                ],
            ));
        }
        setup.push(SetupWme::new(
            "q",
            &[
                ("key", SetupVal::Int(k as i64)),
                ("served", SetupVal::sym("no")),
            ],
        ));
    }
    setup.push(SetupWme::new("ctl", &[("tag", SetupVal::sym("go"))]));
    Workload {
        name: format!("synth-fat({keys}x{per_key})"),
        source,
        setup,
        max_cycles: (keys * 2) as u64 + 20,
        validate: expect_output("fat done"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workload, MatcherChoice};
    use psm::PsmConfig;

    #[test]
    fn cross_product_completes() {
        let w = cross_product(4);
        let (_e, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
        assert_eq!(res.cycles, 17, "16 pairs + done");
    }

    #[test]
    fn wide_completes_under_parallel_matcher() {
        let w = wide_independent(12);
        let (_e, res) = run_workload(&w, &MatcherChoice::Psm(PsmConfig::default())).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
    }

    #[test]
    fn chain_completes() {
        let w = long_chain(25);
        let (_e, res) = run_workload(&w, &MatcherChoice::Vs1).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
        assert_eq!(res.cycles, 26);
    }

    #[test]
    fn fat_memories_completes() {
        let w = fat_memories(5, 20);
        let (_e, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
    }

    #[test]
    fn vs1_examines_more_than_vs2_on_fat_memories() {
        let w = fat_memories(8, 30);
        let (e1, _) = run_workload(&w, &MatcherChoice::Vs1).unwrap();
        let w = fat_memories(8, 30);
        let (e2, _) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        let s1 = e1.match_stats();
        let s2 = e2.match_stats();
        assert!(
            s1.opp_tokens_right > s2.opp_tokens_right,
            "vs1 {} vs vs2 {}",
            s1.opp_tokens_right,
            s2.opp_tokens_right
        );
    }
}
