//! Tourney — the tournament-scheduling workload.
//!
//! Bill Barabash's 17-rule Tourney resisted every speed-up attempt in the
//! paper because "a few culprit productions ... have condition elements with
//! no common variables": the pairing join is a cross-product, every token of
//! that join hashes to a single line (the key can only cover the node id),
//! and all its activations serialize on that line's lock.
//!
//! Two variants:
//!
//! * [`Variant::Pathological`] — the faithful rebuild: `pick-pair` matches
//!   two *unrelated* free teams (no shared variables), guarded by negated
//!   `played` elements.
//! * [`Variant::Fixed`] — the paper's "modifying two such productions using
//!   domain specific knowledge" (2.7× → 5.1×): circle-method pairings are
//!   precomputed into working memory and the pairing production joins
//!   through equality tests on `^round` and `^name`, distributing its tokens
//!   across hash lines.
//!
//! Both produce a complete, valid round-robin schedule, checked by the
//! validator.

use crate::{SetupVal, SetupWme, Workload};
use engine::Engine;
use ops5::Value;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Which pairing strategy the program uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Pathological,
    Fixed,
}

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct TourneyConfig {
    /// Team count (even, ≥ 4).
    pub teams: usize,
    pub variant: Variant,
}

impl Default for TourneyConfig {
    fn default() -> Self {
        TourneyConfig {
            teams: 10,
            variant: Variant::Pathological,
        }
    }
}

/// Circle-method round robin: returns `rounds[r] = [(home, away); n/2]`.
pub fn circle_schedule(n: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(n >= 2 && n.is_multiple_of(2), "need an even team count");
    let mut rounds = Vec::with_capacity(n - 1);
    // Positions: fixed team 0 plus a rotating ring of the rest.
    let ring: Vec<usize> = (1..n).collect();
    for r in 0..n - 1 {
        let mut pairs = Vec::with_capacity(n / 2);
        let pos = |i: usize| -> usize {
            if i == 0 {
                0
            } else {
                ring[(i - 1 + r) % (n - 1)]
            }
        };
        for i in 0..n / 2 {
            pairs.push((pos(i), pos(n - 1 - i)));
        }
        rounds.push(pairs);
    }
    rounds
}

/// The common (non-pairing) rules.
fn common_rules(s: &mut String) {
    s.push_str(
        "(literalize ctrl phase round)
(literalize count left)
(literalize team name busy)
(literalize game round home away)
(literalize played t1 t2)
(literalize assign round team slot)
(literalize court id slot taken)
(p try-end-round
  (ctrl ^phase pair ^round <r>)
  -->
  (modify 1 ^phase endround))
(p reset-busy
  (ctrl ^phase endround)
  (team ^busy yes)
  -->
  (modify 2 ^busy no))
(p reset-court
  (ctrl ^phase endround)
  (court ^taken yes)
  -->
  (modify 2 ^taken no))
(p next-round
  (ctrl ^phase endround ^round <r>)
  - (team ^busy yes)
  - (court ^taken yes)
  -->
  (modify 1 ^phase pair ^round (compute <r> + 1)))
(p done
  (ctrl ^phase pair)
  (count ^left 0)
  -->
  (write schedule complete (crlf))
  (halt))\n",
    );
}

/// Generates the OPS5 source for a variant.
pub fn generate_source(variant: Variant) -> String {
    let mut s = String::new();
    common_rules(&mut s);
    match variant {
        Variant::Pathological => {
            // The culprit production: CE 3 and CE 4 share no variables (the
            // inequality test is not an equality join), so the join is a
            // cross-product and all its tokens land in one hash line.
            // A second culprit: the court element shares no variables with
            // either team, so the unplayed-pair × court join accumulates a
            // long token list in a single hash line — the "long lists of
            // tokens in hash-table buckets" of §4.2.
            s.push_str(
                "(p pick-pair
  (ctrl ^phase pair ^round <r>)
  (count ^left <k>)
  (team ^name <t1> ^busy no)
  (team ^name { <t2> <> <t1> } ^busy no)
  - (played ^t1 <t1> ^t2 <t2>)
  - (played ^t1 <t2> ^t2 <t1>)
  (court ^id <c> ^taken no)
  -->
  (modify 3 ^busy yes)
  (modify 4 ^busy yes)
  (modify 7 ^taken yes)
  (make game ^round <r> ^home <t1> ^away <t2> ^court <c>)
  (make played ^t1 <t1> ^t2 <t2>)
  (modify 2 ^left (compute <k> - 1)))\n",
            );
        }
        Variant::Fixed => {
            // The paper's fix: "modifying two such productions using domain
            // specific knowledge". The program keeps the same shape — the
            // pairing production still joins two team-bearing elements —
            // but circle-method slot assignments in working memory give the
            // join equality tests on (round, slot), so its tokens hash
            // across lines instead of piling into one.
            s.push_str(
                "(p pick-pair
  (ctrl ^phase pair ^round <r>)
  (count ^left <k>)
  (assign ^round <r> ^team <t1> ^slot <s>)
  (assign ^round <r> ^team { <t2> <> <t1> } ^slot <s>)
  (team ^name <t1> ^busy no)
  (team ^name <t2> ^busy no)
  - (played ^t1 <t1> ^t2 <t2>)
  - (played ^t1 <t2> ^t2 <t1>)
  (court ^slot <s> ^taken no)
  -->
  (modify 5 ^busy yes)
  (modify 6 ^busy yes)
  (modify 9 ^taken yes)
  (make game ^round <r> ^home <t1> ^away <t2> ^court <s>)
  (make played ^t1 <t1> ^t2 <t2>)
  (modify 2 ^left (compute <k> - 1)))\n",
            );
        }
    }
    s
}

/// Builds the Tourney workload.
pub fn workload(cfg: TourneyConfig) -> Workload {
    let n = cfg.teams;
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "team count must be even and >= 4"
    );
    let mut setup = Vec::new();
    for t in 0..n {
        setup.push(SetupWme::new(
            "team",
            &[
                ("name", SetupVal::sym(format!("t{t}"))),
                ("busy", SetupVal::sym("no")),
            ],
        ));
    }
    let total_pairs = (n * (n - 1) / 2) as i64;
    setup.push(SetupWme::new(
        "count",
        &[("left", SetupVal::Int(total_pairs))],
    ));
    if cfg.variant == Variant::Fixed {
        // Domain knowledge: circle-method slot assignments. Two teams with
        // the same (round, slot) play each other that round.
        for (r, pairs) in circle_schedule(n).iter().enumerate() {
            for (slot, &(a, b)) in pairs.iter().enumerate() {
                for t in [a, b] {
                    setup.push(SetupWme::new(
                        "assign",
                        &[
                            ("round", SetupVal::Int(r as i64)),
                            ("team", SetupVal::sym(format!("t{t}"))),
                            ("slot", SetupVal::Int(slot as i64)),
                        ],
                    ));
                }
            }
        }
    }
    for c in 0..n / 2 {
        setup.push(SetupWme::new(
            "court",
            &[
                ("id", SetupVal::Int(c as i64)),
                ("slot", SetupVal::Int(c as i64)),
                ("taken", SetupVal::sym("no")),
            ],
        ));
    }
    setup.push(SetupWme::new(
        "ctrl",
        &[
            ("phase", SetupVal::sym("pair")),
            ("round", SetupVal::Int(0)),
        ],
    ));

    let teams = n;
    let mut name = String::new();
    let _ = write!(
        name,
        "tourney({} teams, {})",
        n,
        match cfg.variant {
            Variant::Pathological => "pathological",
            Variant::Fixed => "fixed",
        }
    );
    Workload {
        name,
        source: generate_source(cfg.variant),
        setup,
        // Per pair: one firing; per round: endround + resets + advance.
        max_cycles: (total_pairs as u64) * 2 + (n as u64) * 4 * (n as u64) + 200,
        validate: Box::new(move |e: &Engine| validate_schedule(e, teams)),
    }
}

fn validate_schedule(e: &Engine, n: usize) -> std::result::Result<(), String> {
    if !e.output().iter().any(|l| l.contains("schedule complete")) {
        return Err("missing 'schedule complete' output".into());
    }
    let game = e.prog.symbols.get("game").ok_or("no game class")?;
    let games = e.wm().of_class(game);
    let expected = n * (n - 1) / 2;
    if games.len() != expected {
        return Err(format!("expected {expected} games, found {}", games.len()));
    }
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut per_round: std::collections::HashMap<i64, HashSet<String>> = Default::default();
    for g in games {
        let round = match g.field(0) {
            Value::Int(r) => r,
            other => return Err(format!("bad round {other:?}")),
        };
        let home = match g.field(1) {
            Value::Sym(s) => e.prog.symbols.name(s).to_string(),
            other => return Err(format!("bad home {other:?}")),
        };
        let away = match g.field(2) {
            Value::Sym(s) => e.prog.symbols.name(s).to_string(),
            other => return Err(format!("bad away {other:?}")),
        };
        if home == away {
            return Err(format!("team {home} plays itself"));
        }
        let key = if home < away {
            (home.clone(), away.clone())
        } else {
            (away.clone(), home.clone())
        };
        if !seen.insert(key.clone()) {
            return Err(format!("pair {key:?} scheduled twice"));
        }
        let slot = per_round.entry(round).or_default();
        if !slot.insert(home.clone()) {
            return Err(format!("{home} plays twice in round {round}"));
        }
        if !slot.insert(away.clone()) {
            return Err(format!("{away} plays twice in round {round}"));
        }
    }
    if seen.len() != expected {
        return Err(format!(
            "expected {expected} distinct pairs, found {}",
            seen.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workload, MatcherChoice};

    #[test]
    fn circle_schedule_covers_all_pairs_once() {
        for n in [4usize, 6, 8, 12] {
            let rounds = circle_schedule(n);
            assert_eq!(rounds.len(), n - 1);
            let mut seen = HashSet::new();
            for (r, pairs) in rounds.iter().enumerate() {
                assert_eq!(pairs.len(), n / 2, "round {r}");
                let mut teams_in_round = HashSet::new();
                for &(a, b) in pairs {
                    assert_ne!(a, b);
                    assert!(teams_in_round.insert(a));
                    assert!(teams_in_round.insert(b));
                    let key = (a.min(b), a.max(b));
                    assert!(seen.insert(key), "duplicate pair {key:?}");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn pathological_variant_schedules_everything() {
        let w = workload(TourneyConfig {
            teams: 6,
            variant: Variant::Pathological,
        });
        let (_eng, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
    }

    #[test]
    fn fixed_variant_schedules_everything() {
        let w = workload(TourneyConfig {
            teams: 6,
            variant: Variant::Fixed,
        });
        let (_eng, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
    }

    #[test]
    fn pathological_join_is_cross_product() {
        // Structural check: the pick-pair team-team join has no equality
        // specs — the Tourney pathology the paper describes.
        let prog = ops5::Program::from_source(&generate_source(Variant::Pathological)).unwrap();
        let net = rete::network::Network::compile(&prog).unwrap();
        let cross_joins = net
            .joins
            .iter()
            .filter(|j| j.eq_specs.is_empty() && !j.tests.is_empty())
            .count();
        assert!(cross_joins >= 1, "expected a cross-product join");
    }

    #[test]
    fn fixed_variant_joins_all_have_eq_tests() {
        let prog = ops5::Program::from_source(&generate_source(Variant::Fixed)).unwrap();
        let net = rete::network::Network::compile(&prog).unwrap();
        // The pairing production's assign/team joins (CE 3 onward) all
        // carry equality specs; only the trivial ctrl⋈count join (two
        // singleton memories) has none.
        let exec_joins: Vec<_> = net
            .joins
            .iter()
            .filter(|j| net.prod_names[j.prod.index()] == "pick-pair" && j.ce_index >= 2)
            .collect();
        assert!(exec_joins.len() >= 4);
        assert!(exec_joins.iter().all(|j| !j.eq_specs.is_empty()));
    }
}
