//! A tiny deterministic PRNG (SplitMix64) for workload generation.
//!
//! Workload generators must be byte-for-byte reproducible across runs and
//! platforms so the benchmark tables are stable; SplitMix64 is deterministic,
//! seedable, and has no external dependency.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize index.
    pub fn index(&mut self, n: usize) -> usize {
        (self.below(n as u64)) as usize
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.index(i + 1);
            v.swap(i, j);
        }
    }

    /// Bernoulli with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
