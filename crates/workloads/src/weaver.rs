//! Weaver — the VLSI-routing workload.
//!
//! Joobbani's Weaver was a 637-rule knowledge-based channel router; the
//! paper used it as the "fairly large program ... demonstrating that our
//! parallel OPS5 can handle real systems". The original source is not
//! available, so this module *generates* a working grid router of the same
//! scale: Lee-style wavefront expansion over a two-layer grid (layer 0
//! routes east-west, layer 1 north-south, vias connect the layers),
//! backtrace along decreasing wave distances, and cleanup — with rule
//! variants specialized by direction × layer × net class so the production
//! count reaches Weaver's ~600.
//!
//! The match profile mirrors the paper's description of Weaver: a large
//! network, moderate memories, equality-test joins everywhere (good hash
//! distribution, no cross-products), thousands of WME changes per run.

use crate::rng::SplitMix64;
use crate::{SetupVal, SetupWme, Workload};
use engine::Engine;
use ops5::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct WeaverConfig {
    pub width: usize,
    pub height: usize,
    /// Net-class specializations; rule count ≈ 17 × kinds + 4.
    pub kinds: usize,
    pub nets: usize,
    /// Percent of cells blocked (0-40).
    pub blocked_pct: u64,
    pub seed: u64,
}

impl Default for WeaverConfig {
    fn default() -> Self {
        WeaverConfig {
            width: 10,
            height: 10,
            kinds: 36,
            nets: 6,
            blocked_pct: 8,
            seed: 42,
        }
    }
}

fn cell_id(cfg: &WeaverConfig, x: usize, y: usize, layer: usize) -> i64 {
    (layer * cfg.width * cfg.height + y * cfg.width + x) as i64
}

/// Generates the OPS5 source: fixed control rules plus per-kind variants.
pub fn generate_source(kinds: usize) -> String {
    let mut s = String::new();
    s.push_str(
        "(literalize cell id x y layer state wire)
(literalize adj from to dir)
(literalize net id kind status src dst)
(literalize wave net cell dist)
(literalize btrack net cell want)
(literalize phase name net)\n",
    );

    // Directions and the layer their in-plane edges live on.
    let dirs: [(&str, usize); 4] = [("east", 0), ("west", 0), ("north", 1), ("south", 1)];

    for k in 0..kinds {
        let kind = format!("k{k}");
        // Expansion: in-plane per direction, plus vias both ways.
        for (dir, layer) in dirs {
            let _ = writeln!(
                s,
                "(p expand-{dir}-{kind}
  (phase ^name expand ^net <n>)
  (net ^id <n> ^kind {kind} ^status routing)
  (wave ^net <n> ^cell <c> ^dist <d>)
  (adj ^from <c> ^to <c2> ^dir {dir})
  (cell ^id <c2> ^layer {layer} ^state free)
  - (wave ^net <n> ^cell <c2>)
  -->
  (make wave ^net <n> ^cell <c2> ^dist (compute <d> + 1)))"
            );
        }
        for (dir, layer) in [("up", 1), ("down", 0)] {
            let _ = writeln!(
                s,
                "(p expand-{dir}-{kind}
  (phase ^name expand ^net <n>)
  (net ^id <n> ^kind {kind} ^status routing)
  (wave ^net <n> ^cell <c> ^dist <d>)
  (adj ^from <c> ^to <c2> ^dir {dir})
  (cell ^id <c2> ^layer {layer} ^state free)
  - (wave ^net <n> ^cell <c2>)
  -->
  (make wave ^net <n> ^cell <c2> ^dist (compute <d> + 1)))"
            );
        }
        // Entering the destination terminal: terminals are state `term`
        // (wires of other nets may never cross them), so the plain expand
        // rules skip them; this rule lets the wavefront finish.
        let _ = writeln!(
            s,
            "(p reach-dst-{kind}
  (phase ^name expand ^net <n>)
  (net ^id <n> ^kind {kind} ^status routing ^dst <t>)
  (wave ^net <n> ^cell <c> ^dist <d>)
  (adj ^from <c> ^to <t>)
  - (wave ^net <n> ^cell <t>)
  -->
  (make wave ^net <n> ^cell <t> ^dist (compute <d> + 1)))"
        );
        // Target reached: switch to backtrace.
        let _ = writeln!(
            s,
            "(p reached-{kind}
  (phase ^name expand ^net <n>)
  (net ^id <n> ^kind {kind} ^status routing ^dst <t>)
  (wave ^net <n> ^cell <t> ^dist <d>)
  -->
  (modify 1 ^name trace)
  (make btrack ^net <n> ^cell <t> ^want (compute <d> - 1)))"
        );
        // Backtrace steps, per direction.
        for dir in ["east", "west", "north", "south", "up", "down"] {
            let _ = writeln!(
                s,
                "(p trace-{dir}-{kind}
  (phase ^name trace ^net <n>)
  (net ^id <n> ^kind {kind})
  (btrack ^net <n> ^cell <c> ^want <w>)
  (adj ^from <c> ^to <c2> ^dir {dir})
  (wave ^net <n> ^cell <c2> ^dist <w>)
  (cell ^id <c2>)
  -->
  (remove 3)
  (make btrack ^net <n> ^cell <c2> ^want (compute <w> - 1))
  (modify 6 ^state used ^wire <n>))"
            );
        }
        // Dead net: expansion exhausted without reaching the target.
        let _ = writeln!(
            s,
            "(p stuck-{kind}
  (phase ^name expand ^net <n>)
  (net ^id <n> ^kind {kind} ^status routing ^dst <t>)
  - (wave ^net <n> ^cell <t>)
  -->
  (modify 2 ^status failed)
  (modify 1 ^name cleanup))"
        );
        // Start the next pending net of this kind.
        let _ = writeln!(
            s,
            "(p start-net-{kind}
  (phase ^name idle)
  (net ^id <n> ^kind {kind} ^status pending ^src <sc>)
  -->
  (modify 2 ^status routing)
  (modify 1 ^name expand ^net <n>)
  (make wave ^net <n> ^cell <sc> ^dist 0))"
        );
        // Cleanup of this net's wavefront.
        let _ = writeln!(
            s,
            "(p clean-wave-{kind}
  (phase ^name cleanup ^net <n>)
  (net ^id <n> ^kind {kind})
  (wave ^net <n>)
  -->
  (remove 3))"
        );
    }

    // Fixed control rules.
    s.push_str(
        "(p trace-done
  (phase ^name trace ^net <n>)
  (net ^id <n> ^src <sc>)
  (btrack ^net <n> ^cell <sc>)
  -->
  (remove 3)
  (modify 2 ^status routed)
  (modify 1 ^name cleanup))
(p clean-btrack
  (phase ^name cleanup ^net <n>)
  (btrack ^net <n>)
  -->
  (remove 2))
(p clean-done
  (phase ^name cleanup ^net <n>)
  - (wave ^net <n>)
  - (btrack ^net <n>)
  -->
  (modify 1 ^name idle ^net nil))
(p all-done
  (phase ^name idle)
  - (net ^status pending)
  -->
  (write routing complete (crlf))
  (halt))\n",
    );
    s
}

/// Generated board state, kept for validation.
pub struct Board {
    pub cfg: WeaverConfig,
    pub blocked: HashSet<i64>,
    /// Net id → (src cell, dst cell), both on layer 0.
    pub nets: Vec<(i64, i64)>,
}

/// Builds the board and the initial working memory.
fn generate_board(cfg: &WeaverConfig) -> (Board, Vec<SetupWme>) {
    let mut rng = SplitMix64::new(cfg.seed);
    let (w, h) = (cfg.width, cfg.height);
    let mut blocked: HashSet<i64> = HashSet::new();
    for layer in 0..2 {
        for y in 0..h {
            for x in 0..w {
                if rng.chance(cfg.blocked_pct, 100) {
                    blocked.insert(cell_id(cfg, x, y, layer));
                }
            }
        }
    }
    // Net terminals on layer 0, distinct, never blocked.
    let mut used: HashSet<i64> = HashSet::new();
    let mut nets = Vec::with_capacity(cfg.nets);
    for _ in 0..cfg.nets {
        let pick = |rng: &mut SplitMix64, used: &mut HashSet<i64>, blocked: &mut HashSet<i64>| loop {
            let x = rng.index(w);
            let y = rng.index(h);
            let id = cell_id(cfg, x, y, 0);
            if used.contains(&id) {
                continue;
            }
            blocked.remove(&id);
            used.insert(id);
            return id;
        };
        let src = pick(&mut rng, &mut used, &mut blocked);
        let dst = pick(&mut rng, &mut used, &mut blocked);
        nets.push((src, dst));
    }

    let terminals: HashSet<i64> = nets.iter().flat_map(|&(s, d)| [s, d]).collect();
    let mut setup = Vec::new();
    for layer in 0..2 {
        for y in 0..h {
            for x in 0..w {
                let id = cell_id(cfg, x, y, layer);
                let state = if terminals.contains(&id) {
                    // Terminal cells are reserved: other nets' wavefronts
                    // and wires may never cross them.
                    "term"
                } else if blocked.contains(&id) {
                    "blocked"
                } else {
                    "free"
                };
                setup.push(SetupWme::new(
                    "cell",
                    &[
                        ("id", SetupVal::Int(id)),
                        ("x", SetupVal::Int(x as i64)),
                        ("y", SetupVal::Int(y as i64)),
                        ("layer", SetupVal::Int(layer as i64)),
                        ("state", SetupVal::sym(state)),
                        ("wire", SetupVal::sym("nil")),
                    ],
                ));
            }
        }
    }
    let adj = |setup: &mut Vec<SetupWme>, from: i64, to: i64, dir: &str| {
        setup.push(SetupWme::new(
            "adj",
            &[
                ("from", SetupVal::Int(from)),
                ("to", SetupVal::Int(to)),
                ("dir", SetupVal::sym(dir)),
            ],
        ));
    };
    for y in 0..h {
        for x in 0..w {
            // Layer 0: east/west.
            if x + 1 < w {
                adj(
                    &mut setup,
                    cell_id(cfg, x, y, 0),
                    cell_id(cfg, x + 1, y, 0),
                    "east",
                );
                adj(
                    &mut setup,
                    cell_id(cfg, x + 1, y, 0),
                    cell_id(cfg, x, y, 0),
                    "west",
                );
            }
            // Layer 1: north/south.
            if y + 1 < h {
                adj(
                    &mut setup,
                    cell_id(cfg, x, y, 1),
                    cell_id(cfg, x, y + 1, 1),
                    "south",
                );
                adj(
                    &mut setup,
                    cell_id(cfg, x, y + 1, 1),
                    cell_id(cfg, x, y, 1),
                    "north",
                );
            }
            // Vias.
            adj(
                &mut setup,
                cell_id(cfg, x, y, 0),
                cell_id(cfg, x, y, 1),
                "up",
            );
            adj(
                &mut setup,
                cell_id(cfg, x, y, 1),
                cell_id(cfg, x, y, 0),
                "down",
            );
        }
    }
    for (i, &(src, dst)) in nets.iter().enumerate() {
        setup.push(SetupWme::new(
            "net",
            &[
                ("id", SetupVal::Int(i as i64)),
                ("kind", SetupVal::sym(format!("k{}", i % cfg.kinds))),
                ("status", SetupVal::sym("pending")),
                ("src", SetupVal::Int(src)),
                ("dst", SetupVal::Int(dst)),
            ],
        ));
    }
    setup.push(SetupWme::new(
        "phase",
        &[
            ("name", SetupVal::sym("idle")),
            ("net", SetupVal::sym("nil")),
        ],
    ));
    (
        Board {
            cfg: *cfg,
            blocked,
            nets,
        },
        setup,
    )
}

/// Builds the Weaver workload.
pub fn workload(cfg: WeaverConfig) -> Workload {
    let (board, setup) = generate_board(&cfg);
    let cells = 2 * cfg.width * cfg.height;
    let max_cycles = (cfg.nets as u64) * (3 * cells as u64 + 200) + 200;
    Workload {
        name: format!(
            "weaver({}x{}x2, {} nets, {} kinds)",
            cfg.width, cfg.height, cfg.nets, cfg.kinds
        ),
        source: generate_source(cfg.kinds),
        setup,
        max_cycles,
        validate: Box::new(move |e: &Engine| validate_routes(e, &board)),
    }
}

fn validate_routes(e: &Engine, board: &Board) -> std::result::Result<(), String> {
    if !e.output().iter().any(|l| l.contains("routing complete")) {
        return Err("missing 'routing complete' output".into());
    }
    let syms = &e.prog.symbols;
    let net_class = syms.get("net").ok_or("no net class")?;
    let cell_class = syms.get("cell").ok_or("no cell class")?;
    let routed_sym = syms.get("routed");
    let pending_sym = syms.get("pending");

    // Per-net wire cells.
    let mut wires: HashMap<i64, HashSet<i64>> = HashMap::new();
    for c in e.wm().of_class(cell_class) {
        if let (Value::Int(id), Value::Int(net)) = (c.field(0), {
            // wire attr is field 5; may hold nil or a net id.
            match c.field(5) {
                Value::Int(n) => Value::Int(n),
                _ => Value::NIL,
            }
        }) {
            wires.entry(net).or_default().insert(id);
        }
    }

    let mut n_routed = 0;
    for w in e.wm().of_class(net_class) {
        let id = match w.field(0) {
            Value::Int(i) => i,
            other => return Err(format!("bad net id {other:?}")),
        };
        let status = w.field(2);
        if Some(status) == pending_sym.map(Value::Sym) {
            return Err(format!("net {id} still pending"));
        }
        if Some(status) == routed_sym.map(Value::Sym) {
            n_routed += 1;
            // Check connectivity of the wire cells (plus dst, which the
            // backtrace never marks) from src to dst.
            let (src, dst) = board.nets[id as usize];
            let mut cells: HashSet<i64> = wires.get(&id).cloned().unwrap_or_default();
            cells.insert(dst);
            if !cells.contains(&src) {
                return Err(format!("net {id}: src not on wire"));
            }
            if !connected(board, &cells, src, dst) {
                return Err(format!("net {id}: wire not connected"));
            }
        }
    }
    if n_routed == 0 {
        return Err("no net routed at all".into());
    }
    Ok(())
}

/// BFS over the board's adjacency restricted to `cells`.
fn connected(board: &Board, cells: &HashSet<i64>, src: i64, dst: i64) -> bool {
    let cfg = &board.cfg;
    let (w, h) = (cfg.width as i64, cfg.height as i64);
    let decode = |id: i64| -> (i64, i64, i64) {
        let layer = id / (w * h);
        let rem = id % (w * h);
        (rem % w, rem / w, layer)
    };
    let encode = |x: i64, y: i64, l: i64| l * w * h + y * w + x;
    let mut seen = HashSet::new();
    let mut q = VecDeque::new();
    q.push_back(src);
    seen.insert(src);
    while let Some(c) = q.pop_front() {
        if c == dst {
            return true;
        }
        let (x, y, l) = decode(c);
        let mut neighbors = Vec::with_capacity(3);
        if l == 0 {
            if x > 0 {
                neighbors.push(encode(x - 1, y, 0));
            }
            if x + 1 < w {
                neighbors.push(encode(x + 1, y, 0));
            }
            neighbors.push(encode(x, y, 1));
        } else {
            if y > 0 {
                neighbors.push(encode(x, y - 1, 1));
            }
            if y + 1 < h {
                neighbors.push(encode(x, y + 1, 1));
            }
            neighbors.push(encode(x, y, 0));
        }
        for n in neighbors {
            if cells.contains(&n) && seen.insert(n) {
                q.push_back(n);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workload, MatcherChoice};

    fn small() -> WeaverConfig {
        WeaverConfig {
            width: 5,
            height: 4,
            kinds: 3,
            nets: 2,
            blocked_pct: 0,
            seed: 3,
        }
    }

    #[test]
    fn source_scales_with_kinds() {
        let s = generate_source(4);
        let count = s.matches("(p ").count();
        // 17 per kind + 4 fixed.
        assert_eq!(count, 4 * 17 + 4);
        // Parseable.
        let prog = ops5::Program::from_source(&s).unwrap();
        assert_eq!(prog.productions.len(), count);
    }

    #[test]
    fn weaver_scale_config_has_600ish_rules() {
        let s = generate_source(WeaverConfig::default().kinds);
        let prog = ops5::Program::from_source(&s).unwrap();
        assert!(
            prog.productions.len() >= 570,
            "got {} rules",
            prog.productions.len()
        );
    }

    #[test]
    fn routes_small_board() {
        let w = workload(small());
        let (eng, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(
            res.reason,
            engine::StopReason::Halt,
            "cycles: {}",
            res.cycles
        );
        assert!(eng.output().iter().any(|l| l.contains("routing complete")));
    }

    #[test]
    fn routes_with_blocks() {
        let mut cfg = small();
        cfg.blocked_pct = 10;
        cfg.seed = 9;
        let w = workload(cfg);
        let (_eng, res) = run_workload(&w, &MatcherChoice::Vs2).unwrap();
        assert_eq!(res.reason, engine::StopReason::Halt);
    }

    #[test]
    fn deterministic_board() {
        let (a, sa) = generate_board(&small());
        let (b, sb) = generate_board(&small());
        assert_eq!(a.nets, b.nets);
        assert_eq!(sa.len(), sb.len());
    }
}
