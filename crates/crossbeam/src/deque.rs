//! Work-stealing deque primitives (mutex-backed stand-in).
//!
//! API mirrors `crossbeam_deque`: a `Worker` owns a FIFO deque, hands out
//! `Stealer` handles, and an `Injector` is a shared MPMC overflow queue
//! supporting `steal_batch_and_pop`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The caller lost a race and may retry. The mutex-backed stand-in
    /// never reports this; it exists for API compatibility.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// A worker-owned FIFO deque.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker queue (`push` enqueues at the back, `pop`
    /// dequeues from the front).
    pub fn new_fifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a LIFO worker queue. The stand-in keeps FIFO order; the
    /// matcher only uses FIFO workers.
    pub fn new_lifo() -> Worker<T> {
        Worker::new_fifo()
    }

    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// A handle other threads use to steal from this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

/// A handle for stealing single tasks from a `Worker`'s deque.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the front of the victim's deque.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

/// A shared FIFO injector queue (control-process and overflow pushes).
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Steals one task for the caller and moves up to half of the rest of
    /// the injector into the caller's local deque.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.inner.lock().unwrap();
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        let batch = q.len() / 2;
        if batch > 0 {
            let mut dest_q = dest.inner.lock().unwrap();
            for _ in 0..batch {
                if let Some(t) = q.pop_front() {
                    dest_q.push_back(t);
                }
            }
        }
        Steal::Success(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_front() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_and_pop() {
        let inj = Injector::new();
        let w = Worker::new_fifo();
        for i in 0..5 {
            inj.push(i);
        }
        let got = inj.steal_batch_and_pop(&w);
        assert_eq!(got.success(), Some(0));
        // Half of the remaining four moved to the local deque.
        assert_eq!(w.len(), 2);
        assert_eq!(inj.len(), 2);
    }

    #[test]
    fn steal_is_thread_safe() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        for i in 0..1000 {
            w.push(i);
        }
        let h = std::thread::spawn(move || {
            let mut n = 0;
            while s.steal().is_success() {
                n += 1;
            }
            n
        });
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        let stolen = h.join().unwrap();
        assert_eq!(local + stolen, 1000);
    }
}
