//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *subset* of crossbeam it actually uses: the
//! `deque` work-stealing primitives (`Worker`, `Stealer`, `Injector`,
//! `Steal`) that back `psm::steal::StealScheduler`.
//!
//! The implementation is intentionally simple — each deque is a
//! `Mutex<VecDeque<T>>` — which is slower under contention than the real
//! lock-free Chase–Lev deque but is API- and semantics-compatible: FIFO
//! local order, single-item steals from peers, batched steals from the
//! injector. Correctness (every pushed task popped exactly once) is what
//! the matcher depends on; the scheduler-throughput numbers in the tables
//! come from the discrete-event simulator, not from this code.

pub mod deque;
