//! # psm — the PSM-E parallel match engine
//!
//! This crate is the paper's primary contribution: a fine-grained parallel
//! Rete matcher for shared-memory multiprocessors (§3).
//!
//! Architecture (Figure 3-1): one *control process* (the thread driving
//! the `engine::Engine` interpreter) and `k` *match processes* (worker
//! threads) share
//!
//! * a single read-only copy of the compiled Rete network,
//! * one or more **task queues** holding tokens awaiting processing,
//! * the global **left/right token hash tables**, organised in lines
//!   (same-index bucket pairs plus their extra-deletes lists), each guarded
//!   by a simple exclusive spin lock or the paper's
//!   multiple-reader-single-writer line protocol,
//! * the **TaskCount** counter that detects match-phase termination,
//! * a conflict-set accumulator.
//!
//! Synchronization uses test-and-test-and-set spin locks built on atomics
//! (§3.2 — OS primitives are too heavy for 100-700-instruction tasks); every
//! lock counts how often a process spins before acquiring it, reproducing
//! the paper's contention metric (Tables 4-7 and 4-9).
//!
//! Out-of-order token processing is handled with **conjugate token pairs**:
//! a `−` token arriving before its `+` parks on the line's extra-deletes
//! list; when the `+` arrives, both annihilate without propagating.
//!
//! The [`trace`] module records a deterministic task trace (task graph,
//! per-task work counters, hash-line footprint) that the `multimax` crate
//! replays on a simulated Encore Multimax to regenerate the paper's
//! speed-up and contention tables on any host.

pub mod line;
pub mod matcher;
pub mod queue;
pub mod stats;
pub mod steal;
pub mod sync;
pub mod trace;

pub use line::{LineLock, LockScheme, ParLine, Side};
pub use matcher::{ParMatcher, PsmConfig, PsmProbe, SchedulerKind};
pub use queue::{Scheduler, TaskCount};
pub use stats::ContentionStats;
pub use steal::StealScheduler;
pub use sync::{RwSpinLock, SpinLock};
pub use trace::{CycleTrace, RunTrace, TaskKind, TaskRecord, TraceMatcher};
