//! Test-and-test-and-set spin locks with contention instrumentation.
//!
//! The paper (§3.2): synchronization is handled with interlocked
//! instructions rather than OS primitives, and spinning processes use
//! "test and test-and-set" — ordinary reads until the lock looks free, then
//! one interlocked attempt — so waiters spin in their caches instead of on
//! the bus. The `AtomicBool` load/compare-exchange pair below is the direct
//! Rust translation (Rust Atomics and Locks, ch. 4).
//!
//! Every lock counts the *spins before acquisition* — the exact contention
//! metric of Tables 4-7 and 4-9 ("the number of times a process spins on the
//! lock before it gets access").

use std::cell::UnsafeCell;
use std::hint;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// The raw TTAS lock. Returns the number of spins each acquisition cost.
#[derive(Default)]
pub struct RawSpin {
    locked: AtomicBool,
}

impl RawSpin {
    pub const fn new() -> Self {
        RawSpin {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock; returns how many times we observed it busy.
    #[inline]
    pub fn lock(&self) -> u64 {
        let mut spins = 0u64;
        loop {
            // Test-and-set attempt.
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return spins;
            }
            // Busy: spin on plain reads (stay in cache, off the bus). On an
            // oversubscribed host the holder may not even be running — yield
            // after a while so it can make progress.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins.is_multiple_of(256) {
                    std::thread::yield_now();
                } else {
                    hint::spin_loop();
                }
            }
        }
    }

    /// Non-blocking attempt.
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    #[inline]
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// An instrumented TTAS spin lock guarding `T`.
pub struct SpinLock<T> {
    raw: RawSpin,
    spins: AtomicU64,
    acquisitions: AtomicU64,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    pub const fn new(value: T) -> Self {
        SpinLock {
            raw: RawSpin::new(),
            spins: AtomicU64::new(0),
            acquisitions: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock. The guard reports the spins this acquisition cost.
    #[inline]
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let spins = self.raw.lock();
        self.spins.fetch_add(spins, Ordering::Relaxed);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        SpinGuard { lock: self, spins }
    }

    /// Cumulative (spins, acquisitions) counters.
    pub fn contention(&self) -> (u64, u64) {
        (
            self.spins.load(Ordering::Relaxed),
            self.acquisitions.load(Ordering::Relaxed),
        )
    }

    pub fn reset_contention(&self) {
        self.spins.store(0, Ordering::Relaxed);
        self.acquisitions.store(0, Ordering::Relaxed);
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// RAII guard for [`SpinLock`].
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
    /// Spins this acquisition cost (for per-side attribution by callers).
    pub spins: u64,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Safety: we hold the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // Safety: we hold the lock exclusively.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.raw.unlock();
    }
}

/// A reader-writer spin lock (used by the MRSW line protocol for the token
/// lists: concurrent same-side scans, serialized destructive modification).
///
/// State word: bit 31 = writer held, bits 0..31 = reader count.
pub struct RwSpinLock<T> {
    state: AtomicU32,
    spins: AtomicU64,
    acquisitions: AtomicU64,
    data: UnsafeCell<T>,
}

unsafe impl<T: Send> Send for RwSpinLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwSpinLock<T> {}

const WRITER: u32 = 1 << 31;

impl<T> RwSpinLock<T> {
    pub const fn new(value: T) -> Self {
        RwSpinLock {
            state: AtomicU32::new(0),
            spins: AtomicU64::new(0),
            acquisitions: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    #[inline]
    pub fn read(&self) -> RwReadGuard<'_, T> {
        let mut spins = 0u64;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            spins += 1;
            if spins.is_multiple_of(256) {
                std::thread::yield_now();
            } else {
                hint::spin_loop();
            }
        }
        self.spins.fetch_add(spins, Ordering::Relaxed);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        RwReadGuard { lock: self, spins }
    }

    #[inline]
    pub fn write(&self) -> RwWriteGuard<'_, T> {
        let mut spins = 0u64;
        loop {
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
            while self.state.load(Ordering::Relaxed) != 0 {
                spins += 1;
                if spins.is_multiple_of(256) {
                    std::thread::yield_now();
                } else {
                    hint::spin_loop();
                }
            }
        }
        self.spins.fetch_add(spins, Ordering::Relaxed);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        RwWriteGuard { lock: self, spins }
    }

    pub fn contention(&self) -> (u64, u64) {
        (
            self.spins.load(Ordering::Relaxed),
            self.acquisitions.load(Ordering::Relaxed),
        )
    }
}

pub struct RwReadGuard<'a, T> {
    lock: &'a RwSpinLock<T>,
    pub spins: u64,
}

impl<T> Deref for RwReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Safety: readers exclude the writer.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

pub struct RwWriteGuard<'a, T> {
    lock: &'a RwSpinLock<T>,
    pub spins: u64,
}

impl<T> Deref for RwWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the writer is exclusive.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.state.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spinlock_mutual_exclusion() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *l.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
        let (_spins, acqs) = lock.contention();
        assert_eq!(acqs, 40_001);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = RawSpin::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn uncontended_lock_spins_zero() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert_eq!(g.spins, 0);
        drop(g);
        let (spins, acqs) = lock.contention();
        assert_eq!((spins, acqs), (0, 1));
    }

    #[test]
    fn contention_counter_reset() {
        let lock = SpinLock::new(());
        drop(lock.lock());
        lock.reset_contention();
        assert_eq!(lock.contention(), (0, 0));
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let lock = Arc::new(RwSpinLock::new(5u32));
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn rwlock_writer_excludes() {
        let lock = Arc::new(RwSpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    *l.write() += 1;
                    let _r = l.read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 20_000);
    }

    #[test]
    fn guard_releases_on_drop() {
        let lock = SpinLock::new(1);
        {
            let _g = lock.lock();
        }
        // Would deadlock if the guard leaked the lock.
        assert_eq!(*lock.lock(), 1);
    }
}
