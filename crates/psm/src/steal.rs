//! Work-stealing task scheduling — a modern extension.
//!
//! The paper found the centralized task queue to be the major bottleneck
//! and proposed (via Gupta's thesis) a *hardware task scheduler* as future
//! work. Four decades later the software answer is work stealing: each
//! match process owns a local deque, pushes its spawned activations there,
//! and steals from peers (or the control process's injector) when dry —
//! contention appears only when work is scarce, which is exactly when it is
//! cheap.
//!
//! This module wires `crossbeam_deque` into the PSM-E matcher as an
//! alternative to the spin-locked queues (`PsmConfig::scheduler =
//! SchedulerKind::WorkStealing`). TaskCount-based termination is unchanged.

use crate::queue::{ParTask, TaskCount};
use crossbeam::deque::{Injector, Stealer, Worker};
use std::sync::Mutex;

/// The shared half of the work-stealing scheduler.
pub struct StealScheduler {
    /// Control-process (and overflow) pushes.
    injector: Injector<ParTask>,
    /// One stealer per match process's local deque.
    stealers: Vec<Stealer<ParTask>>,
    /// Local deques parked here until the worker threads claim them.
    pending_workers: Mutex<Vec<Option<Worker<ParTask>>>>,
    count: TaskCount,
}

impl StealScheduler {
    pub fn new(n_workers: usize) -> StealScheduler {
        let workers: Vec<Worker<ParTask>> = (0..n_workers).map(|_| Worker::new_fifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        StealScheduler {
            injector: Injector::new(),
            stealers,
            pending_workers: Mutex::new(workers.into_iter().map(Some).collect()),
            count: TaskCount::new(),
        }
    }

    /// Claims worker `i`'s local deque (called once per match process).
    pub fn claim_worker(&self, i: usize) -> Worker<ParTask> {
        self.pending_workers.lock().unwrap()[i]
            .take()
            .expect("worker deque already claimed")
    }

    pub fn task_count(&self) -> &TaskCount {
        &self.count
    }

    /// Push a new task. Workers push to their local deque; the control
    /// process (no local) to the injector.
    pub fn push(&self, task: ParTask, local: Option<&Worker<ParTask>>) {
        self.count.inc();
        self.push_raw(task, local);
    }

    /// Re-push a requeued task (already counted).
    pub fn push_requeue(&self, task: ParTask, local: Option<&Worker<ParTask>>) {
        self.push_raw(task, local);
    }

    fn push_raw(&self, task: ParTask, local: Option<&Worker<ParTask>>) {
        match local {
            Some(w) => w.push(task),
            None => self.injector.push(task),
        }
    }

    /// Pop: local deque first, then the injector, then steal from peers.
    pub fn pop(&self, local: &Worker<ParTask>) -> Option<ParTask> {
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            let steal = self.injector.steal_batch_and_pop(local);
            if steal.is_success() {
                return steal.success();
            }
            if !steal.is_retry() {
                break;
            }
        }
        for s in &self.stealers {
            loop {
                let steal = s.steal();
                if steal.is_success() {
                    return steal.success();
                }
                if !steal.is_retry() {
                    break;
                }
            }
        }
        None
    }

    #[inline]
    pub fn task_done(&self) {
        self.count.dec();
    }

    #[inline]
    pub fn quiescent(&self) -> bool {
        self.count.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{Sign, SymbolId, Value, Wme};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn task(tag: u64) -> ParTask {
        ParTask::Root {
            sign: Sign::Plus,
            wme: Wme::new(SymbolId(1), vec![Value::Int(1)], tag),
        }
    }

    #[test]
    fn local_push_pop() {
        let s = StealScheduler::new(1);
        let w = s.claim_worker(0);
        s.push(task(1), Some(&w));
        s.push(task(2), Some(&w));
        assert!(s.pop(&w).is_some());
        assert!(s.pop(&w).is_some());
        assert!(s.pop(&w).is_none());
        s.task_done();
        s.task_done();
        assert!(s.quiescent());
    }

    #[test]
    fn injector_feeds_workers() {
        let s = StealScheduler::new(2);
        let w0 = s.claim_worker(0);
        s.push(task(7), None); // control push
        assert!(s.pop(&w0).is_some());
        s.task_done();
        assert!(s.quiescent());
    }

    #[test]
    fn stealing_across_workers() {
        let s = StealScheduler::new(2);
        let w0 = s.claim_worker(0);
        let w1 = s.claim_worker(1);
        s.push(task(1), Some(&w0));
        // Worker 1 finds nothing locally and steals from worker 0.
        assert!(s.pop(&w1).is_some());
        s.task_done();
        assert!(s.quiescent());
        drop(w0);
    }

    #[test]
    fn concurrent_produce_consume() {
        let s = Arc::new(StealScheduler::new(2));
        let consumed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..2 {
            let s = s.clone();
            let consumed = consumed.clone();
            handles.push(std::thread::spawn(move || {
                let w = s.claim_worker(i);
                // Each worker produces 500 locally, everyone consumes.
                for k in 0..500 {
                    s.push(task(k), Some(&w));
                }
                loop {
                    if let Some(_t) = s.pop(&w) {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        s.task_done();
                    } else if consumed.load(Ordering::Relaxed) >= 1000 {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), 1000);
        assert!(s.quiescent());
    }

    #[test]
    fn claim_twice_panics() {
        let s = StealScheduler::new(1);
        let _w = s.claim_worker(0);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { s.claim_worker(0) }))
                .is_err()
        );
    }
}
