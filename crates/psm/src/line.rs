//! Hash-table lines: the shared token memories and their locks (§3.2).
//!
//! A *line* is a pair of corresponding buckets (same hash index) of the
//! global left and right token tables, together with their extra-deletes
//! lists. Any single node activation touches exactly one line (paper
//! footnote 4), which makes the line the locking granule.
//!
//! Two lock schemes, as in the paper:
//!
//! * **Simple** — one exclusive TTAS spin lock per line, held for the whole
//!   activation.
//! * **MRSW** — the multiple-reader-single-writer protocol: a per-line flag
//!   (`Unused`/`Left`/`Right`) plus user counter behind an entry lock, and a
//!   reader-writer lock for the token lists. A process finding the line in
//!   use by the *other* side puts its token back on the task queue; same-side
//!   processes proceed concurrently, serializing only destructive list
//!   modifications.
//!
//! **Conjugate token pairs**: a `−` token whose `+` has not arrived yet
//! parks on the line's extra-deletes list; the matching `+` annihilates it
//! without inserting or propagating (§3.2).

use crate::sync::{RwReadGuard, RwSpinLock, RwWriteGuard, SpinGuard, SpinLock};
use ops5::{Wme, WmeRef};
use rete::network::JoinNode;
use rete::token::Token;

/// Which input of a two-input node an activation arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Lock scheme selection (Tables 4-5/4-6 vs Table 4-8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockScheme {
    #[default]
    Simple,
    Mrsw,
}

struct LeftEntry {
    join: u32,
    key: u64,
    token: Token,
    neg_count: u32,
}

struct RightEntry {
    join: u32,
    key: u64,
    wme: WmeRef,
}

/// One line's storage: left bucket, right bucket, extra-deletes lists.
#[derive(Default)]
pub struct ParLine {
    left: Vec<LeftEntry>,
    right: Vec<RightEntry>,
    extra_del_left: Vec<(u32, u64, Token)>,
    extra_del_right: Vec<(u32, u64, WmeRef)>,
}

/// Outcome of applying a `+` token to a memory.
#[derive(Debug, PartialEq, Eq)]
pub enum PlusOutcome {
    /// Normal insertion.
    Inserted,
    /// A parked `−` was waiting: both discarded (conjugate pair).
    Annihilated,
}

/// Outcome of applying a `−` token to a memory.
#[derive(Debug, PartialEq, Eq)]
pub enum MinusOutcome {
    /// Entry found and removed; `neg_count` is the stored not-node counter.
    Removed { neg_count: u32, examined: u64 },
    /// No entry yet — parked on the extra-deletes list.
    Parked,
}

impl ParLine {
    /// Applies a `+` token to the left memory of `j`.
    pub fn left_plus(
        &mut self,
        j: &JoinNode,
        key: u64,
        token: &Token,
        neg_count: u32,
    ) -> PlusOutcome {
        if let Some(i) = self
            .extra_del_left
            .iter()
            .position(|(jj, kk, t)| *jj == j.id && *kk == key && t.same_wmes(token))
        {
            self.extra_del_left.swap_remove(i);
            return PlusOutcome::Annihilated;
        }
        self.left.push(LeftEntry {
            join: j.id,
            key,
            token: token.clone(),
            neg_count,
        });
        PlusOutcome::Inserted
    }

    /// Applies a `−` token to the left memory of `j`.
    pub fn left_minus(&mut self, j: &JoinNode, key: u64, token: &Token) -> MinusOutcome {
        let mut examined = 0u64;
        for i in 0..self.left.len() {
            let e = &self.left[i];
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && e.token.same_wmes(token) {
                let e = self.left.swap_remove(i);
                return MinusOutcome::Removed {
                    neg_count: e.neg_count,
                    examined,
                };
            }
        }
        self.extra_del_left.push((j.id, key, token.clone()));
        MinusOutcome::Parked
    }

    /// Applies a `+` WME to the right memory of `j`.
    pub fn right_plus(&mut self, j: &JoinNode, key: u64, wme: &WmeRef) -> PlusOutcome {
        if let Some(i) = self
            .extra_del_right
            .iter()
            .position(|(jj, kk, w)| *jj == j.id && *kk == key && w.timetag == wme.timetag)
        {
            self.extra_del_right.swap_remove(i);
            return PlusOutcome::Annihilated;
        }
        self.right.push(RightEntry {
            join: j.id,
            key,
            wme: wme.clone(),
        });
        PlusOutcome::Inserted
    }

    /// Applies a `−` WME to the right memory of `j`.
    pub fn right_minus(&mut self, j: &JoinNode, key: u64, wme: &WmeRef) -> MinusOutcome {
        let mut examined = 0u64;
        for i in 0..self.right.len() {
            let e = &self.right[i];
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && e.wme.timetag == wme.timetag {
                self.right.swap_remove(i);
                return MinusOutcome::Removed {
                    neg_count: 0,
                    examined,
                };
            }
        }
        self.extra_del_right.push((j.id, key, wme.clone()));
        MinusOutcome::Parked
    }

    /// Right-memory WMEs pairing with `token` under the join tests,
    /// appended to `out` (cleared first). Returns tokens examined. The
    /// caller owns `out` so the scan allocates nothing in steady state.
    pub fn scan_right(&self, j: &JoinNode, key: u64, token: &Token, out: &mut Vec<WmeRef>) -> u64 {
        out.clear();
        let ops = j.resolve_left(token);
        let mut examined = 0u64;
        for e in &self.right {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes_resolved(&ops, token, &e.wme) {
                out.push(e.wme.clone());
            }
        }
        examined
    }

    /// Left-memory tokens pairing with `wme` under the join tests,
    /// appended to `out` (cleared first). Returns tokens examined.
    pub fn scan_left(&self, j: &JoinNode, key: u64, wme: &Wme, out: &mut Vec<Token>) -> u64 {
        out.clear();
        let mut examined = 0u64;
        for e in &self.left {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes(&e.token, wme) {
                out.push(e.token.clone());
            }
        }
        examined
    }

    /// Not-node counter maintenance for a right activation: bump matching
    /// left entries by `delta`, appending tokens that crossed 0 to `out`
    /// (cleared first). Returns tokens examined.
    pub fn adjust_left_counts(
        &mut self,
        j: &JoinNode,
        key: u64,
        wme: &Wme,
        delta: i32,
        out: &mut Vec<Token>,
    ) -> u64 {
        out.clear();
        let mut examined = 0u64;
        for e in self.left.iter_mut() {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes(&e.token, wme) {
                if delta > 0 {
                    e.neg_count += 1;
                    if e.neg_count == 1 {
                        out.push(e.token.clone());
                    }
                } else {
                    debug_assert!(e.neg_count > 0, "not-node counter underflow");
                    e.neg_count = e.neg_count.saturating_sub(1);
                    if e.neg_count == 0 {
                        out.push(e.token.clone());
                    }
                }
            }
        }
        examined
    }

    /// Matching right-memory WME count for a not-node left activation.
    pub fn count_right(&self, j: &JoinNode, key: u64, token: &Token) -> (u32, u64) {
        let ops = j.resolve_left(token);
        let mut n = 0u32;
        let mut examined = 0u64;
        for e in &self.right {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes_resolved(&ops, token, &e.wme) {
                n += 1;
            }
        }
        (n, examined)
    }

    /// Entries stored (for quiescence invariants in tests).
    pub fn entries(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Parked extra-deletes (must be empty at quiescence).
    pub fn parked(&self) -> usize {
        self.extra_del_left.len() + self.extra_del_right.len()
    }
}

// --------------------------------------------------------------- line locks

const FLAG_UNUSED: u8 = 0;
const FLAG_LEFT: u8 = 1;
const FLAG_RIGHT: u8 = 2;

struct EntryState {
    flag: u8,
    count: u32,
}

/// A line plus its lock structures (both schemes are always allocated; the
/// matcher's configuration decides which protocol is exercised).
pub struct LineLock {
    simple: SpinLock<ParLine>,
    entry: SpinLock<EntryState>,
    data: RwSpinLock<ParLine>,
}

impl Default for LineLock {
    fn default() -> Self {
        Self::new()
    }
}

impl LineLock {
    pub fn new() -> LineLock {
        LineLock {
            simple: SpinLock::new(ParLine::default()),
            entry: SpinLock::new(EntryState {
                flag: FLAG_UNUSED,
                count: 0,
            }),
            data: RwSpinLock::new(ParLine::default()),
        }
    }

    // -- simple scheme ------------------------------------------------------

    /// Exclusive whole-activation lock (simple scheme).
    pub fn lock_simple(&self) -> SpinGuard<'_, ParLine> {
        self.simple.lock()
    }

    // -- MRSW scheme --------------------------------------------------------

    /// First phase of the MRSW protocol: try to claim the line for `side`.
    /// Returns `(entered, spins_on_entry_lock)`; on `false` the caller must
    /// requeue the token.
    pub fn try_enter(&self, side: Side) -> (bool, u64) {
        let mut st = self.entry.lock();
        let spins = st.spins;
        let want = match side {
            Side::Left => FLAG_LEFT,
            Side::Right => FLAG_RIGHT,
        };
        if st.flag == FLAG_UNUSED {
            st.flag = want;
            st.count = 1;
            (true, spins)
        } else if st.flag == want {
            st.count += 1;
            (true, spins)
        } else {
            (false, spins)
        }
    }

    /// Last phase: release the claim; the last user resets the flag.
    pub fn exit(&self) {
        let mut st = self.entry.lock();
        debug_assert!(st.count > 0);
        st.count -= 1;
        if st.count == 0 {
            st.flag = FLAG_UNUSED;
        }
    }

    /// Modification lock (serializes destructive list updates).
    pub fn write(&self) -> RwWriteGuard<'_, ParLine> {
        self.data.write()
    }

    /// Shared read access for scanning the opposite memory.
    pub fn read(&self) -> RwReadGuard<'_, ParLine> {
        self.data.read()
    }

    /// The line storage used by a scheme (tests / invariant checks).
    pub fn peek_entries(&self, scheme: LockScheme) -> (usize, usize) {
        match scheme {
            LockScheme::Simple => {
                let g = self.simple.lock();
                (g.entries(), g.parked())
            }
            LockScheme::Mrsw => {
                let g = self.data.read();
                (g.entries(), g.parked())
            }
        }
    }

    /// Contention counters of the lock relevant to `scheme`.
    pub fn contention(&self, scheme: LockScheme) -> (u64, u64) {
        match scheme {
            LockScheme::Simple => self.simple.contention(),
            LockScheme::Mrsw => self.entry.contention(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{Program, Value, Wme};
    use rete::network::Network;

    fn join() -> (ops5::SymbolId, ops5::SymbolId, JoinNode) {
        let mut prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        (ca, cb, net.join(0).clone())
    }

    #[test]
    fn conjugate_pair_left() {
        let (ca, _, j) = join();
        let mut line = ParLine::default();
        let tok = Token::single(Wme::new(ca, vec![Value::Int(1)], 1));
        let key = j.left_key(&tok);
        // Minus first: parks.
        assert_eq!(line.left_minus(&j, key, &tok), MinusOutcome::Parked);
        assert_eq!(line.parked(), 1);
        // Plus finds the parked minus: both annihilate.
        assert_eq!(line.left_plus(&j, key, &tok, 0), PlusOutcome::Annihilated);
        assert_eq!(line.parked(), 0);
        assert_eq!(line.entries(), 0);
    }

    #[test]
    fn conjugate_pair_right() {
        let (_, cb, j) = join();
        let mut line = ParLine::default();
        let w = Wme::new(cb, vec![Value::Int(1)], 2);
        let key = j.right_key(&w);
        assert_eq!(line.right_minus(&j, key, &w), MinusOutcome::Parked);
        assert_eq!(line.right_plus(&j, key, &w), PlusOutcome::Annihilated);
        assert_eq!(line.entries() + line.parked(), 0);
    }

    #[test]
    fn in_order_plus_minus() {
        let (ca, _, j) = join();
        let mut line = ParLine::default();
        let tok = Token::single(Wme::new(ca, vec![Value::Int(1)], 1));
        let key = j.left_key(&tok);
        assert_eq!(line.left_plus(&j, key, &tok, 0), PlusOutcome::Inserted);
        match line.left_minus(&j, key, &tok) {
            MinusOutcome::Removed { neg_count: 0, .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(line.entries(), 0);
    }

    #[test]
    fn scan_respects_join_and_key() {
        let (ca, cb, j) = join();
        let mut line = ParLine::default();
        let w1 = Wme::new(cb, vec![Value::Int(1)], 1);
        let w2 = Wme::new(cb, vec![Value::Int(2)], 2);
        line.right_plus(&j, j.right_key(&w1), &w1);
        line.right_plus(&j, j.right_key(&w2), &w2);
        let tok = Token::single(Wme::new(ca, vec![Value::Int(1)], 3));
        let mut m = Vec::new();
        let examined = line.scan_right(&j, j.left_key(&tok), &tok, &mut m);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timetag, 1);
        // Both entries share the line only if their keys collide in a real
        // table; here we inserted both into one ParLine, so both examined.
        assert_eq!(examined, 2);
    }

    #[test]
    fn mrsw_same_side_concurrent_opposite_requeued() {
        let l = LineLock::new();
        let (ok, _) = l.try_enter(Side::Left);
        assert!(ok);
        let (ok2, _) = l.try_enter(Side::Left);
        assert!(ok2, "same side may share the line");
        let (ok3, _) = l.try_enter(Side::Right);
        assert!(!ok3, "opposite side must requeue");
        l.exit();
        let (ok4, _) = l.try_enter(Side::Right);
        assert!(!ok4, "still one left user");
        l.exit();
        let (ok5, _) = l.try_enter(Side::Right);
        assert!(ok5, "line free again");
        l.exit();
    }

    #[test]
    fn simple_lock_is_exclusive() {
        let l = LineLock::new();
        let g = l.lock_simple();
        drop(g);
        let _g2 = l.lock_simple();
    }

    #[test]
    fn adjust_counts_cross_zero() {
        let prog = Program::from_source("(p q (a ^x <v>) - (b ^y <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let j = net.join(0).clone();
        let mut prog = prog;
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let mut line = ParLine::default();
        let tok = Token::single(Wme::new(ca, vec![Value::Int(1)], 1));
        line.left_plus(&j, j.left_key(&tok), &tok, 0);
        let w = Wme::new(cb, vec![Value::Int(1)], 2);
        let key = j.right_key(&w);
        let mut c = Vec::new();
        line.adjust_left_counts(&j, key, &w, 1, &mut c);
        assert_eq!(c.len(), 1, "0→1 crossing");
        line.adjust_left_counts(&j, key, &w, -1, &mut c);
        assert_eq!(c.len(), 1, "1→0 crossing");
    }
}
