//! Shared atomic statistics for the parallel matcher.

use ops5::MatchStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Match statistics maintained with relaxed atomics by all match processes.
#[derive(Default)]
pub struct AtomicMatchStats {
    pub wme_changes: AtomicU64,
    pub activations: AtomicU64,
    pub alpha_activations: AtomicU64,
    pub opp_tokens_left: AtomicU64,
    pub opp_nonempty_left: AtomicU64,
    pub opp_tokens_right: AtomicU64,
    pub opp_nonempty_right: AtomicU64,
    pub same_tokens_left: AtomicU64,
    pub same_searches_left: AtomicU64,
    pub same_tokens_right: AtomicU64,
    pub same_searches_right: AtomicU64,
    pub cs_changes: AtomicU64,
    pub conjugate_pairs: AtomicU64,
    pub join_activations: AtomicU64,
    pub null_activations: AtomicU64,
    pub null_skipped: AtomicU64,
}

impl AtomicMatchStats {
    pub fn snapshot(&self) -> MatchStats {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MatchStats {
            wme_changes: g(&self.wme_changes),
            activations: g(&self.activations),
            alpha_activations: g(&self.alpha_activations),
            opp_tokens_left: g(&self.opp_tokens_left),
            opp_nonempty_left: g(&self.opp_nonempty_left),
            opp_tokens_right: g(&self.opp_tokens_right),
            opp_nonempty_right: g(&self.opp_nonempty_right),
            same_tokens_left: g(&self.same_tokens_left),
            same_searches_left: g(&self.same_searches_left),
            same_tokens_right: g(&self.same_tokens_right),
            same_searches_right: g(&self.same_searches_right),
            cs_changes: g(&self.cs_changes),
            conjugate_pairs: g(&self.conjugate_pairs),
            join_activations: g(&self.join_activations),
            null_activations: g(&self.null_activations),
            null_skipped: g(&self.null_skipped),
        }
    }

    pub fn reset(&self) {
        let z = |a: &AtomicU64| a.store(0, Ordering::Relaxed);
        z(&self.wme_changes);
        z(&self.activations);
        z(&self.alpha_activations);
        z(&self.opp_tokens_left);
        z(&self.opp_nonempty_left);
        z(&self.opp_tokens_right);
        z(&self.opp_nonempty_right);
        z(&self.same_tokens_left);
        z(&self.same_searches_left);
        z(&self.same_tokens_right);
        z(&self.same_searches_right);
        z(&self.cs_changes);
        z(&self.conjugate_pairs);
        z(&self.join_activations);
        z(&self.null_activations);
        z(&self.null_skipped);
    }
}

/// Contention counters for the shared structures (Tables 4-7 and 4-9).
#[derive(Default)]
pub struct ContentionStats {
    /// Spins observed while acquiring hash-line locks, attributed to the
    /// side the activation arrived on.
    pub hash_spins_left: AtomicU64,
    pub hash_acqs_left: AtomicU64,
    pub hash_spins_right: AtomicU64,
    pub hash_acqs_right: AtomicU64,
    /// MRSW: tokens put back on the task queue because the line was in use
    /// by the other side.
    pub requeues: AtomicU64,
}

impl ContentionStats {
    #[inline]
    pub fn record_hash(&self, left: bool, spins: u64) {
        if left {
            self.hash_spins_left.fetch_add(spins, Ordering::Relaxed);
            self.hash_acqs_left.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hash_spins_right.fetch_add(spins, Ordering::Relaxed);
            self.hash_acqs_right.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> ContentionReport {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ContentionReport {
            queue_spins: 0,
            queue_acqs: 0,
            hash_spins_left: g(&self.hash_spins_left),
            hash_acqs_left: g(&self.hash_acqs_left),
            hash_spins_right: g(&self.hash_spins_right),
            hash_acqs_right: g(&self.hash_acqs_right),
            requeues: g(&self.requeues),
        }
    }

    pub fn reset(&self) {
        let z = |a: &AtomicU64| a.store(0, Ordering::Relaxed);
        z(&self.hash_spins_left);
        z(&self.hash_acqs_left);
        z(&self.hash_spins_right);
        z(&self.hash_acqs_right);
        z(&self.requeues);
    }
}

/// A point-in-time contention report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentionReport {
    pub queue_spins: u64,
    pub queue_acqs: u64,
    pub hash_spins_left: u64,
    pub hash_acqs_left: u64,
    pub hash_spins_right: u64,
    pub hash_acqs_right: u64,
    pub requeues: u64,
}

impl ContentionReport {
    /// Average spins per queue-lock acquisition (Table 4-7's metric).
    pub fn avg_queue(&self) -> f64 {
        avg(self.queue_spins, self.queue_acqs)
    }
    /// Average spins per left-side hash-line acquisition (Table 4-9).
    pub fn avg_hash_left(&self) -> f64 {
        avg(self.hash_spins_left, self.hash_acqs_left)
    }
    pub fn avg_hash_right(&self) -> f64 {
        avg(self.hash_spins_right, self.hash_acqs_right)
    }
}

fn avg(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let s = AtomicMatchStats::default();
        s.activations.fetch_add(5, Ordering::Relaxed);
        s.cs_changes.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.activations, 5);
        assert_eq!(snap.cs_changes, 2);
        s.reset();
        assert_eq!(s.snapshot().activations, 0);
    }

    #[test]
    fn contention_attribution() {
        let c = ContentionStats::default();
        c.record_hash(true, 10);
        c.record_hash(true, 0);
        c.record_hash(false, 4);
        let r = c.snapshot();
        assert_eq!(r.hash_spins_left, 10);
        assert_eq!(r.hash_acqs_left, 2);
        assert!((r.avg_hash_left() - 5.0).abs() < 1e-9);
        assert!((r.avg_hash_right() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn avg_handles_zero_denominator() {
        let r = ContentionReport::default();
        assert_eq!(r.avg_queue(), 0.0);
    }
}
