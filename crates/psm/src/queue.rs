//! Task queues and the TaskCount termination counter (§3.1–3.2).
//!
//! A task is one schedulable node activation, represented — as in the paper
//! — by the token itself plus its destination (node id and input side). The
//! queues are plain deques behind instrumented spin locks; using 1 queue
//! reproduces Table 4-5, multiple queues Table 4-6, and the spin counters
//! feed Table 4-7.
//!
//! **TaskCount** holds (tokens in queues) + (tokens being processed): it is
//! incremented *before* a task is pushed and decremented only after the
//! processing of a popped task — including pushing its children — has
//! finished, so it reaches zero exactly when the match phase is complete.

use crate::sync::SpinLock;
use ops5::{ProdId, Sign, SymbolId, WmeChange, WmeRef};
use rete::network::JoinId;
use rete::token::Token;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};

/// One schedulable unit of match work.
#[derive(Debug, Clone)]
pub enum ParTask {
    /// A WME change from the control process, bound for the (grouped)
    /// constant-test nodes.
    Root { sign: Sign, wme: WmeRef },
    /// A whole per-class group of WME changes from one [`ops5::ChangeBatch`]:
    /// one TaskCount increment and one queue push cover every change in the
    /// group, and the worker walks the class's constant-test chain once.
    RootGroup {
        class: SymbolId,
        changes: Vec<WmeChange>,
    },
    /// Token bound for the left input of a two-input node.
    Left {
        join: JoinId,
        sign: Sign,
        token: Token,
    },
    /// WME bound for the right input of a two-input node.
    Right {
        join: JoinId,
        sign: Sign,
        wme: WmeRef,
    },
    /// Token bound for a terminal node.
    Terminal {
        prod: ProdId,
        sign: Sign,
        token: Token,
    },
}

/// The global count of tokens on queues plus tokens being processed.
#[derive(Default)]
pub struct TaskCount(AtomicI64);

impl TaskCount {
    pub fn new() -> Self {
        TaskCount(AtomicI64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::AcqRel);
    }

    #[inline]
    pub fn dec(&self) {
        let prev = self.0.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "TaskCount underflow");
    }

    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.load(Ordering::Acquire) == 0
    }

    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Acquire)
    }
}

/// `k` task queues plus the TaskCount.
pub struct Scheduler {
    queues: Vec<SpinLock<VecDeque<ParTask>>>,
    count: TaskCount,
}

impl Scheduler {
    pub fn new(n_queues: usize) -> Scheduler {
        let n = n_queues.max(1);
        Scheduler {
            queues: (0..n).map(|_| SpinLock::new(VecDeque::new())).collect(),
            count: TaskCount::new(),
        }
    }

    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    pub fn task_count(&self) -> &TaskCount {
        &self.count
    }

    /// Pushes a new task. `cursor` is the caller's rotating queue cursor
    /// (each process distributes its pushes round-robin over the queues).
    pub fn push(&self, task: ParTask, cursor: &mut usize) {
        self.count.inc();
        self.push_raw(task, cursor);
    }

    /// Re-pushes a task that was popped but could not run (MRSW line busy
    /// from the other side, §3.2). The task is still accounted for in
    /// TaskCount, so no increment.
    pub fn push_requeue(&self, task: ParTask, cursor: &mut usize) {
        self.push_raw(task, cursor);
    }

    fn push_raw(&self, task: ParTask, cursor: &mut usize) {
        let q = *cursor % self.queues.len();
        *cursor = cursor.wrapping_add(1);
        self.queues[q].lock().push_back(task);
    }

    /// Pops a task: the home queue first, then the others round-robin.
    /// Returns `None` when every queue is empty (the caller spins on
    /// TaskCount).
    pub fn pop(&self, home: usize) -> Option<ParTask> {
        let n = self.queues.len();
        for i in 0..n {
            let q = (home + i) % n;
            if let Some(t) = self.queues[q].lock().pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Marks a popped task fully processed (children already pushed).
    #[inline]
    pub fn task_done(&self) {
        self.count.dec();
    }

    /// Match phase complete?
    #[inline]
    pub fn quiescent(&self) -> bool {
        self.count.is_zero()
    }

    /// Aggregate queue-lock contention: (spins, acquisitions).
    pub fn contention(&self) -> (u64, u64) {
        let mut spins = 0;
        let mut acqs = 0;
        for q in &self.queues {
            let (s, a) = q.contention();
            spins += s;
            acqs += a;
        }
        (spins, acqs)
    }

    /// Zero the per-queue spin counters. Only legal while quiescent —
    /// workers draining tasks would race the reset and tear the ratio.
    pub fn reset_contention(&self) {
        debug_assert!(
            self.quiescent(),
            "reset_contention called with tasks outstanding"
        );
        for q in &self.queues {
            q.reset_contention();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{SymbolId, Value, Wme};

    fn task(tag: u64) -> ParTask {
        ParTask::Root {
            sign: Sign::Plus,
            wme: Wme::new(SymbolId(1), vec![Value::Int(1)], tag),
        }
    }

    fn tag_of(t: &ParTask) -> u64 {
        match t {
            ParTask::Root { wme, .. } => wme.timetag,
            _ => unreachable!(),
        }
    }

    #[test]
    fn push_pop_fifo_single_queue() {
        let s = Scheduler::new(1);
        let mut cur = 0;
        s.push(task(1), &mut cur);
        s.push(task(2), &mut cur);
        assert_eq!(s.task_count().value(), 2);
        assert_eq!(tag_of(&s.pop(0).unwrap()), 1);
        assert_eq!(tag_of(&s.pop(0).unwrap()), 2);
        assert!(s.pop(0).is_none());
        // Still 2: pops don't decrement; processing completion does.
        assert_eq!(s.task_count().value(), 2);
        s.task_done();
        s.task_done();
        assert!(s.quiescent());
    }

    #[test]
    fn round_robin_distribution() {
        let s = Scheduler::new(4);
        let mut cur = 0;
        for i in 0..8 {
            s.push(task(i), &mut cur);
        }
        // Each queue got 2 tasks; popping from home=1 drains queue 1 first.
        let t = s.pop(1).unwrap();
        assert_eq!(tag_of(&t), 1);
    }

    #[test]
    fn pop_steals_from_other_queues() {
        let s = Scheduler::new(4);
        let mut cur = 2; // push lands in queue 2
        s.push(task(7), &mut cur);
        let t = s.pop(0).unwrap();
        assert_eq!(tag_of(&t), 7);
    }

    #[test]
    fn requeue_does_not_double_count() {
        let s = Scheduler::new(1);
        let mut cur = 0;
        s.push(task(1), &mut cur);
        let t = s.pop(0).unwrap();
        s.push_requeue(t, &mut cur);
        assert_eq!(s.task_count().value(), 1);
        let _ = s.pop(0).unwrap();
        s.task_done();
        assert!(s.quiescent());
    }

    #[test]
    fn concurrent_producers_consumers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = Arc::new(Scheduler::new(4));
        let consumed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..2 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut cur = p;
                for i in 0..1000 {
                    s.push(task(i), &mut cur);
                }
            }));
        }
        for c in 0..2 {
            let s = s.clone();
            let consumed = consumed.clone();
            handles.push(std::thread::spawn(move || loop {
                if let Some(_t) = s.pop(c) {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    s.task_done();
                } else if consumed.load(Ordering::Relaxed) == 2000 {
                    break;
                } else {
                    std::hint::spin_loop();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), 2000);
        assert!(s.quiescent());
        let (_, acqs) = s.contention();
        assert!(acqs >= 4000, "every push and successful pop takes a lock");
    }
}
