//! The parallel match engine: k match processes cooperating through shared
//! task queues and the global token hash tables (§3.1–3.2).

use crate::line::{LineLock, LockScheme, MinusOutcome, ParLine, PlusOutcome, Side};
use crate::queue::{ParTask, Scheduler};
use crate::stats::{AtomicMatchStats, ContentionReport, ContentionStats};
use crate::steal::StealScheduler;
use crate::sync::SpinLock;
use ops5::{
    ChangeBatch, CsChange, Instantiation, MatchStats, Matcher, ProdId, QuiesceReport, Sign,
    StatsDeltaTracker, WmeRef,
};
use rete::fxhash::FxHashMap;
use rete::network::{AlphaSucc, JoinNode, Network, Succ};
use rete::token::Token;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Task-scheduling implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The paper's design: 1..n shared deques behind TTAS spin locks.
    #[default]
    SpinQueues,
    /// Modern extension: per-worker crossbeam deques with work stealing
    /// (the software descendant of the hardware task scheduler the paper
    /// left as future work).
    WorkStealing,
}

/// Parallel matcher configuration — the axes varied in Tables 4-5..4-9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsmConfig {
    /// Number of match processes (the "k" in "1+k").
    pub match_processes: usize,
    /// Number of task queues (1 for Table 4-5, up to 8 for Table 4-6).
    /// Ignored under `SchedulerKind::WorkStealing`.
    pub queues: usize,
    /// Hash-line lock scheme (simple vs MRSW, Table 4-8).
    pub lock_scheme: LockScheme,
    /// Hash-table lines (bucket pairs); rounded up to a power of two.
    pub buckets: usize,
    /// Scheduling implementation.
    pub scheduler: SchedulerKind,
}

impl Default for PsmConfig {
    fn default() -> Self {
        PsmConfig {
            match_processes: 2,
            queues: 2,
            lock_scheme: LockScheme::Simple,
            buckets: 1024,
            scheduler: SchedulerKind::SpinQueues,
        }
    }
}

type InstKey = (ProdId, Vec<u64>);

/// The active scheduling implementation.
enum Work {
    Spin(Scheduler),
    Steal(Box<StealScheduler>),
}

/// Per-thread scheduling context: the round-robin push cursor (spin
/// queues) and the local deque (work stealing; `None` on the control
/// thread).
struct Ctx {
    cursor: usize,
    local: Option<crossbeam::deque::Worker<ParTask>>,
}

/// Per-worker reusable scan buffers: a steady-state activation performs no
/// heap allocation for its match lists. Kept separate from [`Ctx`] so a
/// drain of one buffer can run concurrently with queue pushes through `ctx`.
#[derive(Default)]
struct Scratch {
    wmes: Vec<WmeRef>,
    tokens: Vec<Token>,
}

impl Work {
    fn push(&self, task: ParTask, ctx: &mut Ctx) {
        match self {
            Work::Spin(s) => s.push(task, &mut ctx.cursor),
            Work::Steal(s) => s.push(task, ctx.local.as_ref()),
        }
    }

    fn push_requeue(&self, task: ParTask, ctx: &mut Ctx) {
        match self {
            Work::Spin(s) => s.push_requeue(task, &mut ctx.cursor),
            Work::Steal(s) => s.push_requeue(task, ctx.local.as_ref()),
        }
    }

    fn pop(&self, ctx: &Ctx, home: usize) -> Option<ParTask> {
        match self {
            Work::Spin(s) => s.pop(home),
            Work::Steal(s) => s.pop(ctx.local.as_ref().expect("worker has a local deque")),
        }
    }

    fn task_done(&self) {
        match self {
            Work::Spin(s) => s.task_done(),
            Work::Steal(s) => s.task_done(),
        }
    }

    fn quiescent(&self) -> bool {
        match self {
            Work::Spin(s) => s.quiescent(),
            Work::Steal(s) => s.quiescent(),
        }
    }

    fn task_count(&self) -> i64 {
        match self {
            Work::Spin(s) => s.task_count().value(),
            Work::Steal(s) => s.task_count().value(),
        }
    }

    fn contention(&self) -> (u64, u64) {
        match self {
            Work::Spin(s) => s.contention(),
            // crossbeam deques are lock-free; no spin metric exists.
            Work::Steal(_) => (0, 0),
        }
    }

    fn reset_contention(&self) {
        if let Work::Spin(s) = self {
            s.reset_contention();
        }
    }
}

/// Sleep/wake coordination for idle match processes. Workers that find the
/// queues empty back off from spinning to yielding to parking on the
/// condvar; every push notifies if anyone is parked, so wake latency stays
/// in the microseconds while idle CPU burn drops to ~zero.
#[derive(Default)]
struct Parker {
    /// Workers registered as (about to be) parked. Incremented under
    /// `lock`, and checked by pushers with a SeqCst load *after* their task
    /// is visible in a queue. A worker registers and then re-polls the
    /// queues while still holding the mutex, so for any push exactly one of
    /// two things holds: the pusher's sleeper-load saw the registration
    /// (and its notify serializes after our wait via the mutex), or the
    /// registration wasn't visible yet — in which case the push itself
    /// happened before our under-mutex re-poll (queue accesses are lock
    /// mediated on both scheduler kinds) and the re-poll finds the task.
    /// Either way no wakeup is lost, so the wait needs no timeout crutch.
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Profiling instruments shared by the match processes, installed once by
/// [`Matcher::enable_obs`]. Absent (one `OnceLock` load per check) on the
/// disabled path.
struct MatchObs {
    /// Per-join-node activation / scanned-token profile.
    nodes: Arc<obs::NodeProfile>,
    /// Wall time spent inside `process_task`, per task.
    task_latency_ns: Arc<obs::Histogram>,
    /// Wall time a worker sat idle between finding the queues empty and the
    /// next successful pop.
    queue_wait_ns: Arc<obs::Histogram>,
    /// Backoff transitions: spin→yield escalations and condvar parks.
    spin_to_yield: Arc<obs::Counter>,
    parks: Arc<obs::Counter>,
    /// Pushes that found a registered sleeper and notified the condvar.
    wakes: Arc<obs::Counter>,
}

struct Shared {
    net: Arc<Network>,
    sched: Work,
    lines: Box<[LineLock]>,
    mask: u64,
    scheme: LockScheme,
    /// Net conflict-set deltas for the current match phase: key → (net
    /// count, a representative instantiation). Net counting makes the output
    /// independent of task interleaving.
    cs_acc: SpinLock<FxHashMap<InstKey, (i32, Instantiation)>>,
    /// Global per-join memory sizes across all hash lines — the left/right
    /// unlinking gates. Updated with relaxed atomics while the owning line's
    /// lock is held, driven by the line outcome (count a left token only on
    /// `PlusOutcome::Inserted`, uncount only on `MinusOutcome::Removed`), so
    /// parked and annihilated conjugates never perturb the counts. A gate
    /// read under a line lock can only see a stale value for entries in
    /// *other* lines, which are never pairable with the activation at hand,
    /// so a skip is always sound (see DESIGN.md).
    left_counts: Box<[AtomicU32]>,
    right_counts: Box<[AtomicU32]>,
    parker: Parker,
    /// OS thread ids of the match processes, self-reported at startup
    /// (std exposes no portable tid). Used by per-worker CPU accounting.
    worker_tids: SpinLock<Vec<u64>>,
    stop: AtomicBool,
    stats: AtomicMatchStats,
    cstats: ContentionStats,
    obs: OnceLock<MatchObs>,
}

impl Shared {
    /// Push a new task and wake any parked worker.
    fn push(&self, task: ParTask, ctx: &mut Ctx) {
        self.sched.push(task, ctx);
        self.wake();
    }

    /// Re-push an MRSW-refused task (already counted) and wake.
    fn push_requeue(&self, task: ParTask, ctx: &mut Ctx) {
        self.sched.push_requeue(task, ctx);
        self.wake();
    }

    #[inline]
    fn wake(&self) {
        if self.parker.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the mutex orders this notify after any in-flight
            // register→recheck sequence, so the wakeup cannot be lost.
            let _g = self.parker.lock.lock().expect("parker mutex");
            if let Some(o) = self.obs.get() {
                o.wakes.inc();
            }
            self.parker.cv.notify_all();
        }
    }

    #[inline]
    fn left_empty(&self, j: &JoinNode) -> bool {
        self.left_counts[j.id as usize].load(Ordering::Relaxed) == 0
    }

    #[inline]
    fn right_empty(&self, j: &JoinNode) -> bool {
        self.right_counts[j.id as usize].load(Ordering::Relaxed) == 0
    }

    #[inline]
    fn count_left(&self, j: &JoinNode, delta: i32) {
        bump(&self.left_counts[j.id as usize], delta);
    }

    #[inline]
    fn count_right(&self, j: &JoinNode, delta: i32) {
        bump(&self.right_counts[j.id as usize], delta);
    }
}

#[inline]
fn bump(c: &AtomicU32, delta: i32) {
    if delta >= 0 {
        c.fetch_add(delta as u32, Ordering::Relaxed);
    } else {
        let prev = c.fetch_sub((-delta) as u32, Ordering::Relaxed);
        debug_assert!(prev >= (-delta) as u32, "join memory count underflow");
    }
}

/// PSM-E: the parallel Rete matcher.
///
/// Construct with [`ParMatcher::new`], drive through the [`Matcher`] trait.
/// The control process (the caller) submits WME changes, which become root
/// tasks; the match processes drain the task queues until TaskCount hits
/// zero at `quiesce`.
pub struct ParMatcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    ctx: Ctx,
    cfg: PsmConfig,
    delta: StatsDeltaTracker,
    cobs: Option<ContentionObs>,
}

/// Registry counters mirroring the contention plumbing. The control thread
/// folds the delta since the previous quiescence point into them at every
/// `quiesce()` — the only moment the spin counters are stable.
struct ContentionObs {
    queue_spins: Arc<obs::Counter>,
    queue_acqs: Arc<obs::Counter>,
    hash_spins_left: Arc<obs::Counter>,
    hash_acqs_left: Arc<obs::Counter>,
    hash_spins_right: Arc<obs::Counter>,
    hash_acqs_right: Arc<obs::Counter>,
    requeues: Arc<obs::Counter>,
    last: ContentionReport,
}

impl ContentionObs {
    fn absorb(&mut self, now: ContentionReport) {
        // saturating: a reset_contention() between quiescence points may
        // rewind the raw counters below the previous snapshot.
        self.queue_spins
            .add(now.queue_spins.saturating_sub(self.last.queue_spins));
        self.queue_acqs
            .add(now.queue_acqs.saturating_sub(self.last.queue_acqs));
        self.hash_spins_left.add(
            now.hash_spins_left
                .saturating_sub(self.last.hash_spins_left),
        );
        self.hash_acqs_left
            .add(now.hash_acqs_left.saturating_sub(self.last.hash_acqs_left));
        self.hash_spins_right.add(
            now.hash_spins_right
                .saturating_sub(self.last.hash_spins_right),
        );
        self.hash_acqs_right.add(
            now.hash_acqs_right
                .saturating_sub(self.last.hash_acqs_right),
        );
        self.requeues
            .add(now.requeues.saturating_sub(self.last.requeues));
        self.last = now;
    }
}

impl ParMatcher {
    pub fn new(net: Arc<Network>, cfg: PsmConfig) -> ParMatcher {
        let n_lines = cfg.buckets.next_power_of_two().max(2);
        let lines: Box<[LineLock]> = (0..n_lines).map(|_| LineLock::new()).collect();
        let sched = match cfg.scheduler {
            SchedulerKind::SpinQueues => Work::Spin(Scheduler::new(cfg.queues)),
            SchedulerKind::WorkStealing => {
                Work::Steal(Box::new(StealScheduler::new(cfg.match_processes.max(1))))
            }
        };
        let n_joins = net.n_joins();
        let shared = Arc::new(Shared {
            net,
            sched,
            lines,
            mask: (n_lines - 1) as u64,
            scheme: cfg.lock_scheme,
            cs_acc: SpinLock::new(FxHashMap::default()),
            left_counts: (0..n_joins).map(|_| AtomicU32::new(0)).collect(),
            right_counts: (0..n_joins).map(|_| AtomicU32::new(0)).collect(),
            parker: Parker::default(),
            worker_tids: SpinLock::new(Vec::new()),
            stop: AtomicBool::new(false),
            stats: AtomicMatchStats::default(),
            cstats: ContentionStats::default(),
            obs: OnceLock::new(),
        });
        let workers = (0..cfg.match_processes.max(1))
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("psm-match-{i}"))
                    .spawn(move || worker_loop(sh, i))
                    .expect("spawn match process")
            })
            .collect();
        ParMatcher {
            shared,
            workers,
            ctx: Ctx {
                cursor: 0,
                local: None,
            },
            cfg,
            delta: StatsDeltaTracker::default(),
            cobs: None,
        }
    }

    /// Boxed constructor for engine factories.
    pub fn boxed(net: Arc<Network>, cfg: PsmConfig) -> Box<dyn Matcher> {
        Box::new(ParMatcher::new(net, cfg))
    }

    pub fn config(&self) -> PsmConfig {
        self.cfg
    }

    /// Contention report: queue-lock and hash-line-lock spin averages.
    pub fn contention(&self) -> ContentionReport {
        let mut r = self.shared.cstats.snapshot();
        let (qs, qa) = self.shared.sched.contention();
        r.queue_spins = qs;
        r.queue_acqs = qa;
        r
    }

    /// Zero the contention counters. Only legal at quiescence: while match
    /// processes are draining tasks they bump these counters concurrently,
    /// and a mid-phase reset would tear the spins/acquisitions ratio.
    pub fn reset_contention(&self) {
        debug_assert!(
            self.shared.sched.quiescent(),
            "reset_contention called while match processes are active"
        );
        self.shared.cstats.reset();
        self.shared.sched.reset_contention();
    }

    /// Total entries parked on extra-deletes lists (must be 0 when quiescent).
    pub fn parked_tokens(&self) -> usize {
        parked_tokens(&self.shared)
    }

    /// A read-only probe onto the matcher's shared state. Lets a test
    /// harness keep checking quiescence invariants after the matcher itself
    /// has been boxed away inside an engine (capture the probe in an
    /// `EngineBuilder::custom_matcher` closure).
    pub fn probe(&self) -> PsmProbe {
        PsmProbe {
            shared: self.shared.clone(),
        }
    }

    /// Sum of CPU jiffies (utime + stime from `/proc`) consumed by the
    /// match-process threads so far. Returns `None` off Linux or if the
    /// procfs read fails. Lets harnesses verify idle workers park rather
    /// than burn a core each.
    pub fn worker_cpu_ticks(&self) -> Option<u64> {
        let tids: Vec<u64> = self.shared.worker_tids.lock().clone();
        if tids.is_empty() {
            return None;
        }
        let mut total = 0u64;
        for tid in tids {
            let stat = std::fs::read_to_string(format!("/proc/self/task/{tid}/stat")).ok()?;
            // Fields after the parenthesised comm (which may contain spaces).
            let (_, rest) = stat.rsplit_once(") ")?;
            let mut fields = rest.split_ascii_whitespace();
            // utime and stime are fields 14 and 15 overall; after ") " the
            // state field is index 0, so they land at indices 11 and 12.
            let utime: u64 = fields.nth(11)?.parse().ok()?;
            let stime: u64 = fields.next()?.parse().ok()?;
            total += utime + stime;
        }
        Some(total)
    }
}

fn parked_tokens(shared: &Shared) -> usize {
    shared
        .lines
        .iter()
        .map(|l| l.peek_entries(shared.scheme).1)
        .sum()
}

/// Read-only view of a [`ParMatcher`]'s shared state for test harnesses.
/// Holding one does not keep the worker threads alive — it only pins the
/// shared allocation.
pub struct PsmProbe {
    shared: Arc<Shared>,
}

impl PsmProbe {
    /// Entries parked on extra-deletes lists (0 at any quiescence point).
    pub fn parked_tokens(&self) -> usize {
        parked_tokens(&self.shared)
    }

    /// Whether TaskCount is zero (no match tasks outstanding).
    pub fn quiescent(&self) -> bool {
        self.shared.sched.quiescent()
    }

    /// The raw TaskCount value (outstanding match tasks). Never negative;
    /// the stress suite asserts this across scheduler/lock sweeps.
    pub fn task_count(&self) -> i64 {
        self.shared.sched.task_count()
    }
}

impl Drop for ParMatcher {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Parked workers would notice within a wait timeout; nudge them now.
        {
            let _g = self.shared.parker.lock.lock().expect("parker mutex");
            self.shared.parker.cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Matcher for ParMatcher {
    fn submit(&mut self, batch: &ChangeBatch) {
        // Conjugate pairs the batch annihilated never became tasks at all —
        // the cheapest possible handling (§3.2).
        self.shared
            .stats
            .conjugate_pairs
            .fetch_add(batch.annihilated(), Ordering::Relaxed);
        // One TaskCount increment and one queue push per per-class group;
        // the worker that pops the group walks the class's constant-test
        // chain once for every change in it.
        for (class, group) in batch.groups() {
            self.shared
                .stats
                .wme_changes
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            self.shared.push(
                ParTask::RootGroup {
                    class,
                    changes: group.to_vec(),
                },
                &mut self.ctx,
            );
        }
    }

    fn quiesce(&mut self) -> QuiesceReport {
        // Wait for TaskCount to reach zero (§3.2). The host may have fewer
        // cores than processes, so be polite while spinning.
        let mut spins = 0u64;
        while !self.shared.sched.quiescent() {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        let mut acc = self.shared.cs_acc.lock();
        let mut out = Vec::with_capacity(acc.len());
        for (_k, (net, inst)) in acc.drain() {
            match net.signum() {
                1 => out.push(CsChange::Insert(inst)),
                -1 => out.push(CsChange::Remove(inst)),
                _ => {}
            }
        }
        drop(acc);
        // Quiescence is the one point where the contention counters are
        // stable; fold the delta since the last snapshot into the registry.
        if self.cobs.is_some() {
            let now = self.contention();
            if let Some(cobs) = &mut self.cobs {
                cobs.absorb(now);
            }
        }
        QuiesceReport {
            cs_changes: out,
            stats_delta: self.delta.take(self.shared.stats.snapshot()),
            phase: None,
        }
    }

    fn stats(&self) -> MatchStats {
        self.shared.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.shared.stats.reset();
        self.delta.reset();
    }

    fn name(&self) -> &'static str {
        "psm-e"
    }

    fn enable_obs(&mut self, registry: &Arc<obs::Registry>) {
        let side = |s: &str| vec![("side".to_string(), s.to_string())];
        self.shared.obs.get_or_init(|| MatchObs {
            nodes: Arc::new(obs::NodeProfile::new(self.shared.net.n_joins())),
            task_latency_ns: registry.histogram("psm_task_latency_ns", vec![]),
            queue_wait_ns: registry.histogram("psm_queue_wait_ns", vec![]),
            spin_to_yield: registry.counter("psm_spin_to_yield_total", vec![]),
            parks: registry.counter("psm_parks_total", vec![]),
            wakes: registry.counter("psm_wakes_total", vec![]),
        });
        if self.cobs.is_none() {
            self.cobs = Some(ContentionObs {
                queue_spins: registry.counter("psm_queue_lock_spins_total", vec![]),
                queue_acqs: registry.counter("psm_queue_lock_acquisitions_total", vec![]),
                hash_spins_left: registry.counter("psm_line_lock_spins_total", side("left")),
                hash_acqs_left: registry.counter("psm_line_lock_acquisitions_total", side("left")),
                hash_spins_right: registry.counter("psm_line_lock_spins_total", side("right")),
                hash_acqs_right: registry
                    .counter("psm_line_lock_acquisitions_total", side("right")),
                requeues: registry.counter("psm_requeues_total", vec![]),
                // Absorb from the current totals forward, not from zero:
                // contention accrued before profiling was enabled belongs
                // to the unprofiled epoch.
                last: self.contention(),
            });
        }
    }

    fn node_profile(&self) -> Option<Arc<obs::NodeProfile>> {
        self.shared.obs.get().map(|o| o.nodes.clone())
    }
}

/// Every Nth task gets timed; the rest skip both clock reads. Match tasks
/// run in single-digit microseconds, so per-task `Instant::now` pairs cost
/// tens of percent of wall — sampling keeps the latency histogram's shape
/// while bounding the enabled-path overhead.
const TASK_SAMPLE_PERIOD: u32 = 16;

/// Start-of-task profiling: fold any pending idle span into the queue-wait
/// histogram and timestamp every Nth task. One `OnceLock` load when
/// disabled.
#[inline]
fn obs_task_start(
    shared: &Shared,
    idle_since: &mut Option<Instant>,
    task_seq: &mut u32,
) -> Option<Instant> {
    let o = shared.obs.get()?;
    if let Some(t0) = idle_since.take() {
        o.queue_wait_ns.record(t0.elapsed().as_nanos() as u64);
    }
    *task_seq = task_seq.wrapping_add(1);
    if (*task_seq).is_multiple_of(TASK_SAMPLE_PERIOD) {
        Some(Instant::now())
    } else {
        None
    }
}

#[inline]
fn obs_task_end(shared: &Shared, started: Option<Instant>) {
    if let Some(t0) = started {
        if let Some(o) = shared.obs.get() {
            o.task_latency_ns.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// This thread's OS tid, via the `/proc/thread-self` symlink (Linux only).
fn os_tid() -> Option<u64> {
    std::fs::read_link("/proc/thread-self")
        .ok()?
        .file_name()?
        .to_str()?
        .parse()
        .ok()
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    let (home, local) = match &shared.sched {
        Work::Spin(s) => (index % s.n_queues(), None),
        Work::Steal(s) => (index, Some(s.claim_worker(index))),
    };
    let mut ctx = Ctx {
        cursor: index,
        local,
    };
    if let Some(tid) = os_tid() {
        shared.worker_tids.lock().push(tid);
    }
    let mut scratch = Scratch::default();
    // Empty-poll backoff: spin briefly (work usually arrives within a few
    // activations' latency), then yield, then park on the condvar. A parked
    // worker costs ~nothing; every queue push wakes it promptly.
    let mut idle = 0u32;
    // When profiling is on, the instant this worker first found the queues
    // empty — consumed into the queue-wait histogram by the next pop.
    let mut idle_since: Option<Instant> = None;
    let mut task_seq = 0u32;
    loop {
        if let Some(task) = shared.sched.pop(&ctx, home) {
            idle = 0;
            let t0 = obs_task_start(&shared, &mut idle_since, &mut task_seq);
            process_task(&shared, task, &mut ctx, &mut scratch);
            obs_task_end(&shared, t0);
            continue;
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        idle += 1;
        if let Some(o) = shared.obs.get() {
            if idle_since.is_none() {
                idle_since = Some(Instant::now());
            }
            if idle == 65 {
                o.spin_to_yield.inc();
            }
        }
        if idle <= 64 {
            std::hint::spin_loop();
        } else if idle <= 256 {
            std::thread::yield_now();
        } else {
            let p = &shared.parker;
            // Register and re-check *under the parker mutex*: a racing push
            // either left its task visible to this pop (queue accesses are
            // lock mediated) or its sleeper-load saw our registration and
            // its notify serializes after our wait via the mutex. No third
            // interleaving exists, so a plain untimed wait is safe.
            let mut guard = p.lock.lock().expect("parker mutex");
            p.sleepers.fetch_add(1, Ordering::SeqCst);
            let recheck = shared.sched.pop(&ctx, home);
            if recheck.is_none() && !shared.stop.load(Ordering::Acquire) {
                if let Some(o) = shared.obs.get() {
                    o.parks.inc();
                }
                guard = p.cv.wait(guard).expect("parker condvar");
            }
            p.sleepers.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            if let Some(task) = recheck {
                idle = 0;
                let t0 = obs_task_start(&shared, &mut idle_since, &mut task_seq);
                process_task(&shared, task, &mut ctx, &mut scratch);
                obs_task_end(&shared, t0);
            }
        }
    }
}

/// Feed one WME change through its class's constant-test patterns, pushing
/// a child task per passing pattern successor.
fn root_dispatch(shared: &Shared, sign: Sign, wme: &WmeRef, ctx: &mut Ctx) {
    for &pid in shared.net.patterns_for_class(wme.class) {
        let pat = shared.net.pattern(pid);
        if !pat.tests.iter().all(|t| t.passes(wme)) {
            continue;
        }
        for succ in &pat.succs {
            match *succ {
                AlphaSucc::JoinLeft(j) => shared.push(
                    ParTask::Left {
                        join: j,
                        sign,
                        token: Token::single(wme.clone()),
                    },
                    ctx,
                ),
                AlphaSucc::JoinRight(j) => shared.push(
                    ParTask::Right {
                        join: j,
                        sign,
                        wme: wme.clone(),
                    },
                    ctx,
                ),
                AlphaSucc::Terminal(p) => shared.push(
                    ParTask::Terminal {
                        prod: p,
                        sign,
                        token: Token::single(wme.clone()),
                    },
                    ctx,
                ),
            }
        }
    }
}

/// Emit a join output to every successor. With sharing off a join has one
/// successor; with it on a shared join fans the token out to each consumer
/// (token clones are `Arc` bumps).
fn emit(shared: &Shared, succs: &[Succ], token: &Token, sign: Sign, ctx: &mut Ctx) {
    for succ in succs {
        match *succ {
            Succ::Join(j) => shared.push(
                ParTask::Left {
                    join: j,
                    sign,
                    token: token.clone(),
                },
                ctx,
            ),
            Succ::Terminal(p) => shared.push(
                ParTask::Terminal {
                    prod: p,
                    sign,
                    token: token.clone(),
                },
                ctx,
            ),
        }
    }
}

fn process_task(shared: &Shared, task: ParTask, ctx: &mut Ctx, scratch: &mut Scratch) {
    match task {
        ParTask::Root { sign, wme } => {
            // One grouped constant-test activation per WME change (§3.1).
            shared
                .stats
                .alpha_activations
                .fetch_add(1, Ordering::Relaxed);
            root_dispatch(shared, sign, &wme, ctx);
            shared.sched.task_done();
        }
        ParTask::RootGroup { class, changes } => {
            // A whole per-class batch group under one task: the constant-test
            // chain for `class` is conceptually walked once, each change
            // tested against it in turn. The join cascade below still sees
            // one child task per surviving (change, pattern-successor) pair,
            // so conjugate parking handles any out-of-order arrivals.
            shared
                .stats
                .alpha_activations
                .fetch_add(1, Ordering::Relaxed);
            debug_assert!(changes.iter().all(|c| c.wme.class == class));
            for change in &changes {
                root_dispatch(shared, change.sign, &change.wme, ctx);
            }
            shared.sched.task_done();
        }
        ParTask::Left { join, sign, token } => {
            let j = shared.net.join(join);
            let key = j.left_key(&token);
            let line = &shared.lines[(key & shared.mask) as usize];
            match shared.scheme {
                LockScheme::Simple => {
                    let mut g = line.lock_simple();
                    shared.cstats.record_hash(true, g.spins);
                    shared.stats.activations.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .join_activations
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = shared.obs.get() {
                        o.nodes.record_activation(join as usize);
                    }
                    left_activation(shared, j, key, sign, &token, &mut g, ctx, scratch);
                }
                LockScheme::Mrsw => {
                    let (entered, spins) = line.try_enter(Side::Left);
                    shared.cstats.record_hash(true, spins);
                    if !entered {
                        shared.cstats.requeues.fetch_add(1, Ordering::Relaxed);
                        shared.push_requeue(ParTask::Left { join, sign, token }, ctx);
                        return; // task still accounted for in TaskCount
                    }
                    shared.stats.activations.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .join_activations
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = shared.obs.get() {
                        o.nodes.record_activation(join as usize);
                    }
                    left_activation_mrsw(shared, j, key, sign, &token, line, ctx, scratch);
                    line.exit();
                }
            }
            shared.sched.task_done();
        }
        ParTask::Right { join, sign, wme } => {
            let j = shared.net.join(join);
            let key = j.right_key(&wme);
            let line = &shared.lines[(key & shared.mask) as usize];
            match shared.scheme {
                LockScheme::Simple => {
                    let mut g = line.lock_simple();
                    shared.cstats.record_hash(false, g.spins);
                    shared.stats.activations.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .join_activations
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = shared.obs.get() {
                        o.nodes.record_activation(join as usize);
                    }
                    right_activation(shared, j, key, sign, &wme, &mut g, ctx, scratch);
                }
                LockScheme::Mrsw => {
                    let (entered, spins) = line.try_enter(Side::Right);
                    shared.cstats.record_hash(false, spins);
                    if !entered {
                        shared.cstats.requeues.fetch_add(1, Ordering::Relaxed);
                        shared.push_requeue(ParTask::Right { join, sign, wme }, ctx);
                        return;
                    }
                    shared.stats.activations.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .join_activations
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = shared.obs.get() {
                        o.nodes.record_activation(join as usize);
                    }
                    right_activation_mrsw(shared, j, key, sign, &wme, line, ctx, scratch);
                    line.exit();
                }
            }
            shared.sched.task_done();
        }
        ParTask::Terminal { prod, sign, token } => {
            shared.stats.activations.fetch_add(1, Ordering::Relaxed);
            shared.stats.cs_changes.fetch_add(1, Ordering::Relaxed);
            let inst = Instantiation {
                prod,
                wmes: token.wme_vec(),
            };
            let key = inst.key();
            let mut acc = shared.cs_acc.lock();
            let entry = acc.entry(key.clone()).or_insert_with(|| (0, inst));
            entry.0 += match sign {
                Sign::Plus => 1,
                Sign::Minus => -1,
            };
            if entry.0 == 0 {
                acc.remove(&key);
            }
            drop(acc);
            shared.sched.task_done();
        }
    }
}

/// Left activation under the simple (exclusive) line lock.
#[allow(clippy::too_many_arguments)]
fn left_activation(
    shared: &Shared,
    j: &JoinNode,
    key: u64,
    sign: Sign,
    token: &Token,
    line: &mut ParLine,
    ctx: &mut Ctx,
    scratch: &mut Scratch,
) {
    // Unlinking gate: with the join's right memory globally empty the
    // opposite-memory scan is a null activation — skip it. Own-side
    // insert/remove always runs, so the memories stay exact and the gate
    // "relinks" itself the moment the opposite side gains an entry.
    let unlink = shared.net.options.unlinking;
    let opp_empty = shared.right_empty(j);
    if !j.negated {
        match sign {
            Sign::Plus => match line.left_plus(j, key, token, 0) {
                PlusOutcome::Annihilated => {
                    shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                PlusOutcome::Inserted => shared.count_left(j, 1),
            },
            Sign::Minus => match line.left_minus(j, key, token) {
                MinusOutcome::Removed { examined, .. } => {
                    shared
                        .stats
                        .same_tokens_left
                        .fetch_add(examined, Ordering::Relaxed);
                    shared
                        .stats
                        .same_searches_left
                        .fetch_add(1, Ordering::Relaxed);
                    shared.count_left(j, -1);
                }
                MinusOutcome::Parked => return,
            },
        }
        if unlink && opp_empty {
            shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
        } else {
            if opp_empty {
                shared
                    .stats
                    .null_activations
                    .fetch_add(1, Ordering::Relaxed);
            }
            let examined = line.scan_right(j, key, token, &mut scratch.wmes);
            record_opp_left(shared, j, examined);
            for w in scratch.wmes.drain(..) {
                emit(shared, &j.succs, &token.extended(w), sign, ctx);
            }
        }
    } else {
        match sign {
            Sign::Plus => {
                let n = if unlink && opp_empty {
                    shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
                    0
                } else {
                    if opp_empty {
                        shared
                            .stats
                            .null_activations
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let (n, examined) = line.count_right(j, key, token);
                    record_opp_left(shared, j, examined);
                    n
                };
                match line.left_plus(j, key, token, n) {
                    PlusOutcome::Annihilated => {
                        shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    PlusOutcome::Inserted => shared.count_left(j, 1),
                }
                if n == 0 {
                    emit(shared, &j.succs, token, Sign::Plus, ctx);
                }
            }
            Sign::Minus => match line.left_minus(j, key, token) {
                MinusOutcome::Removed {
                    neg_count,
                    examined,
                } => {
                    shared
                        .stats
                        .same_tokens_left
                        .fetch_add(examined, Ordering::Relaxed);
                    shared
                        .stats
                        .same_searches_left
                        .fetch_add(1, Ordering::Relaxed);
                    shared.count_left(j, -1);
                    if neg_count == 0 {
                        emit(shared, &j.succs, token, Sign::Minus, ctx);
                    }
                }
                MinusOutcome::Parked => {}
            },
        }
    }
}

/// Left activation under the MRSW protocol: list mutation under the write
/// lock, opposite-memory scan under the read lock (the line flag guarantees
/// the right memory is stable meanwhile).
#[allow(clippy::too_many_arguments)]
fn left_activation_mrsw(
    shared: &Shared,
    j: &JoinNode,
    key: u64,
    sign: Sign,
    token: &Token,
    line: &LineLock,
    ctx: &mut Ctx,
    scratch: &mut Scratch,
) {
    // The line flag guarantees no right activation runs in this line while
    // we are entered, so the right-count gate read cannot race a pairable
    // insert (see the `left_counts` field doc).
    let unlink = shared.net.options.unlinking;
    let opp_empty = shared.right_empty(j);
    if !j.negated {
        match sign {
            Sign::Plus => {
                let outcome = line.write().left_plus(j, key, token, 0);
                match outcome {
                    PlusOutcome::Annihilated => {
                        shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    PlusOutcome::Inserted => shared.count_left(j, 1),
                }
            }
            Sign::Minus => {
                let outcome = line.write().left_minus(j, key, token);
                match outcome {
                    MinusOutcome::Removed { examined, .. } => {
                        shared
                            .stats
                            .same_tokens_left
                            .fetch_add(examined, Ordering::Relaxed);
                        shared
                            .stats
                            .same_searches_left
                            .fetch_add(1, Ordering::Relaxed);
                        shared.count_left(j, -1);
                    }
                    MinusOutcome::Parked => return,
                }
            }
        }
        if unlink && opp_empty {
            shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
        } else {
            if opp_empty {
                shared
                    .stats
                    .null_activations
                    .fetch_add(1, Ordering::Relaxed);
            }
            let examined = line.read().scan_right(j, key, token, &mut scratch.wmes);
            record_opp_left(shared, j, examined);
            for w in scratch.wmes.drain(..) {
                emit(shared, &j.succs, &token.extended(w), sign, ctx);
            }
        }
    } else {
        match sign {
            Sign::Plus => {
                let n = if unlink && opp_empty {
                    shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
                    0
                } else {
                    if opp_empty {
                        shared
                            .stats
                            .null_activations
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let (n, examined) = line.read().count_right(j, key, token);
                    record_opp_left(shared, j, examined);
                    n
                };
                let outcome = line.write().left_plus(j, key, token, n);
                match outcome {
                    PlusOutcome::Annihilated => {
                        shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    PlusOutcome::Inserted => shared.count_left(j, 1),
                }
                if n == 0 {
                    emit(shared, &j.succs, token, Sign::Plus, ctx);
                }
            }
            Sign::Minus => {
                let outcome = line.write().left_minus(j, key, token);
                match outcome {
                    MinusOutcome::Removed {
                        neg_count,
                        examined,
                    } => {
                        shared
                            .stats
                            .same_tokens_left
                            .fetch_add(examined, Ordering::Relaxed);
                        shared
                            .stats
                            .same_searches_left
                            .fetch_add(1, Ordering::Relaxed);
                        shared.count_left(j, -1);
                        if neg_count == 0 {
                            emit(shared, &j.succs, token, Sign::Minus, ctx);
                        }
                    }
                    MinusOutcome::Parked => {}
                }
            }
        }
    }
}

/// Right activation under the simple lock.
#[allow(clippy::too_many_arguments)]
fn right_activation(
    shared: &Shared,
    j: &JoinNode,
    key: u64,
    sign: Sign,
    wme: &WmeRef,
    line: &mut ParLine,
    ctx: &mut Ctx,
    scratch: &mut Scratch,
) {
    // Unlinking gate, mirrored: an empty left memory means no token can
    // pair with (or be count-adjusted by) this WME.
    let unlink = shared.net.options.unlinking;
    let opp_empty = shared.left_empty(j);
    if !j.negated {
        match sign {
            Sign::Plus => match line.right_plus(j, key, wme) {
                PlusOutcome::Annihilated => {
                    shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                PlusOutcome::Inserted => shared.count_right(j, 1),
            },
            Sign::Minus => match line.right_minus(j, key, wme) {
                MinusOutcome::Removed { examined, .. } => {
                    shared
                        .stats
                        .same_tokens_right
                        .fetch_add(examined, Ordering::Relaxed);
                    shared
                        .stats
                        .same_searches_right
                        .fetch_add(1, Ordering::Relaxed);
                    shared.count_right(j, -1);
                }
                MinusOutcome::Parked => return,
            },
        }
        if unlink && opp_empty {
            shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
        } else {
            if opp_empty {
                shared
                    .stats
                    .null_activations
                    .fetch_add(1, Ordering::Relaxed);
            }
            let examined = line.scan_left(j, key, wme, &mut scratch.tokens);
            record_opp_right(shared, j, examined);
            for t in scratch.tokens.drain(..) {
                emit(shared, &j.succs, &t.extended(wme.clone()), sign, ctx);
            }
        }
    } else {
        match sign {
            Sign::Plus => {
                match line.right_plus(j, key, wme) {
                    PlusOutcome::Annihilated => {
                        shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    PlusOutcome::Inserted => shared.count_right(j, 1),
                }
                if unlink && opp_empty {
                    shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
                } else {
                    if opp_empty {
                        shared
                            .stats
                            .null_activations
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let examined = line.adjust_left_counts(j, key, wme, 1, &mut scratch.tokens);
                    record_opp_right(shared, j, examined);
                    for t in scratch.tokens.drain(..) {
                        emit(shared, &j.succs, &t, Sign::Minus, ctx);
                    }
                }
            }
            Sign::Minus => match line.right_minus(j, key, wme) {
                MinusOutcome::Removed { examined, .. } => {
                    shared
                        .stats
                        .same_tokens_right
                        .fetch_add(examined, Ordering::Relaxed);
                    shared
                        .stats
                        .same_searches_right
                        .fetch_add(1, Ordering::Relaxed);
                    shared.count_right(j, -1);
                    if unlink && opp_empty {
                        shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
                    } else {
                        if opp_empty {
                            shared
                                .stats
                                .null_activations
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        let examined =
                            line.adjust_left_counts(j, key, wme, -1, &mut scratch.tokens);
                        record_opp_right(shared, j, examined);
                        for t in scratch.tokens.drain(..) {
                            emit(shared, &j.succs, &t, Sign::Plus, ctx);
                        }
                    }
                }
                MinusOutcome::Parked => {}
            },
        }
    }
}

/// Right activation under MRSW.
#[allow(clippy::too_many_arguments)]
fn right_activation_mrsw(
    shared: &Shared,
    j: &JoinNode,
    key: u64,
    sign: Sign,
    wme: &WmeRef,
    line: &LineLock,
    ctx: &mut Ctx,
    scratch: &mut Scratch,
) {
    let unlink = shared.net.options.unlinking;
    let opp_empty = shared.left_empty(j);
    if !j.negated {
        match sign {
            Sign::Plus => {
                let outcome = line.write().right_plus(j, key, wme);
                match outcome {
                    PlusOutcome::Annihilated => {
                        shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    PlusOutcome::Inserted => shared.count_right(j, 1),
                }
            }
            Sign::Minus => {
                let outcome = line.write().right_minus(j, key, wme);
                match outcome {
                    MinusOutcome::Removed { examined, .. } => {
                        shared
                            .stats
                            .same_tokens_right
                            .fetch_add(examined, Ordering::Relaxed);
                        shared
                            .stats
                            .same_searches_right
                            .fetch_add(1, Ordering::Relaxed);
                        shared.count_right(j, -1);
                    }
                    MinusOutcome::Parked => return,
                }
            }
        }
        if unlink && opp_empty {
            shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
        } else {
            if opp_empty {
                shared
                    .stats
                    .null_activations
                    .fetch_add(1, Ordering::Relaxed);
            }
            let examined = line.read().scan_left(j, key, wme, &mut scratch.tokens);
            record_opp_right(shared, j, examined);
            for t in scratch.tokens.drain(..) {
                emit(shared, &j.succs, &t.extended(wme.clone()), sign, ctx);
            }
        }
    } else {
        match sign {
            Sign::Plus => {
                let mut g = line.write();
                match g.right_plus(j, key, wme) {
                    PlusOutcome::Annihilated => {
                        drop(g);
                        shared.stats.conjugate_pairs.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    PlusOutcome::Inserted => shared.count_right(j, 1),
                }
                if unlink && opp_empty {
                    drop(g);
                    shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
                } else {
                    if opp_empty {
                        shared
                            .stats
                            .null_activations
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let examined = g.adjust_left_counts(j, key, wme, 1, &mut scratch.tokens);
                    drop(g);
                    record_opp_right(shared, j, examined);
                    for t in scratch.tokens.drain(..) {
                        emit(shared, &j.succs, &t, Sign::Minus, ctx);
                    }
                }
            }
            Sign::Minus => {
                let mut g = line.write();
                match g.right_minus(j, key, wme) {
                    MinusOutcome::Removed { examined, .. } => {
                        shared
                            .stats
                            .same_tokens_right
                            .fetch_add(examined, Ordering::Relaxed);
                        shared
                            .stats
                            .same_searches_right
                            .fetch_add(1, Ordering::Relaxed);
                        shared.count_right(j, -1);
                        if unlink && opp_empty {
                            drop(g);
                            shared.stats.null_skipped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            if opp_empty {
                                shared
                                    .stats
                                    .null_activations
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            let examined =
                                g.adjust_left_counts(j, key, wme, -1, &mut scratch.tokens);
                            drop(g);
                            record_opp_right(shared, j, examined);
                            for t in scratch.tokens.drain(..) {
                                emit(shared, &j.succs, &t, Sign::Plus, ctx);
                            }
                        }
                    }
                    MinusOutcome::Parked => {}
                }
            }
        }
    }
}

fn record_opp_left(shared: &Shared, j: &JoinNode, examined: u64) {
    shared
        .stats
        .opp_tokens_left
        .fetch_add(examined, Ordering::Relaxed);
    if examined > 0 {
        shared
            .stats
            .opp_nonempty_left
            .fetch_add(1, Ordering::Relaxed);
    }
    if let Some(o) = shared.obs.get() {
        o.nodes.record_scan(j.id as usize, examined);
    }
}

fn record_opp_right(shared: &Shared, j: &JoinNode, examined: u64) {
    shared
        .stats
        .opp_tokens_right
        .fetch_add(examined, Ordering::Relaxed);
    if examined > 0 {
        shared
            .stats
            .opp_nonempty_right
            .fetch_add(1, Ordering::Relaxed);
    }
    if let Some(o) = shared.obs.get() {
        o.nodes.record_scan(j.id as usize, examined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{Program, Value, Wme, WmeChange};
    use std::time::Duration;

    fn configs() -> Vec<PsmConfig> {
        let base = PsmConfig {
            match_processes: 1,
            queues: 1,
            lock_scheme: LockScheme::Simple,
            buckets: 16,
            scheduler: SchedulerKind::SpinQueues,
        };
        vec![
            base,
            PsmConfig {
                match_processes: 3,
                ..base
            },
            PsmConfig {
                match_processes: 3,
                queues: 4,
                ..base
            },
            PsmConfig {
                match_processes: 3,
                queues: 4,
                lock_scheme: LockScheme::Mrsw,
                ..base
            },
            PsmConfig {
                match_processes: 3,
                scheduler: SchedulerKind::WorkStealing,
                ..base
            },
            PsmConfig {
                match_processes: 4,
                lock_scheme: LockScheme::Mrsw,
                scheduler: SchedulerKind::WorkStealing,
                ..base
            },
        ]
    }

    fn net_of(src: &str) -> (Program, Arc<Network>) {
        let prog = Program::from_source(src).unwrap();
        let net = Arc::new(Network::compile(&prog).unwrap());
        (prog, net)
    }

    /// Sorted final conflict-set keys after feeding `changes` and quiescing.
    /// Sequential matchers emit the full insert/remove history while the
    /// parallel matcher emits net deltas, so apply the deltas to a set and
    /// compare the resulting states.
    fn final_cs(m: &mut dyn Matcher, changes: Vec<WmeChange>) -> Vec<(ProdId, Vec<u64>)> {
        for c in changes {
            m.submit(&ChangeBatch::single(c));
        }
        let mut set = std::collections::BTreeSet::new();
        for c in m.quiesce().cs_changes {
            match c {
                CsChange::Insert(i) => {
                    set.insert(i.key());
                }
                CsChange::Remove(i) => {
                    set.remove(&i.key());
                }
            }
        }
        set.into_iter().collect()
    }

    #[test]
    fn parallel_matches_sequential_simple_join() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        for cfg in configs() {
            let (mut prog, net) = net_of(src);
            let ca = prog.symbols.intern("a");
            let cb = prog.symbols.intern("b");
            let mut changes = Vec::new();
            for i in 0..20i64 {
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(ca, vec![Value::Int(i % 5)], i as u64 + 1),
                });
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(cb, vec![Value::Int(i % 5)], i as u64 + 100),
                });
            }
            let mut seq = rete::seq::boxed_vs2(net.clone(), rete::HashMemConfig { buckets: 16 });
            let expect = final_cs(seq.as_mut(), changes.clone());

            let mut par = ParMatcher::new(net, cfg);
            let got = final_cs(&mut par, changes);
            assert_eq!(got, expect, "config {cfg:?}");
            assert_eq!(par.parked_tokens(), 0, "no conjugate leftovers");
        }
    }

    #[test]
    fn parallel_handles_deletes() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        for cfg in configs() {
            let (mut prog, net) = net_of(src);
            let ca = prog.symbols.intern("a");
            let cb = prog.symbols.intern("b");
            let wa = Wme::new(ca, vec![Value::Int(1)], 1);
            let wb = Wme::new(cb, vec![Value::Int(1)], 2);
            let mut par = ParMatcher::new(net, cfg);
            // Add and delete in the same match phase: net zero.
            let cs = final_cs(
                &mut par,
                vec![
                    WmeChange {
                        sign: Sign::Plus,
                        wme: wa.clone(),
                    },
                    WmeChange {
                        sign: Sign::Plus,
                        wme: wb.clone(),
                    },
                    WmeChange {
                        sign: Sign::Minus,
                        wme: wa.clone(),
                    },
                ],
            );
            assert!(
                cs.is_empty(),
                "config {cfg:?}: add+delete nets to nothing, got {cs:?}"
            );
            assert_eq!(par.parked_tokens(), 0);
        }
    }

    #[test]
    fn negated_ce_parallel() {
        let src = "(p q (a ^x <v>) - (b ^y <v>) --> (halt))";
        for cfg in configs() {
            let (mut prog, net) = net_of(src);
            let ca = prog.symbols.intern("a");
            let cb = prog.symbols.intern("b");
            let mut changes = Vec::new();
            for i in 0..10i64 {
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(ca, vec![Value::Int(i)], i as u64 + 1),
                });
            }
            // Block even values.
            for i in (0..10i64).step_by(2) {
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(cb, vec![Value::Int(i)], i as u64 + 50),
                });
            }
            let mut seq = rete::seq::boxed_vs2(net.clone(), rete::HashMemConfig { buckets: 16 });
            let expect = final_cs(seq.as_mut(), changes.clone());
            assert_eq!(expect.len(), 5, "sanity: odd values fire");

            let mut par = ParMatcher::new(net, cfg);
            let got = final_cs(&mut par, changes);
            assert_eq!(got, expect, "config {cfg:?}");
        }
    }

    #[test]
    fn batched_submit_matches_per_change() {
        // Whole-batch submission (grouped root tasks, in-batch annihilation)
        // nets to the same conflict set as one-change-at-a-time submission.
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        for cfg in configs() {
            let (mut prog, net) = net_of(src);
            let ca = prog.symbols.intern("a");
            let cb = prog.symbols.intern("b");
            let mut changes = Vec::new();
            for i in 0..12i64 {
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(ca, vec![Value::Int(i % 4)], i as u64 + 1),
                });
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(cb, vec![Value::Int(i % 4)], i as u64 + 100),
                });
            }
            // A conjugate pair: annihilates inside the batch, never queued.
            let ghost = Wme::new(ca, vec![Value::Int(2)], 500);
            changes.push(WmeChange {
                sign: Sign::Plus,
                wme: ghost.clone(),
            });
            changes.push(WmeChange {
                sign: Sign::Minus,
                wme: ghost,
            });

            let mut seq = rete::seq::boxed_vs2(net.clone(), rete::HashMemConfig { buckets: 16 });
            let expect = final_cs(seq.as_mut(), changes.clone());

            let mut par = ParMatcher::new(net, cfg);
            let batch: ops5::ChangeBatch = changes.into_iter().collect();
            assert_eq!(batch.annihilated(), 1);
            assert_eq!(batch.group_count(), 2, "one group per class");
            par.submit(&batch);
            let mut set = std::collections::BTreeSet::new();
            for c in par.quiesce().cs_changes {
                match c {
                    CsChange::Insert(i) => {
                        set.insert(i.key());
                    }
                    CsChange::Remove(i) => {
                        set.remove(&i.key());
                    }
                }
            }
            let got: Vec<_> = set.into_iter().collect();
            assert_eq!(got, expect, "config {cfg:?}");
            assert_eq!(par.stats().conjugate_pairs, 1, "annihilated in the batch");
            assert_eq!(par.parked_tokens(), 0);
        }
    }

    #[test]
    fn multi_cycle_state_persists() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let mut par = ParMatcher::new(
            net,
            PsmConfig {
                match_processes: 2,
                queues: 2,
                lock_scheme: LockScheme::Simple,
                buckets: 16,
                scheduler: SchedulerKind::SpinQueues,
            },
        );
        // Cycle 1: only the a-wme.
        par.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: Wme::new(ca, vec![Value::Int(7)], 1),
        }));
        assert!(par.quiesce().cs_changes.is_empty());
        // Cycle 2: the b-wme joins against cycle-1 state.
        par.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: Wme::new(cb, vec![Value::Int(7)], 2),
        }));
        let cs = par.quiesce().cs_changes;
        assert_eq!(cs.len(), 1);
        assert!(matches!(cs[0], CsChange::Insert(_)));
    }

    #[test]
    fn cross_product_stress_all_configs() {
        // The Tourney pathology: all tokens in one line.
        let src = "(p q (a ^x <v>) (b ^y <w>) --> (halt))";
        for cfg in configs() {
            let (mut prog, net) = net_of(src);
            let ca = prog.symbols.intern("a");
            let cb = prog.symbols.intern("b");
            let mut changes = Vec::new();
            for i in 0..15i64 {
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(ca, vec![Value::Int(i)], i as u64 + 1),
                });
                changes.push(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(cb, vec![Value::Int(i)], i as u64 + 100),
                });
            }
            let mut par = ParMatcher::new(net, cfg);
            let got = final_cs(&mut par, changes);
            assert_eq!(got.len(), 225, "15x15 cross product, config {cfg:?}");
        }
    }

    #[test]
    fn stats_and_contention_populated() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let mut par = ParMatcher::new(
            net,
            PsmConfig {
                match_processes: 2,
                queues: 1,
                lock_scheme: LockScheme::Simple,
                buckets: 16,
                scheduler: SchedulerKind::SpinQueues,
            },
        );
        for i in 0..50i64 {
            par.submit(&ChangeBatch::single(WmeChange {
                sign: Sign::Plus,
                wme: Wme::new(ca, vec![Value::Int(i)], i as u64 + 1),
            }));
            par.submit(&ChangeBatch::single(WmeChange {
                sign: Sign::Plus,
                wme: Wme::new(cb, vec![Value::Int(i)], i as u64 + 100),
            }));
        }
        par.quiesce();
        let s = par.stats();
        assert_eq!(s.wme_changes, 100);
        assert!(s.activations >= 100);
        assert_eq!(s.cs_changes, 50);
        assert!(s.join_activations >= 100);
        let c = par.contention();
        assert!(c.queue_acqs > 0);
        assert!(c.hash_acqs_left + c.hash_acqs_right > 0);
    }

    #[test]
    fn unlinking_and_sharing_match_baseline() {
        // Compiled with sharing+unlinking, the parallel matcher must reach
        // the same net conflict set as the plain sequential baseline, while
        // never performing a scan it classified as null.
        use rete::NetworkOptions;
        let srcs = [
            "(p q (a ^x <v>) (b ^y <v>) --> (halt))",
            "(p q (a ^x <v>) - (b ^y <v>) --> (halt))",
            "(p p1 (a ^x <v>) (b ^y <v>) (c ^z <v>) --> (halt))
             (p p2 (a ^x <v>) (b ^y <v>) (d ^w <v>) --> (halt))",
        ];
        let opts = NetworkOptions {
            sharing: true,
            unlinking: true,
        };
        for src in srcs {
            for cfg in configs() {
                let mut prog = Program::from_source(src).unwrap();
                let base = Arc::new(Network::compile(&prog).unwrap());
                let tuned = Arc::new(Network::compile_with(&prog, opts).unwrap());
                let mut changes = Vec::new();
                let mut tag = 1u64;
                let mut first = None;
                for name in ["a", "b", "c", "d"] {
                    let class = prog.symbols.intern(name);
                    for i in 0..6i64 {
                        let wme = Wme::new(class, vec![Value::Int(i % 3)], tag);
                        first.get_or_insert_with(|| wme.clone());
                        changes.push(WmeChange {
                            sign: Sign::Plus,
                            wme,
                        });
                        tag += 1;
                    }
                }
                // Exercise the minus paths against populated memories too.
                changes.push(WmeChange {
                    sign: Sign::Minus,
                    wme: first.unwrap(),
                });
                let mut seq = rete::seq::boxed_vs2(base, rete::HashMemConfig { buckets: 16 });
                let expect = final_cs(seq.as_mut(), changes.clone());
                let mut par = ParMatcher::new(tuned, cfg);
                let got = final_cs(&mut par, changes);
                assert_eq!(got, expect, "config {cfg:?} on {src:?}");
                assert_eq!(par.parked_tokens(), 0);
                let s = par.stats();
                assert_eq!(s.null_activations, 0, "unlinking leaves no null scans");
            }
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn idle_workers_park_with_negligible_cpu() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let mut par = ParMatcher::new(
            net,
            PsmConfig {
                match_processes: 4,
                queues: 2,
                lock_scheme: LockScheme::Simple,
                buckets: 16,
                scheduler: SchedulerKind::SpinQueues,
            },
        );
        // One real cycle so every worker is up and has seen work.
        par.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: Wme::new(ca, vec![Value::Int(1)], 1),
        }));
        par.quiesce();
        // Let the spin→yield backoff drain into the parked state.
        std::thread::sleep(Duration::from_millis(100));
        let t0 = par.worker_cpu_ticks().expect("procfs available on linux");
        std::thread::sleep(Duration::from_millis(500));
        let burned = par.worker_cpu_ticks().expect("procfs available on linux") - t0;
        // Four busy-spinning workers would burn ~200 ticks (2 000 ms of CPU)
        // across this window; workers parked on the condvar burn none, so
        // allow only scheduler noise.
        assert!(
            burned <= 10,
            "idle workers burned {burned} CPU ticks over a 500ms idle window"
        );
        // Parked workers must still wake promptly when work arrives.
        par.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: Wme::new(cb, vec![Value::Int(1)], 2),
        }));
        let cs = par.quiesce().cs_changes;
        assert_eq!(cs.len(), 1, "wake-on-push completed the join");
    }

    /// Lost-wakeup regression: hammer the push/park window with many tiny
    /// batches against four workers on one queue. Each round the workers
    /// drain one task and head back toward the parked state while the
    /// control thread immediately pushes the next change, so the push races
    /// a register→wait sequence hundreds of times. If the sleeper
    /// registration or the final queue re-check ever moves outside the
    /// parker mutex, a push can slip between a worker's last pop and its
    /// wait with no one left awake — the untimed wait then never returns
    /// and `quiesce` spins forever, which the watchdog converts into a
    /// failure instead of a hang.
    #[test]
    fn push_park_hammer_never_loses_wakeups() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            let (mut prog, net) = net_of(src);
            let ca = prog.symbols.intern("a");
            let cb = prog.symbols.intern("b");
            let mut par = ParMatcher::new(
                net,
                PsmConfig {
                    match_processes: 4,
                    queues: 1,
                    lock_scheme: LockScheme::Simple,
                    buckets: 16,
                    scheduler: SchedulerKind::SpinQueues,
                },
            );
            par.submit(&ChangeBatch::single(WmeChange {
                sign: Sign::Plus,
                wme: Wme::new(ca, vec![Value::Int(1)], 0),
            }));
            par.quiesce();
            for round in 1..=400u64 {
                par.submit(&ChangeBatch::single(WmeChange {
                    sign: Sign::Plus,
                    wme: Wme::new(cb, vec![Value::Int(1)], round),
                }));
                let cs = par.quiesce().cs_changes;
                assert_eq!(cs.len(), 1, "round {round} produced one instantiation");
                assert_eq!(par.parked_tokens(), 0);
                // Every 8th round, give the backoff time to actually park
                // so pushes also race fully-asleep workers, not just the
                // spin/yield phases.
                if round % 8 == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            done_tx.send(()).unwrap();
        });
        match done_rx.recv_timeout(Duration::from_secs(120)) {
            Ok(()) => worker.join().unwrap(),
            Err(_) => panic!("push/park hammer hung: a wakeup was lost"),
        }
    }
}
