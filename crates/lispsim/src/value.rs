//! Boxed lisp values: cons cells, deep equality, association lists.

use std::sync::Arc;

/// A boxed, dynamically-tagged lisp value.
#[derive(Debug, Clone)]
pub enum LispVal {
    Nil,
    Sym(Arc<str>),
    Int(i64),
    Float(f64),
    Cons(Arc<LispVal>, Arc<LispVal>),
}

impl LispVal {
    pub fn sym(s: &str) -> LispVal {
        LispVal::Sym(Arc::from(s))
    }

    pub fn cons(car: LispVal, cdr: LispVal) -> LispVal {
        LispVal::Cons(Arc::new(car), Arc::new(cdr))
    }

    /// Builds a proper list.
    pub fn list(items: impl IntoIterator<Item = LispVal>) -> LispVal {
        let items: Vec<LispVal> = items.into_iter().collect();
        let mut out = LispVal::Nil;
        for v in items.into_iter().rev() {
            out = LispVal::cons(v, out);
        }
        out
    }

    pub fn is_nil(&self) -> bool {
        matches!(self, LispVal::Nil)
    }

    /// Numeric view for predicate evaluation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            LispVal::Int(i) => Some(*i as f64),
            LispVal::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, LispVal::Int(_) | LispVal::Float(_))
    }
}

/// Deep `equal`: the tag-dispatched recursive comparison every lisp test
/// pays for. Symbols compare by name (string walk), numbers by exact
/// variant, conses recursively.
pub fn lisp_equal(a: &LispVal, b: &LispVal) -> bool {
    match (a, b) {
        (LispVal::Nil, LispVal::Nil) => true,
        (LispVal::Sym(x), LispVal::Sym(y)) => x.as_ref() == y.as_ref(),
        (LispVal::Int(x), LispVal::Int(y)) => x == y,
        (LispVal::Float(x), LispVal::Float(y)) => x.to_bits() == y.to_bits(),
        (LispVal::Cons(a1, d1), LispVal::Cons(a2, d2)) => lisp_equal(a1, a2) && lisp_equal(d1, d2),
        _ => false,
    }
}

/// `assoc`: linear search of an association list `((key . val) ...)`,
/// comparing keys with deep equality. Returns the value.
pub fn assoc<'a>(key: &LispVal, mut list: &'a LispVal) -> Option<&'a LispVal> {
    while let LispVal::Cons(pair, rest) = list {
        if let LispVal::Cons(k, v) = pair.as_ref() {
            if lisp_equal(k, key) {
                return Some(v);
            }
        }
        list = rest;
    }
    None
}

/// Prepends a binding to an association list (re-consing, as the lisp
/// matcher does on every variable extension).
pub fn acons(key: LispVal, val: LispVal, list: LispVal) -> LispVal {
    LispVal::cons(LispVal::cons(key, val), list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_equality() {
        let a = LispVal::list([LispVal::sym("a"), LispVal::Int(1)]);
        let b = LispVal::list([LispVal::sym("a"), LispVal::Int(1)]);
        let c = LispVal::list([LispVal::sym("a"), LispVal::Int(2)]);
        assert!(lisp_equal(&a, &b));
        assert!(!lisp_equal(&a, &c));
        assert!(!lisp_equal(&LispVal::Int(1), &LispVal::Float(1.0)));
    }

    #[test]
    fn assoc_finds_and_misses() {
        let l = acons(
            LispVal::sym("color"),
            LispVal::sym("red"),
            acons(LispVal::sym("size"), LispVal::Int(3), LispVal::Nil),
        );
        assert!(lisp_equal(
            assoc(&LispVal::sym("size"), &l).unwrap(),
            &LispVal::Int(3)
        ));
        assert!(assoc(&LispVal::sym("weight"), &l).is_none());
    }

    #[test]
    fn shadowing_prepend_wins() {
        let l = acons(LispVal::sym("x"), LispVal::Int(1), LispVal::Nil);
        let l2 = acons(LispVal::sym("x"), LispVal::Int(2), l);
        assert!(lisp_equal(
            assoc(&LispVal::sym("x"), &l2).unwrap(),
            &LispVal::Int(2)
        ));
    }
}
