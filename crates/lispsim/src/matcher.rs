//! The interpreted matcher.
//!
//! Topologically this is the same Rete as `rete::seq` — per-production join
//! chains with alpha memories feeding right inputs — but nothing is
//! compiled: condition elements stay as interpreted test lists over
//! attribute *names*, WMEs are association lists, and variable bindings are
//! association lists extended by re-consing.

use crate::value::{acons, assoc, lisp_equal, LispVal};
use ops5::ast::{AttrTest, TestAtom};
use ops5::{
    ChangeBatch, CsChange, Instantiation, MatchStats, Matcher, Pred, ProdId, Program,
    QuiesceReport, Sign, StatsDeltaTracker, Value, WmeRef,
};
use rete::Token;

/// One interpreted test of a condition element.
#[derive(Debug, Clone)]
enum LItem {
    /// `^attr PRED atom`
    Test {
        attr: LispVal,
        pred: Pred,
        atom: LAtom,
    },
    /// `^attr << v1 v2 ... >>`
    Disj { attr: LispVal, alts: Vec<LispVal> },
}

#[derive(Debug, Clone)]
enum LAtom {
    Const(LispVal),
    Var(LispVal),
}

/// An interpreted condition element.
#[derive(Debug, Clone)]
struct LCond {
    class: LispVal,
    negated: bool,
    items: Vec<LItem>,
}

/// A WME boxed into lisp representation (plus the original for the conflict
/// set).
#[derive(Clone)]
struct LWme {
    orig: WmeRef,
    /// `((attr . value) ...)` association list.
    alist: LispVal,
    class: LispVal,
}

/// A partial-match token: matched WMEs (parent-linked, shared with the
/// compiled matchers) plus the binding association list.
#[derive(Clone)]
struct LToken {
    wmes: Token,
    bindings: LispVal,
    neg_count: u32,
}

/// One production's interpreted match state.
struct LProd {
    conds: Vec<LCond>,
    /// Alpha memory per condition element (unshared).
    alpha: Vec<Vec<LWme>>,
    /// Left token memory per *join* (index = CE index, unused for CE 0).
    left: Vec<Vec<LToken>>,
}

enum LTask {
    /// Token arriving at the join of CE `ce` of production `prod`.
    Left {
        prod: usize,
        ce: usize,
        sign: Sign,
        token: LToken,
    },
    /// WME arriving at the right input of the join of CE `ce`.
    Right {
        prod: usize,
        ce: usize,
        sign: Sign,
        wme: LWme,
    },
    Terminal {
        prod: usize,
        sign: Sign,
        token: LToken,
    },
}

/// The interpretive matcher.
///
/// Beta-prefix sharing does not apply here: like the lisp baseline it
/// mirrors, every production owns its interpreted join chain. Left/right
/// unlinking does: an activation whose opposite memory is empty skips the
/// (null) scan when `options.unlinking` is set, and the null-activation
/// counters are maintained either way.
pub struct LispMatcher {
    prods: Vec<LProd>,
    agenda: Vec<LTask>,
    out: Vec<CsChange>,
    options: rete::NetworkOptions,
    stats: MatchStats,
}

fn value_to_lisp(v: Value, prog_syms: &ops5::SymbolTable) -> LispVal {
    match v {
        Value::Sym(s) => LispVal::sym(prog_syms.name(s)),
        Value::Int(i) => LispVal::Int(i),
        Value::Float(f) => LispVal::Float(f),
    }
}

impl LispMatcher {
    /// Builds the interpreted network from a parsed program. Attribute names
    /// and symbol names are captured as strings — exactly what the lisp
    /// implementation worked with.
    pub fn new(prog: &Program) -> LispMatcher {
        LispMatcher::new_with(prog, rete::NetworkOptions::default())
    }

    /// As [`LispMatcher::new`], with explicit network options (only the
    /// `unlinking` flag applies to the interpreted matcher).
    pub fn new_with(prog: &Program, options: rete::NetworkOptions) -> LispMatcher {
        let mut prods = Vec::with_capacity(prog.productions.len());
        for p in &prog.productions {
            let mut conds = Vec::new();
            for ce in &p.lhs {
                let info = prog.classes.info(ce.class);
                let mut items = Vec::new();
                for (field, test) in &ce.tests {
                    let attr_name = info
                        .and_then(|i| i.attrs.get(*field as usize))
                        .map(|a| prog.symbols.name(*a))
                        .unwrap_or("?");
                    let attr = LispVal::sym(attr_name);
                    match test {
                        AttrTest::Disj(vs) => items.push(LItem::Disj {
                            attr,
                            alts: vs
                                .iter()
                                .map(|v| value_to_lisp(*v, &prog.symbols))
                                .collect(),
                        }),
                        AttrTest::Conj(ts) => {
                            for vt in ts {
                                let atom = match vt.atom {
                                    TestAtom::Const(v) => {
                                        LAtom::Const(value_to_lisp(v, &prog.symbols))
                                    }
                                    TestAtom::Var(v) => {
                                        LAtom::Var(LispVal::sym(prog.symbols.name(v)))
                                    }
                                };
                                items.push(LItem::Test {
                                    attr: attr.clone(),
                                    pred: vt.pred,
                                    atom,
                                });
                            }
                        }
                    }
                }
                conds.push(LCond {
                    class: LispVal::sym(prog.symbols.name(ce.class)),
                    negated: ce.negated,
                    items,
                });
            }
            let n = conds.len();
            prods.push(LProd {
                conds,
                alpha: (0..n).map(|_| Vec::new()).collect(),
                left: (0..n).map(|_| Vec::new()).collect(),
            });
        }
        LispMatcher {
            prods,
            agenda: Vec::new(),
            out: Vec::new(),
            options,
            stats: MatchStats::default(),
        }
    }
}

/// Evaluates one interpreted predicate.
fn pred_eval(pred: Pred, v: &LispVal, r: &LispVal) -> bool {
    match pred {
        Pred::Eq => lisp_equal(v, r),
        Pred::Ne => !lisp_equal(v, r),
        Pred::Lt | Pred::Le | Pred::Gt | Pred::Ge => match (v.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => match pred {
                Pred::Lt => a < b,
                Pred::Le => a <= b,
                Pred::Gt => a > b,
                Pred::Ge => a >= b,
                _ => unreachable!(),
            },
            _ => false,
        },
        Pred::SameType => v.is_numeric() == r.is_numeric(),
    }
}

/// Interpreted condition-element match: walks the test list, `assoc`-ing
/// every attribute and threading the binding alist. Returns the extended
/// bindings on success.
///
/// `lenient_unbound` is set for the alpha-membership check (empty
/// bindings): a non-equality predicate against a variable bound in another
/// condition element cannot be evaluated yet and must pass through to the
/// join — exactly what the compiled network does by routing it into a
/// join test.
fn match_ce(
    wme: &LWme,
    cond: &LCond,
    bindings: &LispVal,
    lenient_unbound: bool,
) -> Option<LispVal> {
    let mut b = bindings.clone();
    let nil = LispVal::Nil;
    for item in &cond.items {
        match item {
            LItem::Disj { attr, alts } => {
                let v = assoc(attr, &wme.alist).unwrap_or(&nil);
                if !alts.iter().any(|a| lisp_equal(v, a)) {
                    return None;
                }
            }
            LItem::Test { attr, pred, atom } => {
                let v = assoc(attr, &wme.alist).unwrap_or(&nil).clone();
                match atom {
                    LAtom::Const(c) => {
                        if !pred_eval(*pred, &v, c) {
                            return None;
                        }
                    }
                    LAtom::Var(name) => {
                        match assoc(name, &b) {
                            Some(bound) => {
                                if !pred_eval(*pred, &v, &bound.clone()) {
                                    return None;
                                }
                            }
                            None => {
                                if matches!(pred, Pred::Eq) {
                                    b = acons(name.clone(), v, b);
                                } else if !lenient_unbound {
                                    // Predicate on a variable this element
                                    // does not bind: at join time the binding
                                    // must exist (the compiled engine rejects
                                    // the program otherwise), so fail.
                                    return None;
                                }
                                // Alpha check: defer to the join.
                            }
                        }
                    }
                }
            }
        }
    }
    Some(b)
}

impl LispMatcher {
    fn run_agenda(&mut self) {
        while let Some(task) = self.agenda.pop() {
            self.stats.activations += 1;
            match task {
                LTask::Left {
                    prod,
                    ce,
                    sign,
                    token,
                } => {
                    self.stats.join_activations += 1;
                    let unlink = self.options.unlinking;
                    let negated = self.prods[prod].conds[ce].negated;
                    let opp_empty = self.prods[prod].alpha[ce].is_empty();
                    if !negated {
                        match sign {
                            Sign::Plus => self.prods[prod].left[ce].push(token.clone()),
                            Sign::Minus => {
                                let mem = &mut self.prods[prod].left[ce];
                                if let Some(i) =
                                    mem.iter().position(|t| t.wmes.same_wmes(&token.wmes))
                                {
                                    self.stats.same_tokens_left += (i + 1) as u64;
                                    self.stats.same_searches_left += 1;
                                    mem.swap_remove(i);
                                }
                            }
                        }
                        if unlink && opp_empty {
                            self.stats.null_skipped += 1;
                        } else {
                            if opp_empty {
                                self.stats.null_activations += 1;
                            }
                            // Scan the full alpha memory of this CE (linear,
                            // in place — `emit` only touches the agenda).
                            let alpha_len = self.prods[prod].alpha[ce].len();
                            self.stats.opp_tokens_left += alpha_len as u64;
                            if alpha_len > 0 {
                                self.stats.opp_nonempty_left += 1;
                            }
                            for i in 0..alpha_len {
                                let emit_tok = {
                                    let p = &self.prods[prod];
                                    let w = &p.alpha[ce][i];
                                    match_ce(w, &p.conds[ce], &token.bindings, false).map(|b2| {
                                        LToken {
                                            wmes: token.wmes.extended(w.orig.clone()),
                                            bindings: b2,
                                            neg_count: 0,
                                        }
                                    })
                                };
                                if let Some(t) = emit_tok {
                                    self.emit(prod, ce, sign, t);
                                }
                            }
                        }
                    } else {
                        match sign {
                            Sign::Plus => {
                                let n = if unlink && opp_empty {
                                    self.stats.null_skipped += 1;
                                    0
                                } else {
                                    if opp_empty {
                                        self.stats.null_activations += 1;
                                    }
                                    let p = &self.prods[prod];
                                    let alpha = &p.alpha[ce];
                                    self.stats.opp_tokens_left += alpha.len() as u64;
                                    if !alpha.is_empty() {
                                        self.stats.opp_nonempty_left += 1;
                                    }
                                    alpha
                                        .iter()
                                        .filter(|w| {
                                            match_ce(w, &p.conds[ce], &token.bindings, false)
                                                .is_some()
                                        })
                                        .count() as u32
                                };
                                let mut t = token.clone();
                                t.neg_count = n;
                                self.prods[prod].left[ce].push(t);
                                if n == 0 {
                                    self.emit(prod, ce, Sign::Plus, token);
                                }
                            }
                            Sign::Minus => {
                                let mem = &mut self.prods[prod].left[ce];
                                if let Some(i) =
                                    mem.iter().position(|t| t.wmes.same_wmes(&token.wmes))
                                {
                                    self.stats.same_tokens_left += (i + 1) as u64;
                                    self.stats.same_searches_left += 1;
                                    let old = mem.swap_remove(i);
                                    if old.neg_count == 0 {
                                        self.emit(prod, ce, Sign::Minus, token);
                                    }
                                }
                            }
                        }
                    }
                }
                LTask::Right {
                    prod,
                    ce,
                    sign,
                    wme,
                } => {
                    let negated = self.prods[prod].conds[ce].negated;
                    match sign {
                        Sign::Plus => self.prods[prod].alpha[ce].push(wme.clone()),
                        Sign::Minus => {
                            let mem = &mut self.prods[prod].alpha[ce];
                            if let Some(i) =
                                mem.iter().position(|w| w.orig.timetag == wme.orig.timetag)
                            {
                                self.stats.same_tokens_right += (i + 1) as u64;
                                self.stats.same_searches_right += 1;
                                mem.swap_remove(i);
                            }
                        }
                    }
                    if ce == 0 {
                        // CE 0's matches become 1-wme tokens for the next
                        // element (or the terminal).
                        let emit_tok =
                            match_ce(&wme, &self.prods[prod].conds[0], &LispVal::Nil, false).map(
                                |b| LToken {
                                    wmes: Token::empty().extended(wme.orig.clone()),
                                    bindings: b,
                                    neg_count: 0,
                                },
                            );
                        if let Some(t) = emit_tok {
                            self.emit(prod, 0, sign, t);
                        }
                        continue;
                    }
                    self.stats.join_activations += 1;
                    let n_tok = self.prods[prod].left[ce].len();
                    let opp_empty = n_tok == 0;
                    if self.options.unlinking && opp_empty {
                        self.stats.null_skipped += 1;
                        continue;
                    }
                    if opp_empty {
                        self.stats.null_activations += 1;
                    }
                    self.stats.opp_tokens_right += n_tok as u64;
                    if n_tok > 0 {
                        self.stats.opp_nonempty_right += 1;
                    }
                    if !negated {
                        for i in 0..n_tok {
                            let emit_tok = {
                                let p = &self.prods[prod];
                                let t = &p.left[ce][i];
                                match_ce(&wme, &p.conds[ce], &t.bindings, false).map(|b2| LToken {
                                    wmes: t.wmes.extended(wme.orig.clone()),
                                    bindings: b2,
                                    neg_count: 0,
                                })
                            };
                            if let Some(t) = emit_tok {
                                self.emit(prod, ce, sign, t);
                            }
                        }
                    } else {
                        // Adjust stored counters in place.
                        let mut crossed = Vec::new();
                        let p = &mut self.prods[prod];
                        let (conds, left) = (&p.conds, &mut p.left);
                        let cond = &conds[ce];
                        for t in left[ce].iter_mut() {
                            if match_ce(&wme, cond, &t.bindings, false).is_some() {
                                match sign {
                                    Sign::Plus => {
                                        t.neg_count += 1;
                                        if t.neg_count == 1 {
                                            crossed.push((t.clone(), Sign::Minus));
                                        }
                                    }
                                    Sign::Minus => {
                                        t.neg_count = t.neg_count.saturating_sub(1);
                                        if t.neg_count == 0 {
                                            crossed.push((t.clone(), Sign::Plus));
                                        }
                                    }
                                }
                            }
                        }
                        for (t, s) in crossed {
                            self.emit(prod, ce, s, t);
                        }
                    }
                }
                LTask::Terminal { prod, sign, token } => {
                    self.stats.cs_changes += 1;
                    let inst = Instantiation {
                        prod: ProdId(prod as u32),
                        wmes: token.wmes.wme_vec(),
                    };
                    self.out.push(match sign {
                        Sign::Plus => CsChange::Insert(inst),
                        Sign::Minus => CsChange::Remove(inst),
                    });
                }
            }
        }
    }

    /// Sends a token past CE `ce` of `prod`: to the next join or terminal.
    fn emit(&mut self, prod: usize, ce: usize, sign: Sign, token: LToken) {
        let next = ce + 1;
        if next >= self.prods[prod].conds.len() {
            self.agenda.push(LTask::Terminal { prod, sign, token });
        } else {
            self.agenda.push(LTask::Left {
                prod,
                ce: next,
                sign,
                token,
            });
        }
    }
}

/// Conversion context: per-class attribute name lists, captured at build.
pub struct LispConverter {
    /// class symbol id → attr-name lisp strings in field order.
    names: std::collections::HashMap<u32, Vec<LispVal>>,
    /// symbol id → name (for values).
    sym_names: Vec<LispVal>,
    class_names: std::collections::HashMap<u32, LispVal>,
}

impl LispConverter {
    pub fn new(prog: &Program) -> LispConverter {
        let mut names = std::collections::HashMap::new();
        let mut class_names = std::collections::HashMap::new();
        for (class, info) in prog.classes.classes() {
            names.insert(
                class.0,
                info.attrs
                    .iter()
                    .map(|a| LispVal::sym(prog.symbols.name(*a)))
                    .collect(),
            );
            class_names.insert(class.0, LispVal::sym(prog.symbols.name(*class)));
        }
        let sym_names = (0..prog.symbols.len() as u32)
            .map(|i| LispVal::sym(prog.symbols.name(ops5::SymbolId(i))))
            .collect();
        LispConverter {
            names,
            sym_names,
            class_names,
        }
    }

    fn value(&self, v: Value) -> LispVal {
        match v {
            Value::Sym(s) => self
                .sym_names
                .get(s.index())
                .cloned()
                .unwrap_or_else(|| LispVal::sym(&format!("sym{}", s.0))),
            Value::Int(i) => LispVal::Int(i),
            Value::Float(f) => LispVal::Float(f),
        }
    }

    fn wme(&self, w: &WmeRef) -> LWme {
        let mut alist = LispVal::Nil;
        if let Some(attrs) = self.names.get(&w.class.0) {
            for (i, name) in attrs.iter().enumerate() {
                let v = w
                    .fields
                    .get(i)
                    .map(|v| self.value(*v))
                    .unwrap_or(LispVal::Nil);
                alist = acons(name.clone(), v, alist);
            }
        }
        let class = self
            .class_names
            .get(&w.class.0)
            .cloned()
            .unwrap_or(LispVal::Nil);
        LWme {
            orig: w.clone(),
            alist,
            class,
        }
    }
}

/// The complete lisp-style matcher: converter + interpreted network.
pub struct LispEngineMatcher {
    conv: LispConverter,
    inner: LispMatcher,
    delta: StatsDeltaTracker,
}

impl LispEngineMatcher {
    pub fn new(prog: &Program) -> LispEngineMatcher {
        LispEngineMatcher::new_with(prog, rete::NetworkOptions::default())
    }

    /// As [`LispEngineMatcher::new`] with explicit network options; only
    /// `unlinking` applies (the interpreted chains are per-production, so
    /// there is no prefix to share).
    pub fn new_with(prog: &Program, options: rete::NetworkOptions) -> LispEngineMatcher {
        LispEngineMatcher {
            conv: LispConverter::new(prog),
            inner: LispMatcher::new_with(prog, options),
            delta: StatsDeltaTracker::default(),
        }
    }

    pub fn boxed(prog: &Program) -> Box<dyn Matcher> {
        Box::new(LispEngineMatcher::new(prog))
    }

    pub fn boxed_with(prog: &Program, options: rete::NetworkOptions) -> Box<dyn Matcher> {
        Box::new(LispEngineMatcher::new_with(prog, options))
    }
}

impl Matcher for LispEngineMatcher {
    fn submit(&mut self, batch: &ChangeBatch) {
        self.inner.stats.conjugate_pairs += batch.annihilated();
        for (_class, group) in batch.groups() {
            // One grouped interpreted "constant-test" walk per class: the
            // class-dispatch scan over every CE of every production runs
            // once per *group*; each change in the group then only pays
            // the interpreted element match against the surviving CEs.
            self.inner.stats.alpha_activations += 1;
            self.inner.stats.wme_changes += group.len() as u64;
            let converted: Vec<(Sign, LWme)> = group
                .iter()
                .map(|c| (c.sign, self.conv.wme(&c.wme)))
                .collect();
            let class_lv = converted[0].1.class.clone();
            let mut candidates = Vec::new();
            for p in 0..self.inner.prods.len() {
                for ce in 0..self.inner.prods[p].conds.len() {
                    if lisp_equal(&self.inner.prods[p].conds[ce].class, &class_lv) {
                        candidates.push((p, ce));
                    }
                }
            }
            for (sign, lw) in converted {
                for &(p, ce) in &candidates {
                    if match_ce(&lw, &self.inner.prods[p].conds[ce], &LispVal::Nil, true).is_none()
                    {
                        continue;
                    }
                    self.inner.agenda.push(LTask::Right {
                        prod: p,
                        ce,
                        sign,
                        wme: lw.clone(),
                    });
                }
                // Drain per change: the linear memories rely on the
                // one-change-at-a-time discipline.
                self.inner.run_agenda();
            }
        }
    }

    fn quiesce(&mut self) -> QuiesceReport {
        QuiesceReport {
            cs_changes: std::mem::take(&mut self.inner.out),
            stats_delta: self.delta.take(self.inner.stats),
            phase: None,
        }
    }

    fn stats(&self) -> MatchStats {
        self.inner.stats
    }

    fn reset_stats(&mut self) {
        self.inner.stats = MatchStats::default();
        self.delta.reset();
    }

    fn name(&self) -> &'static str {
        "lispsim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::WmeChange;

    fn changes(prog: &mut Program, specs: &[(&str, Vec<Value>, u64, Sign)]) -> Vec<WmeChange> {
        specs
            .iter()
            .map(|(class, vals, tag, sign)| {
                let c = prog.symbols.intern(class);
                WmeChange {
                    sign: *sign,
                    wme: ops5::Wme::new(c, vals.clone(), *tag),
                }
            })
            .collect()
    }

    fn final_set(m: &mut dyn Matcher, cs: Vec<WmeChange>) -> Vec<(ProdId, Vec<u64>)> {
        for c in cs {
            m.submit(&ChangeBatch::single(c));
        }
        let mut set = std::collections::BTreeSet::new();
        for c in m.quiesce().cs_changes {
            match c {
                CsChange::Insert(i) => {
                    set.insert(i.key());
                }
                CsChange::Remove(i) => {
                    set.remove(&i.key());
                }
            }
        }
        set.into_iter().collect()
    }

    #[test]
    fn join_fires_like_compiled() {
        let mut prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let cs = changes(
            &mut prog,
            &[
                ("a", vec![Value::Int(1)], 1, Sign::Plus),
                ("b", vec![Value::Int(1)], 2, Sign::Plus),
                ("b", vec![Value::Int(9)], 3, Sign::Plus),
            ],
        );
        let mut m = LispEngineMatcher::new(&prog);
        let out = final_set(&mut m, cs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, vec![1, 2]);
    }

    #[test]
    fn negated_ce() {
        let mut prog = Program::from_source("(p q (a ^x <v>) - (b ^y <v>) --> (halt))").unwrap();
        let cs = changes(
            &mut prog,
            &[
                ("a", vec![Value::Int(1)], 1, Sign::Plus),
                ("a", vec![Value::Int(2)], 2, Sign::Plus),
                ("b", vec![Value::Int(1)], 3, Sign::Plus),
            ],
        );
        let mut m = LispEngineMatcher::new(&prog);
        let out = final_set(&mut m, cs);
        assert_eq!(out.len(), 1, "only the unblocked value fires");
        assert_eq!(out[0].1, vec![2]);
    }

    #[test]
    fn deletes_retract() {
        let mut prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let cs = changes(
            &mut prog,
            &[
                ("a", vec![Value::Int(1)], 1, Sign::Plus),
                ("b", vec![Value::Int(1)], 2, Sign::Plus),
                ("a", vec![Value::Int(1)], 1, Sign::Minus),
            ],
        );
        let mut m = LispEngineMatcher::new(&prog);
        let out = final_set(&mut m, cs);
        assert!(out.is_empty());
    }

    #[test]
    fn intra_element_variable_consistency() {
        let mut prog = Program::from_source("(p q (a ^x <v> ^y <v>) --> (halt))").unwrap();
        let cs = changes(
            &mut prog,
            &[
                ("a", vec![Value::Int(1), Value::Int(1)], 1, Sign::Plus),
                ("a", vec![Value::Int(1), Value::Int(2)], 2, Sign::Plus),
            ],
        );
        let mut m = LispEngineMatcher::new(&prog);
        let out = final_set(&mut m, cs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, vec![1]);
    }

    #[test]
    fn stats_populated() {
        let mut prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let cs = changes(
            &mut prog,
            &[
                ("a", vec![Value::Int(1)], 1, Sign::Plus),
                ("b", vec![Value::Int(1)], 2, Sign::Plus),
            ],
        );
        let mut m = LispEngineMatcher::new(&prog);
        final_set(&mut m, cs);
        let s = m.stats();
        assert_eq!(s.wme_changes, 2);
        assert!(s.activations > 0);
        assert_eq!(s.cs_changes, 1);
    }
}
