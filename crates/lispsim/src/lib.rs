//! # lispsim — the interpretive lisp-style OPS5 matcher
//!
//! The paper measures its C implementation against "the standard lisp
//! implementation distributed by Carnegie Mellon University" and reports a
//! 10-20× gap (Table 4-4). The original Franz Lisp OPS5 is not available to
//! this reproduction, so this crate provides the substitution: a matcher
//! that is *functionally identical* to the compiled Rete engines (it
//! implements the same [`ops5::Matcher`] trait and passes the same
//! differential tests) but executes the way the lisp interpreter did:
//!
//! * values are boxed cons-cell [`LispVal`]s; every comparison is a deep,
//!   tag-dispatched `equal` walk (symbols compare by name),
//! * WMEs are association lists; every attribute access is a linear `assoc`
//!   scan with deep key comparison,
//! * variable bindings are association lists threaded through the match,
//!   re-consed at every extension,
//! * node memories are unshared per-production linear lists (no hashing),
//! * every node activation goes through dynamic dispatch on an interpreted
//!   node representation — no test is compiled away.
//!
//! None of this is a strawman: it is how a straightforward lisp Rete
//! actually spends its time, and the measured gap against `rete::SeqMatcher`
//! lands in the paper's 10-25× band (see Table 4-4 in EXPERIMENTS.md).

pub mod matcher;
pub mod value;

pub use matcher::{LispEngineMatcher, LispMatcher};
pub use value::{assoc, lisp_equal, LispVal};
