//! # obs — the unified observability layer
//!
//! The paper's argument is measurement-driven: Tables 4-5..4-9 exist because
//! PSM-E could report per-node activations, lock contention, and per-worker
//! speedup. This crate gives the reproduction one common metrics substrate
//! instead of the previous scatter of ad-hoc structs:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics.
//! * [`Histogram`] — fixed log2 buckets (`[2^i, 2^(i+1))`), recorded with
//!   plain relaxed atomics; no floats, no locks, no allocation on the hot
//!   path. Used for latencies (nanoseconds) and size distributions alike.
//! * [`Registry`] — named instruments with labels. Registration takes a
//!   mutex (cold path, construction only); every recording afterwards is a
//!   single atomic RMW on an `Arc`-shared instrument.
//! * [`NodeProfile`] — per-join-node activation counts and opposite-memory
//!   scan lengths, indexed by `JoinId`, shared across match workers.
//! * [`Snapshot::render_prometheus`] — text exposition format for the serve
//!   layer's `METRICS?` command and `--metrics-port` endpoint.
//!
//! Everything sits behind [`ObsConfig`]: with `enabled == false` no
//! instrument is ever constructed and the instrumented code paths reduce to
//! one `Option`/`OnceLock` load and a branch.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Master switch for the observability layer.
///
/// Disabled (the default) must stay cheap enough to leave compiled in: the
/// engine, matchers, and server skip instrument construction entirely and
/// hot paths only test an `Option` that is `None`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsConfig {
    pub enabled: bool,
}

impl ObsConfig {
    /// Observability on.
    pub fn enabled() -> ObsConfig {
        ObsConfig { enabled: true }
    }
}

// ------------------------------------------------------------- instruments

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets. Bucket `i` holds values `v` with
/// `bucket_index(v) == i`; the last bucket is a catch-all for anything
/// `>= 2^(N_BUCKETS-1)`. 32 buckets cover 1 ns .. ~2 s of latency (and any
/// count distribution up to ~2^31) with one u64 slot each.
pub const N_BUCKETS: usize = 32;

/// Upper bound (exclusive) of bucket `i`, or `u64::MAX` for the catch-all.
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// The bucket a value of `v` lands in: 0 and 1 in bucket 0, otherwise
/// `floor(log2(v))`, capped at the catch-all. Public so recorders can
/// pre-bucket locally and fold in bulk via [`Histogram::record_bucketed`].
#[inline]
pub fn bucket_index(v: u64) -> usize {
    let lg = (63 - (v | 1).leading_zeros()) as usize;
    lg.min(N_BUCKETS - 1)
}

/// A fixed-bucket log2 histogram on relaxed atomics.
///
/// `count` and `sum` are maintained alongside the buckets; at rest (no
/// concurrent recorders — every layer snapshots only at quiescence) a
/// snapshot satisfies `count == Σ buckets`, which
/// [`HistogramSnapshot::validate`] checks together with cumulative-bucket
/// monotonicity.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold `n` pre-bucketed observations (value sum `sum`) into `bucket`.
    /// Lets hot paths keep plain per-bucket counters locally and pay three
    /// atomic adds per bucket per flush instead of three per observation.
    #[inline]
    pub fn record_bucketed(&self, bucket: usize, n: u64, sum: u64) {
        self.buckets[bucket].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; N_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Cumulative bucket counts (Prometheus `le` semantics): entry `i` is
    /// the number of observations `< bucket_bound(i)`.
    pub fn cumulative(&self) -> [u64; N_BUCKETS] {
        let mut out = [0u64; N_BUCKETS];
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b;
            out[i] = acc;
        }
        out
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The invariants the CI smoke gate enforces: cumulative buckets are
    /// monotone non-decreasing and `count == Σ buckets`.
    pub fn validate(&self) -> Result<(), String> {
        let cum = self.cumulative();
        for w in cum.windows(2) {
            if w[1] < w[0] {
                return Err(format!("cumulative buckets not monotone: {cum:?}"));
            }
        }
        let total: u64 = self.buckets.iter().sum();
        if total != self.count {
            return Err(format!(
                "count {} != sum of buckets {} ({:?})",
                self.count, total, self.buckets
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- registry

/// A label set: `(key, value)` pairs attached to an instrument.
pub type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    labels: Labels,
    instrument: Instrument,
}

/// Named instruments. Registration (construction-time, mutex-guarded)
/// returns `Arc` handles; recording through a handle never touches the
/// registry again. Registering the same `(name, labels)` twice returns the
/// existing instrument.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn find<T>(
        entries: &[Entry],
        name: &str,
        labels: &Labels,
        pick: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Option<Arc<T>> {
        entries
            .iter()
            .find(|e| e.name == name && e.labels == *labels)
            .and_then(|e| pick(&e.instrument))
    }

    pub fn counter(&self, name: &str, labels: Labels) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("obs registry");
        if let Some(c) = Self::find(&entries, name, &labels, |i| match i {
            Instrument::Counter(c) => Some(c.clone()),
            _ => None,
        }) {
            return c;
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.to_string(),
            labels,
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    pub fn gauge(&self, name: &str, labels: Labels) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("obs registry");
        if let Some(g) = Self::find(&entries, name, &labels, |i| match i {
            Instrument::Gauge(g) => Some(g.clone()),
            _ => None,
        }) {
            return g;
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.to_string(),
            labels,
            instrument: Instrument::Gauge(g.clone()),
        });
        g
    }

    pub fn histogram(&self, name: &str, labels: Labels) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("obs registry");
        if let Some(h) = Self::find(&entries, name, &labels, |i| match i {
            Instrument::Histogram(h) => Some(h.clone()),
            _ => None,
        }) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_string(),
            labels,
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("obs registry");
        Snapshot {
            metrics: entries
                .iter()
                .map(|e| MetricValue {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    data: match &e.instrument {
                        Instrument::Counter(c) => MetricData::Counter(c.get()),
                        Instrument::Gauge(g) => MetricData::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricData::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }
}

/// One instrument's value in a snapshot. The histogram snapshot is boxed so
/// counter-heavy snapshots don't pay its 280-byte footprint per entry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricData {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct MetricValue {
    pub name: String,
    pub labels: Labels,
    pub data: MetricData,
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub metrics: Vec<MetricValue>,
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

impl Snapshot {
    /// Merge another snapshot's metrics into this one (cross-session
    /// aggregation; entries keep their labels, so same-named metrics from
    /// different sessions stay distinguishable).
    pub fn merge(&mut self, other: Snapshot) {
        self.metrics.extend(other.metrics);
    }

    /// Add a constant label (e.g. `session="3"`) to every metric.
    pub fn with_label(mut self, key: &str, value: &str) -> Snapshot {
        for m in &mut self.metrics {
            m.labels.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Every histogram in the snapshot, for invariant gates.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.metrics.iter().filter_map(|m| match &m.data {
            MetricData::Histogram(h) => Some((m.name.as_str(), h.as_ref())),
            _ => None,
        })
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self, out: &mut String) {
        for m in &self.metrics {
            match &m.data {
                MetricData::Counter(v) => {
                    out.push_str(&m.name);
                    render_labels(out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                MetricData::Gauge(v) => {
                    out.push_str(&m.name);
                    render_labels(out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                MetricData::Histogram(h) => {
                    let cum = h.cumulative();
                    for (i, c) in cum.iter().enumerate() {
                        let bound = bucket_bound(i);
                        // Collapse empty catch-all tail buckets into +Inf.
                        if bound != u64::MAX && *c == cum[N_BUCKETS - 1] && i + 1 < N_BUCKETS {
                            continue;
                        }
                        let le = if bound == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            bound.to_string()
                        };
                        out.push_str(&m.name);
                        out.push_str("_bucket");
                        render_labels(out, &m.labels, Some(("le", &le)));
                        out.push(' ');
                        out.push_str(&c.to_string());
                        out.push('\n');
                    }
                    out.push_str(&m.name);
                    out.push_str("_bucket");
                    render_labels(out, &m.labels, Some(("le", "+Inf")));
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    render_labels(out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&h.sum.to_string());
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_count");
                    render_labels(out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                }
            }
        }
    }
}

// ------------------------------------------------------------ node profile

/// Per-join-node match profile: activation counts and opposite-memory scan
/// lengths, indexed by the network's `JoinId`. Shared (`Arc`) between the
/// matcher's workers; recording is two relaxed RMWs.
///
/// Reconciliation invariants (checked by the psm stress suite):
/// `Σ activations == MatchStats::join_activations` and
/// `Σ scanned == opp_tokens_left + opp_tokens_right`, because the matchers
/// record into the profile at exactly the statements that bump those
/// counters.
#[derive(Debug)]
pub struct NodeProfile {
    activations: Box<[AtomicU64]>,
    scanned: Box<[AtomicU64]>,
}

/// One hot node in a [`NodeProfile::top_n`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotNode {
    pub join: usize,
    pub activations: u64,
    pub scanned: u64,
}

impl NodeProfile {
    pub fn new(n_joins: usize) -> NodeProfile {
        NodeProfile {
            activations: (0..n_joins).map(|_| AtomicU64::new(0)).collect(),
            scanned: (0..n_joins).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.activations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.activations.is_empty()
    }

    #[inline]
    pub fn record_activation(&self, join: usize) {
        self.activations[join].fetch_add(1, Ordering::Relaxed);
    }

    /// Bulk add, for matchers that buffer counts locally (plain `u64`
    /// increments on the hot path) and fold them in once per quiesce.
    #[inline]
    pub fn record_activations(&self, join: usize, n: u64) {
        self.activations[join].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_scan(&self, join: usize, examined: u64) {
        self.scanned[join].fetch_add(examined, Ordering::Relaxed);
    }

    pub fn activation_count(&self, join: usize) -> u64 {
        self.activations[join].load(Ordering::Relaxed)
    }

    pub fn scanned_count(&self, join: usize) -> u64 {
        self.scanned[join].load(Ordering::Relaxed)
    }

    pub fn total_activations(&self) -> u64 {
        self.activations
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    pub fn total_scanned(&self) -> u64 {
        self.scanned.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// The `n` hottest join nodes by activation count (ties broken by
    /// scan volume, then join id, so reports are deterministic). Nodes
    /// with zero activations are omitted.
    pub fn top_n(&self, n: usize) -> Vec<HotNode> {
        let mut nodes: Vec<HotNode> = (0..self.len())
            .map(|j| HotNode {
                join: j,
                activations: self.activation_count(j),
                scanned: self.scanned_count(j),
            })
            .filter(|h| h.activations > 0)
            .collect();
        nodes.sort_by(|a, b| {
            b.activations
                .cmp(&a.activations)
                .then(b.scanned.cmp(&a.scanned))
                .then(a.join.cmp(&b.join))
        });
        nodes.truncate(n);
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn histogram_invariants_hold() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 5000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        s.validate().unwrap();
        assert_eq!(s.count, 7);
        let cum = s.cumulative();
        assert_eq!(cum[N_BUCKETS - 1], 7);
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1.
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
    }

    #[test]
    fn histogram_validate_rejects_mismatched_count() {
        let h = Histogram::new();
        h.record(7);
        let mut s = h.snapshot();
        s.count = 2;
        assert!(s.validate().is_err());
    }

    #[test]
    fn histogram_concurrent_recording_settles_consistent() {
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(i.wrapping_mul(t + 1) % 4096);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        s.validate().unwrap();
        assert_eq!(s.count, 40_000);
    }

    #[test]
    fn registry_dedups_and_snapshots() {
        let r = Registry::new();
        let c1 = r.counter("ops", vec![("phase".into(), "match".into())]);
        let c2 = r.counter("ops", vec![("phase".into(), "match".into())]);
        let c3 = r.counter("ops", vec![("phase".into(), "act".into())]);
        c1.add(2);
        c2.inc();
        c3.inc();
        assert_eq!(c1.get(), 3, "same (name, labels) shares the instrument");
        let g = r.gauge("depth", vec![]);
        g.set(-4);
        let h = r.histogram("lat_ns", vec![]);
        h.record(300);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 4);
        assert!(snap
            .metrics
            .iter()
            .any(|m| m.data == MetricData::Counter(3)));
        assert!(snap.metrics.iter().any(|m| m.data == MetricData::Gauge(-4)));
        assert_eq!(snap.histograms().count(), 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("requests_total", vec![("cmd".into(), "RUN".into())])
            .add(5);
        let h = r.histogram("latency_ns", vec![]);
        h.record(3);
        h.record(900);
        let mut out = String::new();
        r.snapshot().render_prometheus(&mut out);
        assert!(out.contains("requests_total{cmd=\"RUN\"} 5"), "{out}");
        assert!(out.contains("latency_ns_bucket{le=\"4\"} 1"), "{out}");
        assert!(out.contains("latency_ns_bucket{le=\"+Inf\"} 2"), "{out}");
        assert!(out.contains("latency_ns_sum 903"), "{out}");
        assert!(out.contains("latency_ns_count 2"), "{out}");
        // Every line is `name{labels} value` or `name value`.
        for line in out.lines() {
            assert!(line.split(' ').count() == 2, "bad exposition line: {line}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c", vec![("p".into(), "a\"b\\c".into())]).inc();
        let mut out = String::new();
        r.snapshot().render_prometheus(&mut out);
        assert!(out.contains("c{p=\"a\\\"b\\\\c\"} 1"), "{out}");
    }

    #[test]
    fn snapshot_merge_and_session_labels() {
        let r1 = Registry::new();
        r1.counter("x", vec![]).inc();
        let r2 = Registry::new();
        r2.counter("x", vec![]).add(2);
        let mut agg = r1.snapshot().with_label("session", "1");
        agg.merge(r2.snapshot().with_label("session", "2"));
        let mut out = String::new();
        agg.render_prometheus(&mut out);
        assert!(out.contains("x{session=\"1\"} 1"), "{out}");
        assert!(out.contains("x{session=\"2\"} 2"), "{out}");
    }

    #[test]
    fn node_profile_top_n_is_deterministic() {
        let p = NodeProfile::new(5);
        p.record_activation(3);
        p.record_activation(3);
        p.record_scan(3, 10);
        p.record_activation(1);
        p.record_scan(1, 40);
        let top = p.top_n(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].join, 3);
        assert_eq!(top[0].activations, 2);
        assert_eq!(top[1].join, 1);
        assert_eq!(top[1].scanned, 40);
        assert_eq!(p.total_activations(), 3);
        assert_eq!(p.total_scanned(), 50);
        // Untouched nodes never appear.
        assert!(p.top_n(10).iter().all(|h| h.join == 1 || h.join == 3));
    }
}
