//! The event-driven multiprocessor simulation.

use psm::line::LockScheme;
use psm::trace::{CostModel, RunTrace, TaskKind, TaskRecord, NO_LINE};
use rete::fxhash::FxHashMap;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Instructions one spin-loop iteration costs (converts lock wait time into
/// the paper's "number of times a process spins" metric).
pub const SPIN_UNIT: u64 = 4;

/// Instructions the MRSW entry lock is held per attempt.
const ENTRY_HOLD: u64 = 6;

/// Simulator configuration — one (processes, queues, lock scheme) point of
/// Tables 4-5..4-9.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Match processes ("k" in the paper's "1+k").
    pub match_processes: usize,
    /// Task queues.
    pub queues: usize,
    pub lock_scheme: LockScheme,
    pub cost: CostModel,
}

impl SimConfig {
    pub fn new(match_processes: usize, queues: usize, lock_scheme: LockScheme) -> SimConfig {
        SimConfig {
            match_processes,
            queues,
            lock_scheme,
            cost: CostModel::default(),
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimResult {
    /// Σ over cycles of (match-phase end − cycle start), in instructions —
    /// the "time to do match" the paper's speed-ups are computed on.
    pub match_time: u64,
    /// Total virtual time including RHS evaluation and conflict resolution.
    pub total_time: u64,
    pub tasks: u64,
    pub queue_spins: u64,
    pub queue_acqs: u64,
    pub hash_spins_left: u64,
    pub hash_acqs_left: u64,
    pub hash_spins_right: u64,
    pub hash_acqs_right: u64,
    /// MRSW: tokens put back on a queue because the line was in use by the
    /// opposite side.
    pub requeues: u64,
    /// Σ processor busy time (work conservation checks).
    pub busy: u64,
    /// Diagnostic: queue wait attributed to pops vs pushes.
    pub pop_wait: u64,
    pub push_wait: u64,
    /// Diagnostic: pops that had to fall back to a locked queue.
    pub pop_fallback: u64,
    pub pop_free: u64,
}

impl SimResult {
    /// Average spins per task-queue lock acquisition (Table 4-7).
    pub fn avg_queue_spins(&self) -> f64 {
        avg(self.queue_spins, self.queue_acqs)
    }
    /// Average spins per left-side line acquisition (Table 4-9).
    pub fn avg_hash_left(&self) -> f64 {
        avg(self.hash_spins_left, self.hash_acqs_left)
    }
    pub fn avg_hash_right(&self) -> f64 {
        avg(self.hash_spins_right, self.hash_acqs_right)
    }
}

fn avg(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Control process finished computing change for root task `idx`.
    RootPush(u32),
    /// Processor p looks for work.
    ProcTry(u32),
    /// A push completed: task becomes visible in the queue (second field)
    /// and an idle processor may be woken.
    Avail(u32, u32),
    /// Processor (first field) finished processing task (second field):
    /// push its children now, then look for more work.
    TaskDone(u32, u32),
}

#[derive(Default, Clone, Copy)]
struct MrswLine {
    entry_free_at: u64,
    mod_free_at: u64,
    left_busy_until: u64,
    right_busy_until: u64,
}

struct Cycle<'a> {
    tasks: &'a [TaskRecord],
    /// children[i] = indices of tasks pushed by task i.
    children: Vec<Vec<u32>>,
    roots: Vec<u32>,
}

/// Runs the simulation over a recorded trace.
pub fn simulate(trace: &RunTrace, cfg: &SimConfig) -> SimResult {
    let mut res = SimResult::default();
    let mut clock: u64 = 0; // control-process clock across cycles
    let nq = cfg.queues.max(1);
    let np = cfg.match_processes.max(1);
    let cm = &cfg.cost;
    let pop_hold = (cm.sched_overhead as u64 / 2).max(1);
    let push_hold = (cm.sched_overhead as u64 / 2).max(1);

    for cyc in &trace.cycles {
        // Index the cycle's tasks by id and build the child adjacency.
        let mut index: FxHashMap<u32, u32> = FxHashMap::default();
        for (i, t) in cyc.tasks.iter().enumerate() {
            index.insert(t.id, i as u32);
        }
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); cyc.tasks.len()];
        for (i, t) in cyc.tasks.iter().enumerate() {
            if let Some(p) = t.parent {
                if let Some(&pi) = index.get(&p) {
                    children[pi as usize].push(i as u32);
                }
            }
        }
        let roots: Vec<u32> = cyc
            .roots
            .iter()
            .filter_map(|r| index.get(r).copied())
            .collect();
        let cycle = Cycle {
            tasks: &cyc.tasks,
            children,
            roots,
        };
        let end = simulate_cycle(&cycle, cfg, nq, np, pop_hold, push_hold, clock, &mut res);
        res.match_time += end.match_end - clock;
        res.tasks += cyc.tasks.len() as u64;
        // Conflict resolution starts only when the match phase is complete
        // (TaskCount reached zero) and the control process is done.
        clock = end.match_end.max(end.control_end) + cm.cr_per_cycle as u64;
    }
    res.total_time = clock;
    res
}

struct CycleEnd {
    match_end: u64,
    control_end: u64,
}

#[allow(clippy::too_many_arguments)]
fn simulate_cycle(
    cyc: &Cycle,
    cfg: &SimConfig,
    nq: usize,
    np: usize,
    pop_hold: u64,
    push_hold: u64,
    start: u64,
    res: &mut SimResult,
) -> CycleEnd {
    let cm = &cfg.cost;
    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_ev =
        |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, t: u64, ev: Ev, seq: &mut u64| {
            heap.push(Reverse((t, *seq, ev)));
            *seq += 1;
        };

    let mut q_items: Vec<VecDeque<u32>> = vec![VecDeque::new(); nq];
    let mut q_free: Vec<u64> = vec![0; nq];
    let mut simple_free: FxHashMap<u32, u64> = FxHashMap::default();
    let mut mrsw: FxHashMap<u32, MrswLine> = FxHashMap::default();
    let mut cs_free: u64 = 0;
    let mut idle: Vec<u32> = (0..np as u32).collect();
    let mut proc_cursor: Vec<usize> = (0..np).collect();
    let mut control_cursor = 0usize;

    let mut remaining = cyc.tasks.len() as u64;
    let mut match_end = start;
    let mut control_end = start;

    // Kick off the control process: a root task covering a group of g WME
    // changes is pushed after g RHS-evaluation quanta (the control process
    // computes every change in the group before the single queue push).
    if cyc.roots.is_empty() {
        return CycleEnd {
            match_end: start,
            control_end: start,
        };
    }
    let rhs_cost =
        |idx: u32| cm.rhs_per_change as u64 * cyc.tasks[idx as usize].group.max(1) as u64;
    push_ev(
        &mut heap,
        start + rhs_cost(cyc.roots[0]),
        Ev::RootPush(cyc.roots[0]),
        &mut seq,
    );
    let mut next_root = 1usize;

    // Helper: push task `idx` to queue `q` starting the protocol at `t`;
    // returns completion time.
    // Push protocol: start at the pusher's rotating cursor, but prefer a
    // queue whose lock is currently free (a spinning process watches the
    // lock word and moves on — §3.2's test-and-test-and-set keeps the
    // observation cheap). With one queue there is no escape and the
    // contention of Table 4-5/4-7 appears in full.
    macro_rules! do_push {
        ($idx:expr, $cursor:expr, $t:expr) => {{
            let start = *$cursor;
            *$cursor = $cursor.wrapping_add(1);
            let mut q = start % nq;
            for j in 0..nq {
                let cand = (start + j) % nq;
                if q_free[cand] <= $t {
                    q = cand;
                    break;
                }
            }
            let a = ($t).max(q_free[q]);
            res.queue_spins += (a - $t) / SPIN_UNIT;
            res.push_wait += a - $t;
            res.queue_acqs += 1;
            q_free[q] = a + push_hold;
            let done = a + push_hold;
            // The token becomes visible when the push completes.
            push_ev(&mut heap, done, Ev::Avail($idx, q as u32), &mut seq);
            done
        }};
    }

    while let Some(Reverse((t, _s, ev))) = heap.pop() {
        match ev {
            Ev::RootPush(idx) => {
                let done = do_push!(idx, &mut control_cursor, t);
                control_end = done;
                if next_root < cyc.roots.len() {
                    let r = cyc.roots[next_root];
                    next_root += 1;
                    push_ev(&mut heap, done + rhs_cost(r), Ev::RootPush(r), &mut seq);
                }
            }
            Ev::Avail(idx, q) => {
                q_items[q as usize].push_back(idx);
                if let Some(p) = idle.pop() {
                    push_ev(&mut heap, t, Ev::ProcTry(p), &mut seq);
                }
            }
            Ev::ProcTry(p) => {
                let home = p as usize % nq;
                // Prefer a non-empty queue whose lock is free; fall back to
                // the first non-empty one (and wait for its lock).
                let mut found = None;
                let mut fallback = None;
                for i in 0..nq {
                    let q = (home + i) % nq;
                    if q_items[q].is_empty() {
                        continue;
                    }
                    if fallback.is_none() {
                        fallback = Some(q);
                    }
                    if q_free[q] <= t {
                        found = Some(q);
                        break;
                    }
                }
                if found.is_some() {
                    res.pop_free += 1;
                } else if fallback.is_some() {
                    res.pop_fallback += 1;
                }
                let Some(q) = found.or(fallback) else {
                    idle.push(p);
                    continue;
                };
                // Pop protocol.
                let a = t.max(q_free[q]);
                res.queue_spins += (a - t) / SPIN_UNIT;
                res.pop_wait += a - t;
                res.queue_acqs += 1;
                q_free[q] = a + pop_hold;
                let idx = q_items[q].pop_front().expect("checked non-empty");
                let s = a + pop_hold;
                let task = &cyc.tasks[idx as usize];
                // Small deterministic jitter (0..7 instructions, hashed from
                // the task id): real machines never run in perfect lockstep,
                // and without it integer-time bursts re-collide forever.
                let s = s + (task.id as u64).wrapping_mul(0x9e3779b9) % 8;

                // Process the task.
                let mut requeued = false;
                let e = match task.kind {
                    TaskKind::Root => {
                        s + cm.root_base as u64
                            + cm.root_per_change as u64 * task.group as u64
                            + cm.per_alpha_test as u64 * task.alpha_tests as u64
                    }
                    TaskKind::Terminal => {
                        let a2 = s.max(cs_free);
                        // Conflict-set lock waits count as queue-side
                        // contention is wrong; track nothing but time.
                        cs_free = a2 + cm.terminal_cost as u64;
                        a2 + cm.terminal_cost as u64
                    }
                    TaskKind::Left { .. } | TaskKind::Right { .. } => {
                        let left = matches!(task.kind, TaskKind::Left { .. });
                        let line = task.line;
                        debug_assert_ne!(line, NO_LINE);
                        let mut_d = (cm.join_base as u64) / 2
                            + cm.per_same_examined as u64 * task.same_examined as u64;
                        let scan_d = (cm.join_base as u64) / 2
                            + cm.per_examined as u64 * task.examined as u64;
                        match cfg.lock_scheme {
                            LockScheme::Simple => {
                                let f = simple_free.entry(line).or_insert(0);
                                let a2 = s.max(*f);
                                record_hash(res, left, (a2 - s) / SPIN_UNIT);
                                *f = a2 + mut_d + scan_d;
                                a2 + mut_d + scan_d
                            }
                            LockScheme::Mrsw => {
                                let st = mrsw.entry(line).or_default();
                                let e0 = s + cm.mrsw_overhead as u64;
                                let a2 = e0.max(st.entry_free_at);
                                record_hash(res, left, (a2 - e0) / SPIN_UNIT);
                                st.entry_free_at = a2 + ENTRY_HOLD;
                                let opp_busy = if left {
                                    st.right_busy_until
                                } else {
                                    st.left_busy_until
                                };
                                if a2 < opp_busy {
                                    // Opposite side active: requeue (§3.2).
                                    res.requeues += 1;
                                    requeued = true;
                                    let rt = a2 + ENTRY_HOLD;
                                    // The processor re-pushes the token.
                                    let q2 = proc_cursor[p as usize] % nq;
                                    proc_cursor[p as usize] =
                                        proc_cursor[p as usize].wrapping_add(1);
                                    let a3 = rt.max(q_free[q2]);
                                    res.queue_spins += (a3 - rt) / SPIN_UNIT;
                                    res.push_wait += a3 - rt;
                                    res.queue_acqs += 1;
                                    q_free[q2] = a3 + push_hold;
                                    push_ev(
                                        &mut heap,
                                        a3 + push_hold,
                                        Ev::Avail(idx, q2 as u32),
                                        &mut seq,
                                    );
                                    a3 + push_hold
                                } else {
                                    // Modification serialized; scan overlaps
                                    // with same-side users.
                                    let m = (a2 + ENTRY_HOLD).max(st.mod_free_at);
                                    record_hash(res, left, (m - a2 - ENTRY_HOLD) / SPIN_UNIT);
                                    st.mod_free_at = m + mut_d;
                                    let e = m + mut_d + scan_d;
                                    if left {
                                        st.left_busy_until = st.left_busy_until.max(e);
                                    } else {
                                        st.right_busy_until = st.right_busy_until.max(e);
                                    }
                                    e
                                }
                            }
                        }
                    }
                };

                res.busy += e - t;
                if requeued {
                    if remaining == 0 && next_root >= cyc.roots.len() {
                        break;
                    }
                    push_ev(&mut heap, e, Ev::ProcTry(p), &mut seq);
                } else {
                    // Completion is a separate event so the child pushes book
                    // the queue locks at the *actual* completion time — a
                    // task processed at pop time must not reserve resources
                    // in the future ahead of operations that really happen
                    // earlier.
                    push_ev(&mut heap, e, Ev::TaskDone(p, idx), &mut seq);
                }
            }
            Ev::TaskDone(p, idx) => {
                let mut e = t;
                for &c in &cyc.children[idx as usize] {
                    e = do_push!(c, &mut proc_cursor[p as usize], e);
                }
                remaining -= 1;
                if e > match_end {
                    match_end = e;
                }
                res.busy += e - t;
                if remaining == 0 && next_root >= cyc.roots.len() {
                    // Match phase complete; leftover events cannot create
                    // new work.
                    break;
                }
                push_ev(&mut heap, e, Ev::ProcTry(p), &mut seq);
            }
        }
    }
    debug_assert_eq!(remaining, 0, "all tasks must complete");
    CycleEnd {
        match_end: match_end.max(control_end),
        control_end,
    }
}

fn record_hash(res: &mut SimResult, left: bool, spins: u64) {
    if left {
        res.hash_spins_left += spins;
        res.hash_acqs_left += 1;
    } else {
        res.hash_spins_right += spins;
        res.hash_acqs_right += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm::trace::{CycleTrace, TaskRecord};

    fn root(id: u32, emitted: u32) -> TaskRecord {
        TaskRecord {
            id,
            parent: None,
            kind: TaskKind::Root,
            line: NO_LINE,
            examined: 0,
            same_examined: 0,
            emitted,
            alpha_tests: 4,
            group: 1,
        }
    }

    fn join(id: u32, parent: u32, line: u32, examined: u32, left: bool) -> TaskRecord {
        TaskRecord {
            id,
            parent: Some(parent),
            kind: if left {
                TaskKind::Left { negated: false }
            } else {
                TaskKind::Right { negated: false }
            },
            line,
            examined,
            same_examined: 0,
            emitted: 0,
            alpha_tests: 0,
            group: 1,
        }
    }

    /// A wide, independent fan-out: R roots each spawning `fan` join tasks.
    /// Realistic traces carry hundreds of activations per WME change, so the
    /// fan keeps the match processes busy relative to the control process's
    /// RHS-evaluation rate.
    fn fan_trace(roots: u32, fan: u32, lines_distinct: bool) -> RunTrace {
        let mut tasks = Vec::new();
        let mut root_ids = Vec::new();
        let mut id = 0;
        for r in 0..roots {
            let rid = id;
            id += 1;
            root_ids.push(rid);
            tasks.push(root(rid, fan));
            for f in 0..fan {
                let line = if lines_distinct { r * fan + f } else { 0 };
                tasks.push(join(id, rid, line, 30, (r + f) % 2 == 0));
                id += 1;
            }
        }
        RunTrace {
            cycles: vec![CycleTrace {
                roots: root_ids,
                tasks,
            }],
            n_lines: (roots * fan).max(1),
        }
    }

    fn wide_trace(roots: u32, lines_distinct: bool) -> RunTrace {
        fan_trace(roots, 1, lines_distinct)
    }

    #[test]
    fn deterministic() {
        let t = wide_trace(50, true);
        let cfg = SimConfig::new(4, 2, LockScheme::Simple);
        let a = simulate(&t, &cfg);
        let b = simulate(&t, &cfg);
        assert_eq!(a.match_time, b.match_time);
        assert_eq!(a.queue_spins, b.queue_spins);
    }

    #[test]
    fn more_processors_not_slower() {
        let t = fan_trace(40, 8, true);
        let t1 = simulate(&t, &SimConfig::new(1, 1, LockScheme::Simple)).match_time;
        let t4 = simulate(&t, &SimConfig::new(4, 4, LockScheme::Simple)).match_time;
        let t8 = simulate(&t, &SimConfig::new(8, 8, LockScheme::Simple)).match_time;
        assert!(t4 < t1, "4 procs faster than 1 ({t4} vs {t1})");
        assert!(t8 <= t4 + t4 / 10, "8 procs not slower than 4");
    }

    #[test]
    fn speedup_bounded_by_processors() {
        let t = fan_trace(25, 10, true);
        let t1 = simulate(&t, &SimConfig::new(1, 4, LockScheme::Simple)).match_time as f64;
        let t4 = simulate(&t, &SimConfig::new(4, 4, LockScheme::Simple)).match_time as f64;
        let s = t1 / t4;
        assert!(s <= 4.3, "speedup {s} exceeds processor count");
        assert!(
            s >= 1.5,
            "speedup {s} suspiciously low for independent tasks"
        );
    }

    #[test]
    fn single_queue_contention_grows_with_processors() {
        let t = fan_trace(50, 12, true);
        let c2 = simulate(&t, &SimConfig::new(2, 1, LockScheme::Simple)).avg_queue_spins();
        let c12 = simulate(&t, &SimConfig::new(12, 1, LockScheme::Simple)).avg_queue_spins();
        assert!(
            c12 > c2,
            "queue contention should grow with processors (2: {c2}, 12: {c12})"
        );
    }

    #[test]
    fn multiple_queues_reduce_contention() {
        let t = fan_trace(50, 12, true);
        let one = simulate(&t, &SimConfig::new(12, 1, LockScheme::Simple)).avg_queue_spins();
        let eight = simulate(&t, &SimConfig::new(12, 8, LockScheme::Simple)).avg_queue_spins();
        assert!(
            eight < one,
            "8 queues must reduce contention (1q: {one}, 8q: {eight})"
        );
    }

    #[test]
    fn shared_line_serializes_simple_locks() {
        // All joins on one line: hash contention appears and speedup drops.
        let shared = fan_trace(20, 8, false);
        let spread = fan_trace(20, 8, true);
        let cfg = SimConfig::new(8, 8, LockScheme::Simple);
        let rs = simulate(&shared, &cfg);
        let rp = simulate(&spread, &cfg);
        assert!(rs.match_time > rp.match_time, "shared line is slower");
        let shared_contention = rs.avg_hash_left() + rs.avg_hash_right();
        let spread_contention = rp.avg_hash_left() + rp.avg_hash_right();
        assert!(shared_contention > spread_contention);
    }

    #[test]
    fn mrsw_requeues_only_under_mrsw() {
        let shared = fan_trace(20, 8, false); // alternating sides on one line
        let simple = simulate(&shared, &SimConfig::new(8, 8, LockScheme::Simple));
        let mrsw = simulate(&shared, &SimConfig::new(8, 8, LockScheme::Mrsw));
        assert_eq!(simple.requeues, 0);
        assert!(mrsw.requeues > 0, "opposite-side arrivals must requeue");
    }

    #[test]
    fn mrsw_overhead_slows_uniprocessor() {
        // Table 4-8's uniprocessor times are *higher* than Table 4-6's: the
        // complex locks cost overhead even with no contention.
        let t = wide_trace(100, true);
        let simple = simulate(&t, &SimConfig::new(1, 1, LockScheme::Simple)).match_time;
        let mrsw = simulate(&t, &SimConfig::new(1, 1, LockScheme::Mrsw)).match_time;
        assert!(
            mrsw > simple,
            "MRSW must cost overhead ({mrsw} vs {simple})"
        );
    }

    #[test]
    fn dependent_chain_defeats_parallelism() {
        // A linear chain of tasks: speedup ~1 regardless of processors.
        let mut tasks = vec![root(0, 1)];
        for i in 1..100u32 {
            tasks.push(join(i, i - 1, i, 10, true));
        }
        let t = RunTrace {
            cycles: vec![CycleTrace {
                roots: vec![0],
                tasks,
            }],
            n_lines: 128,
        };
        let t1 = simulate(&t, &SimConfig::new(1, 1, LockScheme::Simple)).match_time as f64;
        let t8 = simulate(&t, &SimConfig::new(8, 8, LockScheme::Simple)).match_time as f64;
        assert!(t1 / t8 < 1.3, "chains cannot speed up ({})", t1 / t8);
    }

    #[test]
    fn mrsw_alternating_sides_terminates() {
        // Heavy left/right interleaving on one line: requeues must not
        // livelock the simulation and every task still completes.
        let mut tasks = vec![root(0, 64)];
        for i in 1..=64u32 {
            tasks.push(join(i, 0, 0, 10, i % 2 == 0));
        }
        let t = RunTrace {
            cycles: vec![CycleTrace {
                roots: vec![0],
                tasks,
            }],
            n_lines: 4,
        };
        let r = simulate(&t, &SimConfig::new(8, 2, LockScheme::Mrsw));
        assert_eq!(r.tasks, 65);
        assert!(r.requeues > 0, "alternating sides must requeue");
        assert!(r.requeues < 10_000, "requeues bounded (no livelock)");
    }

    #[test]
    fn match_time_monotone_in_work() {
        let small = fan_trace(10, 4, true);
        let big = fan_trace(40, 4, true);
        let cfg = SimConfig::new(4, 2, LockScheme::Simple);
        assert!(simulate(&big, &cfg).match_time > simulate(&small, &cfg).match_time);
    }

    #[test]
    fn empty_trace() {
        let t = RunTrace::default();
        let r = simulate(&t, &SimConfig::new(4, 2, LockScheme::Simple));
        assert_eq!(r.match_time, 0);
        assert_eq!(r.tasks, 0);
    }

    #[test]
    fn work_conservation() {
        let t = wide_trace(50, true);
        let r = simulate(&t, &SimConfig::new(3, 2, LockScheme::Simple));
        assert!(r.busy > 0);
        assert!(r.tasks == 100);
        // Busy time cannot exceed processors × makespan (match window only,
        // so allow the control-push window too).
        assert!(r.busy <= 4 * r.total_time);
    }
}
