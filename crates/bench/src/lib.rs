//! Shared harness for the table-regeneration binaries.
//!
//! Each `src/bin/table_4_*.rs` binary regenerates one table of the paper's
//! evaluation section against the three rebuilt benchmark programs. The
//! binaries print rows in the paper's layout so EXPERIMENTS.md can place
//! them side by side with the original numbers.
//!
//! Benchmark configurations live here so every table measures the same
//! three programs; the sizes are chosen to finish in seconds per engine in
//! release builds while producing match profiles (memory sizes,
//! cross-products, WME-change counts) in the paper's regime.

use engine::Engine;
use multimax::{simulate, SimConfig, SimResult};
use ops5::Result;
use psm::line::LockScheme;
use psm::trace::RunTrace;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use workloads::{rubik, tourney, weaver, MatcherChoice, Workload};

/// The paper's process counts ("1+k" columns of Tables 4-5..4-8).
pub const PROC_COLUMNS: [usize; 6] = [1, 3, 5, 7, 11, 13];

/// Queue counts used by Table 4-6/4-8 per column.
pub const QUEUE_COLUMNS: [usize; 6] = [1, 2, 4, 8, 8, 8];

/// Builds the benchmark instance of Weaver.
pub fn weaver_bench() -> Workload {
    weaver::workload(weaver::WeaverConfig {
        width: 12,
        height: 12,
        kinds: 36,
        nets: 8,
        blocked_pct: 8,
        seed: 42,
    })
}

/// Builds the benchmark instance of Rubik.
pub fn rubik_bench() -> Workload {
    rubik::workload(rubik::RubikConfig {
        seed: 2026,
        scramble_len: 100,
        plan: rubik::PlanMode::Inverse,
    })
}

/// Builds the benchmark instance of Tourney (pathological).
pub fn tourney_bench() -> Workload {
    tourney::workload(tourney::TourneyConfig {
        teams: 24,
        variant: tourney::Variant::Pathological,
    })
}

/// Builds the fixed Tourney (the §4.2 "domain knowledge" experiment).
pub fn tourney_fixed_bench() -> Workload {
    tourney::workload(tourney::TourneyConfig {
        teams: 24,
        variant: tourney::Variant::Fixed,
    })
}

/// A named workload constructor.
pub type ProgramEntry = (&'static str, fn() -> Workload);

/// The three benchmark programs, in the paper's row order.
pub fn programs() -> Vec<ProgramEntry> {
    vec![
        ("Weaver", weaver_bench as fn() -> Workload),
        ("Rubik", rubik_bench),
        ("Tourney", tourney_bench),
    ]
}

/// Runs a workload under a matcher, returning wall-clock time and the
/// engine (for statistics).
pub fn timed_run(w: &Workload, choice: &MatcherChoice) -> Result<(Duration, Engine)> {
    let mut eng = workloads::build_engine(w, choice)?;
    let started = Instant::now();
    eng.run(w.max_cycles)?;
    let elapsed = started.elapsed();
    if let Err(e) = (w.validate)(&eng) {
        return Err(ops5::Ops5Error::Runtime(format!(
            "{} failed validation: {e}",
            w.name
        )));
    }
    Ok((elapsed, eng))
}

/// Hash-table lines used when recording simulation traces.
///
/// The table-size regime matters for Table 4-9: the 1988 implementation's
/// hash tables (on a 32 MB Multimax) plausibly had a few hundred to a few
/// thousand lines, so unrelated tokens occasionally share a line and even
/// Weaver/Rubik see some line contention. The modern vs2 engine runs its
/// tables much larger; the simulator models the period hardware.
pub const TRACE_LINES: usize = 1024;

/// Records the deterministic task trace of a workload (for the Multimax
/// simulation tables).
pub fn record_trace(w: &Workload) -> Result<RunTrace> {
    record_trace_with_lines(w, TRACE_LINES)
}

/// Records a trace with an explicit hash-line count.
pub fn record_trace_with_lines(w: &Workload, lines: usize) -> Result<RunTrace> {
    let sink = Arc::new(Mutex::new(RunTrace::default()));
    let mut eng = engine::EngineBuilder::from_source(&w.source)?
        .trace(lines, sink.clone())
        .build()?;
    load_setup(&mut eng, w)?;
    eng.run(w.max_cycles)?;
    if let Err(e) = (w.validate)(&eng) {
        return Err(ops5::Ops5Error::Runtime(format!(
            "{} failed validation during trace: {e}",
            w.name
        )));
    }
    let trace = sink.lock().unwrap().clone();
    Ok(trace)
}

/// Loads a workload's initial working memory into an engine.
fn load_setup(eng: &mut Engine, w: &Workload) -> Result<()> {
    for wme in &w.setup {
        let sets: Vec<(String, ops5::Value)> = wme
            .sets
            .iter()
            .map(|(a, v)| {
                let val = match v {
                    workloads::SetupVal::Sym(s) => eng.sym(s),
                    workloads::SetupVal::Int(i) => ops5::Value::Int(*i),
                };
                (a.clone(), val)
            })
            .collect();
        let refs: Vec<(&str, ops5::Value)> = sets.iter().map(|(a, v)| (a.as_str(), *v)).collect();
        eng.make_wme(&wme.class, &refs)?;
    }
    Ok(())
}

/// Simulates a trace at one configuration.
pub fn sim(trace: &RunTrace, procs: usize, queues: usize, scheme: LockScheme) -> SimResult {
    simulate(trace, &SimConfig::new(procs, queues, scheme))
}

/// Speed-up of `procs` match processes relative to one (same queue count
/// and lock scheme as configured per column, uniprocessor with 1 queue).
pub fn speedup(
    trace: &RunTrace,
    uni: &SimResult,
    procs: usize,
    queues: usize,
    scheme: LockScheme,
) -> f64 {
    let r = sim(trace, procs, queues, scheme);
    uni.match_time as f64 / r.match_time as f64
}

/// Formats seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints a table header in the paper's style.
pub fn header(title: &str) {
    println!();
    println!("{title}");
    println!("{}", "-".repeat(title.len().min(78)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        // Same workload → byte-identical trace shape (the foundation of the
        // simulation tables). Tourney is the cheapest of the three.
        let w = workloads::tourney::workload(workloads::tourney::TourneyConfig {
            teams: 6,
            variant: workloads::tourney::Variant::Pathological,
        });
        let t1 = record_trace(&w).unwrap();
        let w = workloads::tourney::workload(workloads::tourney::TourneyConfig {
            teams: 6,
            variant: workloads::tourney::Variant::Pathological,
        });
        let t2 = record_trace(&w).unwrap();
        assert_eq!(t1.cycles.len(), t2.cycles.len());
        assert_eq!(t1.total_tasks(), t2.total_tasks());
        for (c1, c2) in t1.cycles.iter().zip(&t2.cycles) {
            assert_eq!(c1.roots, c2.roots);
            assert_eq!(c1.tasks.len(), c2.tasks.len());
            for (a, b) in c1.tasks.iter().zip(&c2.tasks) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.line, b.line);
                assert_eq!(a.examined, b.examined);
            }
        }
    }

    #[test]
    fn simulation_is_deterministic_over_recorded_trace() {
        let w = workloads::tourney::workload(workloads::tourney::TourneyConfig {
            teams: 6,
            variant: workloads::tourney::Variant::Fixed,
        });
        let t = record_trace(&w).unwrap();
        let a = sim(&t, 5, 2, LockScheme::Simple);
        let b = sim(&t, 5, 2, LockScheme::Simple);
        assert_eq!(a.match_time, b.match_time);
        assert_eq!(a.queue_spins, b.queue_spins);
        assert_eq!(a.hash_spins_left, b.hash_spins_left);
    }

    #[test]
    fn bench_workloads_build() {
        // Small sanity: sources parse and networks compile.
        for (name, make) in programs() {
            let w = make();
            let prog = ops5::Program::from_source(&w.source).unwrap();
            assert!(!prog.productions.is_empty(), "{name}");
        }
    }
}
