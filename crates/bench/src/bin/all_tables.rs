//! Regenerates every table of the paper's evaluation section in one run
//! (the source of EXPERIMENTS.md). Each table binary can also be run
//! individually.
//!
//! Run with: `cargo run --release -p bench --bin all_tables`

use std::process::Command;

fn main() {
    let bins = [
        "table_4_1",
        "table_4_2",
        "table_4_3",
        "table_4_4",
        "table_4_5",
        "table_4_6",
        "table_4_7",
        "table_4_8",
        "table_4_9",
        "tourney_fix",
    ];
    // When invoked via cargo, sibling binaries sit next to this executable.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
}
