//! Hash-table-size ablation — how many lines do the global token tables
//! need?
//!
//! The paper fixes one hash-table size; this sweep varies the line count
//! and reports (a) real vs2 wall time (bucket sharing costs skip-scans and
//! cache misses) and (b) simulated 1+13 line contention (fewer lines →
//! more false sharing between unrelated tokens).
//!
//! Run with: `cargo run --release -p bench --bin ablation_buckets`

use bench::{header, programs, record_trace_with_lines};
use multimax::{simulate, SimConfig};
use psm::line::LockScheme;
use std::time::Instant;
use workloads::SetupVal;

const SIZES: [usize; 5] = [256, 1024, 4096, 16384, 65536];

fn vs2_time(w: &workloads::Workload, buckets: usize) -> f64 {
    let mut eng = engine::EngineBuilder::from_source(&w.source)
        .unwrap()
        .matcher(engine::MatcherKind::Vs2(rete::HashMemConfig { buckets }))
        .build()
        .unwrap();
    for wme in &w.setup {
        let sets: Vec<(String, ops5::Value)> = wme
            .sets
            .iter()
            .map(|(a, v)| {
                let val = match v {
                    SetupVal::Sym(s) => eng.sym(s),
                    SetupVal::Int(i) => ops5::Value::Int(*i),
                };
                (a.clone(), val)
            })
            .collect();
        let refs: Vec<(&str, ops5::Value)> = sets.iter().map(|(a, v)| (a.as_str(), *v)).collect();
        eng.make_wme(&wme.class, &refs).unwrap();
    }
    let t = Instant::now();
    eng.run(w.max_cycles).unwrap();
    t.elapsed().as_secs_f64()
}

fn main() {
    header("Hash-table size ablation: vs2 wall time (s) and simulated 1+13 line contention");
    print!("{:<10} {:>6}", "PROGRAM", "");
    for s in SIZES {
        print!(" {:>12}", format!("{s} lines"));
    }
    println!();
    for (name, make) in programs() {
        print!("{:<10} {:>6}", name, "time");
        for s in SIZES {
            let t = vs2_time(&make(), s);
            print!(" {:>12.3}", t);
        }
        println!();
        print!("{:<10} {:>6}", "", "spins");
        for s in SIZES {
            let trace = record_trace_with_lines(&make(), s).expect("trace");
            let r = simulate(&trace, &SimConfig::new(13, 8, LockScheme::Simple));
            print!(" {:>12.2}", r.avg_hash_left() + r.avg_hash_right());
        }
        println!();
    }
    println!();
    println!("(expected shape: wall time is flat-ish past ~4k lines; simulated line");
    println!(" contention falls as lines grow — except Tourney, whose cross-product");
    println!(" tokens share a line at ANY table size: more memory cannot fix it)");
}
