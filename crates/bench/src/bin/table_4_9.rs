//! Table 4-9: contention for token hash-table line locks — average spins
//! before acquiring a line, simple vs MRSW locks, 6 and 12 match processes,
//! attributed to the side (left/right) of the arriving activation.
//!
//! Run with: `cargo run --release -p bench --bin table_4_9`

use bench::{header, programs, record_trace, sim};
use psm::line::LockScheme;

fn main() {
    header("Table 4-9: Contention for token hash-table locks (avg spins before acquisition)");
    println!(
        "{:<10} | {:>24} | {:>24} | {:>9}",
        "", "simple locks", "mrsw locks", ""
    );
    println!(
        "{:<10} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5} | {:>9}",
        "PROGRAM", "6L", "6R", "12L", "12R", "6L", "6R", "12L", "12R", "requeues"
    );
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let s6 = sim(&trace, 6, 8, LockScheme::Simple);
        let s12 = sim(&trace, 12, 8, LockScheme::Simple);
        let m6 = sim(&trace, 6, 8, LockScheme::Mrsw);
        let m12 = sim(&trace, 12, 8, LockScheme::Mrsw);
        println!(
            "{:<10} | {:>5.1} {:>5.1} {:>5.1} {:>5.1} | {:>5.1} {:>5.1} {:>5.1} {:>5.1} | {:>9}",
            name,
            s6.avg_hash_left(),
            s6.avg_hash_right(),
            s12.avg_hash_left(),
            s12.avg_hash_right(),
            m6.avg_hash_left(),
            m6.avg_hash_right(),
            m12.avg_hash_left(),
            m12.avg_hash_right(),
            m12.requeues,
        );
    }
    println!();
    println!("(paper, simple: Weaver 20.4/1.0 → 51.2/1.4, Rubik 11.0/1.1 → 23.0/1.5,");
    println!("               Tourney 137.1/4.9 → 377.7/15.7;");
    println!(" paper, mrsw:  Weaver 4.7/2.0 → 15.7/2.1, Rubik 3.7/2.0 → 12.9/2.1,");
    println!("               Tourney 49.9/2.9 → 134.9/33.3;");
    println!(" expected shape: Tourney's line contention dwarfs the others;");
    println!(" MRSW reduces contention for all programs)")
}
