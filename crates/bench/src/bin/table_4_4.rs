//! Table 4-4: speed-up of the optimized C-based implementation (vs2) over
//! the lisp-based implementation (here: the `lispsim` interpretive
//! baseline).
//!
//! Run with: `cargo run --release -p bench --bin table_4_4`

use bench::{header, programs, secs, timed_run};
use workloads::MatcherChoice;

fn main() {
    header("Table 4-4: Speed-up of compiled (vs2) over lisp-style interpreted implementation");
    println!(
        "{:<10} {:>12} {:>10} {:>10}",
        "PROGRAM", "VS-lisp (s)", "VS2 (s)", "speed-up"
    );
    for (name, make) in programs() {
        let (tl, _el) = timed_run(&make(), &MatcherChoice::Lisp).expect("lisp run");
        let (t2, _e2) = timed_run(&make(), &MatcherChoice::Vs2).expect("vs2 run");
        println!(
            "{:<10} {:>12} {:>10} {:>10.1}",
            name,
            secs(tl),
            secs(t2),
            tl.as_secs_f64() / t2.as_secs_f64(),
        );
    }
    println!();
    println!("(paper: Weaver 1104.0/85.8 = 12.9x, Rubik 1175.0/96.9 = 12.1x,");
    println!("        Tourney 2302.0/93.5 = 24.6x;");
    println!(" expected shape: interpreted baseline 10-25x slower than vs2)");
}
