//! Table 4-5: speed-up with a single task queue and simple hash-table
//! locks, for 1+{1,3,5,7,11,13} processes, on the simulated Multimax.
//!
//! Run with: `cargo run --release -p bench --bin table_4_5`

use bench::{header, programs, record_trace, sim, PROC_COLUMNS};
use psm::line::LockScheme;

fn main() {
    header("Table 4-5: Speed-up, single task queue, simple hash-table locks (simulated Multimax)");
    print!("{:<10} {:>12}", "PROGRAM", "uniproc(Mop)");
    for p in PROC_COLUMNS {
        print!(" {:>6}", format!("1+{p}"));
    }
    println!();
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let uni = sim(&trace, 1, 1, LockScheme::Simple);
        print!("{:<10} {:>12.2}", name, uni.match_time as f64 / 1.0e6);
        for p in PROC_COLUMNS {
            let r = sim(&trace, p, 1, LockScheme::Simple);
            print!(" {:>6.2}", uni.match_time as f64 / r.match_time as f64);
        }
        println!();
    }
    println!();
    println!("(paper: Weaver 1.02/2.55/3.65/3.97/3.91/3.90,");
    println!("        Rubik  1.00/2.80/4.47/5.48/6.18/6.30,");
    println!("        Tourney 1.10/1.90/2.70/2.59/2.43/2.41;");
    println!(" expected shape: single queue saturates by ~1+7; Tourney worst)");
}
