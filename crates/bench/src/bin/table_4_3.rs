//! Table 4-3: number of tokens examined in the *same* memory to locate the
//! target of a delete, linear vs hash memories.
//!
//! Run with: `cargo run --release -p bench --bin table_4_3`

use bench::{header, programs, timed_run};
use workloads::MatcherChoice;

fn main() {
    header("Table 4-3: Tokens examined in same memory for deletes");
    println!(
        "{:<10} | {:>9} {:>9} | {:>9} {:>9}",
        "", "left", "", "right", ""
    );
    println!(
        "{:<10} | {:>9} {:>9} | {:>9} {:>9}",
        "PROGRAM", "lin mem", "hash mem", "lin mem", "hash mem"
    );
    for (name, make) in programs() {
        let (_t, e1) = timed_run(&make(), &MatcherChoice::Vs1).expect("vs1");
        let (_t, e2) = timed_run(&make(), &MatcherChoice::Vs2).expect("vs2");
        let s1 = e1.match_stats();
        let s2 = e2.match_stats();
        println!(
            "{:<10} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
            name,
            s1.avg_same_left(),
            s2.avg_same_left(),
            s1.avg_same_right(),
            s2.avg_same_right(),
        );
    }
    println!();
    println!("(paper: Weaver 6.2→3.6 / 7.0→5.1, Rubik 23.5→2.6 / 8.1→3.7,");
    println!("        Tourney 254.4→40.1 / 3.8→2.9;");
    println!(" expected shape: hash ≤ linear, largest reduction for Tourney left)");
}
