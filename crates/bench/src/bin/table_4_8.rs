//! Table 4-8: speed-up with multiple task queues and the complex
//! multiple-reader-single-writer hash-table line locks.
//!
//! The paper's lesson (§5): MRSW locks reduce hash-line contention but the
//! extra protocol overhead slows the normal case — uniprocessor times here
//! are *higher* than Table 4-6's.
//!
//! Run with: `cargo run --release -p bench --bin table_4_8`

use bench::{header, programs, record_trace, sim, PROC_COLUMNS, QUEUE_COLUMNS};
use psm::line::LockScheme;

fn main() {
    header("Table 4-8: Speed-up, multiple task queues, MRSW hash-table locks (simulated Multimax)");
    print!(
        "{:<10} {:>12} {:>10}",
        "PROGRAM", "uniproc(Mop)", "vs 4-6 uni"
    );
    for (p, q) in PROC_COLUMNS.iter().zip(QUEUE_COLUMNS.iter()) {
        print!(" {:>9}", format!("1+{p}/{q}q"));
    }
    println!();
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let uni_simple = sim(&trace, 1, 1, LockScheme::Simple);
        let uni = sim(&trace, 1, 1, LockScheme::Mrsw);
        print!(
            "{:<10} {:>12.2} {:>9.2}x",
            name,
            uni.match_time as f64 / 1.0e6,
            uni.match_time as f64 / uni_simple.match_time as f64
        );
        for (&p, &q) in PROC_COLUMNS.iter().zip(QUEUE_COLUMNS.iter()) {
            let r = sim(&trace, p, q, LockScheme::Mrsw);
            print!(" {:>9.2}", uni.match_time as f64 / r.match_time as f64);
        }
        println!();
    }
    println!();
    println!("(paper: Weaver uniproc 134.9s vs 118.2s simple — MRSW costs ~14% overhead;");
    println!("        speed-ups 1.02/3.02/4.63/6.14/8.18/9.02 Weaver,");
    println!(
        "        1.04/3.98/6.40/9.01/11.33/12.35 Rubik, 1.07/2.06/2.58/2.40/2.57/2.67 Tourney;"
    );
    println!(" expected shape: uniproc slower than simple locks (ratio > 1.0);");
    println!(" speed-ups at or slightly above Table 4-6 for Weaver/Rubik; Tourney still poor)");
}
