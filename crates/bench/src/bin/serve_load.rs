//! `serve_load` — closed-loop load generator for the serve layer.
//!
//! Default mode runs the same closed-loop workload against **both**
//! connection front-ends — `threads` (two OS threads per connection) and
//! `reactor` (one epoll thread for all connections) — and gates each on
//! zero divergences: N concurrent connections x M iterations, each
//! iteration opening a session from the corpus rotation, running it to
//! halt in chunked `RUN`s, and diffing the firing log against a direct
//! in-process engine run of the same program. Backpressure is exercised
//! both ways (`BUSY` retry under a deliberately small run queue, and an
//! `OVERLOADED` saturation probe per front-end).
//!
//! `--high-concurrency` adds two more phases:
//!
//! * **reactor-hc** — spawns `ops5-serve --front-end reactor` as a child
//!   process (the fd budget wants its own process), establishes
//!   `--hc-connections` (default 10000) concurrent connections from a
//!   single nonblocking driver thread, confirms concurrency by scraping
//!   `serve_connections_open` from the child's `/metrics`, then drives a
//!   micro session on every connection. All reply streams must be
//!   byte-identical to a reference session (zero divergence).
//! * **routed** — spawns two backend processes, fronts them with an
//!   in-process `ops5-router`, drives sessions through the ring, and
//!   mid-run issues `ADMIN DRAIN 0`, which live-migrates backend 0's
//!   sessions to backend 1 via `SNAPSHOT?`/`RESTORE`. Firing logs must
//!   still diff clean against the direct-engine references.
//!
//! Prints a summary per phase and writes `BENCH_serve.json` as
//! `{"rows": [...]}` — one row per phase.
//!
//! `--kill-recover` switches to the durability gate (unchanged): sessions
//! are killed without `CLOSE` and recovered via `RESTORE` from their
//! on-disk snapshot + change-log.
//!
//! `--priorities` switches to the scheduling gate: a saturating `batch`
//! background load against an in-process server with small preemption
//! slices, foreground `high`/`normal` sessions issuing the same command
//! shapes, a mid-run `CANCEL`, and a `clamped=`/`PRIO` protocol check.
//! Gates: 0 firing-log divergences (every sliced, preempted, cancelled-
//! then-resumed run must match the direct engine) and high-class p99 RUN
//! latency below batch-class p99.
//!
//! ```text
//! Usage: serve_load [--connections N] [--iterations M] [--workers W]
//!                   [--programs DIR] [--json PATH]
//!                   [--front-end threads|reactor|both]
//!                   [--high-concurrency] [--hc-connections N]
//!                   [--routed-connections N] [--backend-bin PATH]
//!                   [--kill-recover] [--matchers vs1,vs2,lisp,psm,col]
//!                   [--priorities]
//! ```

use reactor::{Events, Interest, LineBuf, Poll, Token, WriteBuf};
use serve::{
    Client, ClientReply, FrontEnd, Registry, Router, RouterConfig, ServeConfig, Server, Session,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    connections: usize,
    iterations: usize,
    workers: usize,
    programs: PathBuf,
    json: PathBuf,
    kill_recover: bool,
    priorities: bool,
    matchers: Vec<String>,
    front_end: String,
    high_concurrency: bool,
    hc_connections: usize,
    routed_connections: usize,
    backend_bin: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        connections: 32,
        iterations: 2,
        workers: 4,
        programs: PathBuf::from("programs"),
        json: PathBuf::from("BENCH_serve.json"),
        kill_recover: false,
        priorities: false,
        matchers: ["vs1", "vs2", "lisp", "psm", "col"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        front_end: "both".into(),
        high_concurrency: false,
        hc_connections: 10_000,
        routed_connections: 64,
        backend_bin: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--connections" => o.connections = val()?.parse().map_err(|e| format!("{e}"))?,
            "--iterations" => o.iterations = val()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => o.workers = val()?.parse().map_err(|e| format!("{e}"))?,
            "--programs" => o.programs = PathBuf::from(val()?),
            "--json" => o.json = PathBuf::from(val()?),
            "--kill-recover" => o.kill_recover = true,
            "--priorities" => o.priorities = true,
            "--matchers" => o.matchers = val()?.split(',').map(|s| s.to_string()).collect(),
            "--front-end" => {
                o.front_end = val()?;
                if !matches!(o.front_end.as_str(), "threads" | "reactor" | "both") {
                    return Err(format!(
                        "--front-end wants threads|reactor|both, got `{}`",
                        o.front_end
                    ));
                }
            }
            "--high-concurrency" => o.high_concurrency = true,
            "--hc-connections" => o.hc_connections = val()?.parse().map_err(|e| format!("{e}"))?,
            "--routed-connections" => {
                o.routed_connections = val()?.parse().map_err(|e| format!("{e}"))?
            }
            "--backend-bin" => o.backend_bin = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

#[derive(Default)]
struct Counters {
    sessions: AtomicU64,
    commands: AtomicU64,
    cycles: AtomicU64,
    busy_retries: AtomicU64,
    divergences: AtomicU64,
}

/// Sends a request, retrying on backpressure (the closed-loop client's
/// contract: a `BUSY` reply means "come back", not "give up").
fn req_retry(c: &mut Client, line: &str, n: &Counters) -> std::io::Result<ClientReply> {
    loop {
        let reply = c.request(line)?;
        if reply.is_backpressure() {
            n.busy_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }
        n.commands.fetch_add(1, Ordering::Relaxed);
        return Ok(reply);
    }
}

fn field<'a>(payload: &'a str, key: &str) -> Option<&'a str> {
    payload
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// One session lifecycle; returns this session's firing log.
fn drive_session(
    c: &mut Client,
    program: &str,
    n: &Counters,
    lat: &mut Vec<f64>,
) -> Result<Vec<String>, String> {
    let t0 = Instant::now();
    c.open(program, Some("psm"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    lat.push(t0.elapsed().as_secs_f64() * 1e3);
    n.commands.fetch_add(1, Ordering::Relaxed);
    n.sessions.fetch_add(1, Ordering::Relaxed);
    for _ in 0..200 {
        let t0 = Instant::now();
        let payload = req_retry(c, "RUN 2000", n)
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        lat.push(t0.elapsed().as_secs_f64() * 1e3);
        let cycles: u64 = field(&payload, "cycles")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad RUN reply `{payload}`"))?;
        n.cycles.fetch_add(cycles, Ordering::Relaxed);
        match field(&payload, "reason") {
            Some("halt") | Some("quiescent") | Some("budget") => break,
            Some("limit") | Some("settled") => continue,
            other => return Err(format!("bad reason {other:?} in `{payload}`")),
        }
    }
    let fired = req_retry(c, "FIRED?", n)
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    req_retry(c, "CLOSE", n)
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    Ok(fired)
}

/// Reference firing logs from direct in-process engine runs — the ground
/// truth the served sessions are diffed against.
fn references(programs: &Path, names: &[&str]) -> HashMap<String, Vec<String>> {
    let reg = Registry::with_builtins(Some(programs));
    let mut map = HashMap::new();
    for name in names {
        let spec = reg.get(name).unwrap_or_else(|| panic!("missing {name}"));
        let mut eng = spec
            .build(
                serve::matcher_kind("psm").unwrap(),
                Default::default(),
                None,
            )
            .expect("build reference engine");
        eng.run(400_000).expect("reference run");
        let lines: Vec<String> = eng
            .fired_log()
            .iter()
            .map(|(p, tags)| {
                let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
                format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
            })
            .collect();
        map.insert(name.to_string(), lines);
    }
    map
}

/// Pipelines a burst of commands at a wedged session without draining
/// replies, forcing the per-session inbox over its depth. Returns how many
/// `OVERLOADED` replies came back.
fn saturation_probe(addr: SocketAddr) -> Result<u64, String> {
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    let spin = "(literalize c n)
                (p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";
    c.open_source(spin, Some("vs2"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    c.assert_wme("c ^n 0").map_err(|e| e.to_string())?.unwrap();
    // Wedge the session's worker on a long run, then flood the inbox.
    let burst = 96;
    c.send_line("RUN 10000").map_err(|e| e.to_string())?;
    for i in 0..burst {
        c.send_line(&format!("ASSERT c ^n {i}"))
            .map_err(|e| e.to_string())?;
    }
    let mut overloaded = 0;
    for _ in 0..burst + 1 {
        if matches!(
            c.read_reply().map_err(|e| e.to_string())?,
            ClientReply::Overloaded(_)
        ) {
            overloaded += 1;
        }
    }
    let _ = c.close();
    Ok(overloaded)
}

/// Runs one program to completion on a direct in-process engine and
/// returns its firing log lines — the ground truth for recovery diffs.
fn reference_fired(reg: &Registry, program: &str, matcher: &str) -> Result<Vec<String>, String> {
    let spec = reg
        .get(program)
        .ok_or_else(|| format!("unknown program `{program}`"))?;
    let mut eng = spec
        .build(serve::matcher_kind(matcher)?, Default::default(), None)
        .map_err(|e| e.to_string())?;
    eng.run(400_000).map_err(|e| e.to_string())?;
    Ok(eng
        .fired_log()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect())
}

/// One kill-recover check: drive a durable session partway in small `RUN`
/// chunks, vanish without `CLOSE`, recover from the on-disk snapshot +
/// change-log via `RESTORE`, finish the run, and diff the recovered firing
/// log against `reference`. Returns an error describing the divergence, if
/// any.
fn kill_recover_one(
    programs: &Path,
    program: &str,
    matcher: &str,
    reference: &[String],
) -> Result<(), String> {
    let state = std::env::temp_dir().join(format!(
        "serve-kr-{}-{program}-{matcher}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state);
    let cfg = ServeConfig {
        workers: 2,
        durability_dir: Some(state.clone()),
        // Low water mark: mid-run checkpoints *and* log-tail replay both
        // get exercised on every program.
        checkpoint_every: 32,
        programs_dir: Some(programs.to_path_buf()),
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg)
        .map_err(|e| e.to_string())?
        .spawn();

    {
        // The doomed session: partial progress in small chunks, then the
        // connection is dropped with no CLOSE — the simulated kill. Every
        // completed command's records are already flushed to disk.
        let mut c = Client::connect(handle.addr).map_err(|e| e.to_string())?;
        c.open(program, Some(matcher))
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        for _ in 0..3 {
            let payload = c
                .request("RUN 50")
                .map_err(|e| e.to_string())?
                .expect_ok()?;
            if field(&payload, "reason") != Some("limit") {
                break;
            }
        }
    }

    let snap = std::fs::read_to_string(Session::snap_path(&state, 1))
        .map_err(|e| format!("read snapshot: {e}"))?;
    let log = std::fs::read_to_string(Session::log_path(&state, 1))
        .map_err(|e| format!("read change log: {e}"))?;

    let mut c = Client::connect(handle.addr).map_err(|e| e.to_string())?;
    c.restore(program, Some(matcher), &format!("{snap}{log}"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    for _ in 0..400 {
        let payload = c
            .request("RUN 2000")
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        match field(&payload, "reason") {
            Some("limit") | Some("settled") => continue,
            Some(_) => break,
            None => return Err(format!("bad RUN reply `{payload}`")),
        }
    }
    let fired = c
        .request("FIRED?")
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    let _ = c.close();
    let mut shut = Client::connect(handle.addr).map_err(|e| e.to_string())?;
    let _ = shut.shutdown();
    handle.join().map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&state);

    if fired != reference {
        let first_diff = fired
            .iter()
            .zip(reference.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(fired.len().min(reference.len()));
        return Err(format!(
            "{} recovered firings vs {} reference (first diff at {})",
            fired.len(),
            reference.len(),
            first_diff
        ));
    }
    Ok(())
}

/// The `--kill-recover` durability gate; returns the number of divergences.
fn kill_recover_main(opts: &Opts, corpus: &[&str]) -> u64 {
    let reg = Registry::with_builtins(Some(&opts.programs));
    let mut divergences = 0u64;
    let mut checks = 0u64;
    let t0 = Instant::now();
    for program in corpus {
        for matcher in &opts.matchers {
            checks += 1;
            let outcome = reference_fired(&reg, program, matcher)
                .and_then(|r| kill_recover_one(&opts.programs, program, matcher, &r));
            match outcome {
                Ok(()) => eprintln!("serve_load: kill-recover {program}/{matcher}: clean"),
                Err(e) => {
                    eprintln!("serve_load: DIVERGENCE {program}/{matcher}: {e}");
                    divergences += 1;
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!("== serve_load --kill-recover ==");
    println!(
        "checks {checks} ({} programs x {} matchers)  divergences {divergences}  elapsed {elapsed:.2}s",
        corpus.len(),
        opts.matchers.len()
    );
    let json = format!(
        "{{\n  \"mode\": \"kill-recover\",\n  \"checks\": {checks},\n  \
         \"divergences\": {divergences},\n  \"elapsed_s\": {elapsed:.3}\n}}\n"
    );
    if let Err(e) = std::fs::write(&opts.json, json) {
        eprintln!("serve_load: write {}: {e}", opts.json.display());
    }
    divergences
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One closed-loop run against an in-process server using the given
/// front-end. Returns (JSON row, divergence count).
fn closed_loop(
    opts: &Opts,
    corpus: &[&'static str],
    refs: &Arc<HashMap<String, Vec<String>>>,
    front_end: FrontEnd,
) -> (String, u64) {
    let mode = match front_end {
        FrontEnd::Threads => "threads",
        FrontEnd::Reactor => "reactor",
    };
    eprintln!(
        "serve_load[{mode}]: {} connections x {} iterations over {corpus:?}",
        opts.connections, opts.iterations
    );

    // Run queue deliberately smaller than the connection count so the
    // closed-loop clients exercise BUSY-and-retry under saturation.
    let cfg = ServeConfig {
        workers: opts.workers,
        queue_depth: 8,
        run_queue_cap: (opts.connections / 2).max(4),
        max_cycles_per_run: 10_000,
        matcher: serve::matcher_kind("psm").unwrap(),
        programs_dir: Some(opts.programs.clone()),
        front_end,
        ..ServeConfig::default()
    };
    let run_queue_cap = cfg.run_queue_cap;
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind").spawn();
    let addr = handle.addr;

    let n = Arc::new(Counters::default());
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let t0 = Instant::now();
    let iterations = opts.iterations;
    let corpus_owned: Vec<&'static str> = corpus.to_vec();
    let threads: Vec<_> = (0..opts.connections)
        .map(|ci| {
            let n = n.clone();
            let refs = refs.clone();
            let latencies = latencies.clone();
            let corpus = corpus_owned.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut c = Client::connect(addr).expect("connect");
                for it in 0..iterations {
                    let program = corpus[(ci + it) % corpus.len()];
                    match drive_session(&mut c, program, &n, &mut lat) {
                        Ok(fired) => {
                            if fired != refs[program] {
                                eprintln!(
                                    "serve_load: DIVERGENCE conn {ci} iter {it} program {program}: \
                                     {} fired vs {} reference",
                                    fired.len(),
                                    refs[program].len()
                                );
                                n.divergences.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("serve_load: conn {ci} iter {it} {program}: {e}");
                            n.divergences.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(lat);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let overloaded = match saturation_probe(addr) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("serve_load: saturation probe: {e}");
            0
        }
    };

    let mut shut = Client::connect(addr).expect("connect");
    shut.shutdown().expect("shutdown").expect_ok().expect("ok");
    handle.join().expect("server join");

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p90, p99) = (
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        percentile(&lat, 0.99),
    );
    let max_lat = lat.last().copied().unwrap_or(0.0);
    let sessions = n.sessions.load(Ordering::Relaxed);
    let commands = n.commands.load(Ordering::Relaxed);
    let cycles = n.cycles.load(Ordering::Relaxed);
    let busy = n.busy_retries.load(Ordering::Relaxed);
    let divergences = n.divergences.load(Ordering::Relaxed);

    println!("== serve_load [{mode}] ==");
    println!("sessions {sessions}  commands {commands}  cycles {cycles}  elapsed {elapsed:.2}s");
    println!(
        "throughput: {:.0} commands/s, {:.0} cycles/s, {:.1} sessions/s",
        commands as f64 / elapsed,
        cycles as f64 / elapsed,
        sessions as f64 / elapsed
    );
    println!("latency ms: p50 {p50:.2}  p90 {p90:.2}  p99 {p99:.2}  max {max_lat:.2}");
    println!("backpressure: {busy} busy/overloaded retries, {overloaded} overloaded (probe)");
    println!("divergences: {divergences}");

    let row = format!(
        "{{\"mode\": \"{mode}\",\n   \
         \"config\": {{\"connections\": {}, \"iterations\": {}, \"workers\": {}, \
         \"queue_depth\": 8, \"run_queue_cap\": {}, \"matcher\": \"psm\"}},\n   \
         \"totals\": {{\"sessions\": {sessions}, \"commands\": {commands}, \"cycles\": {cycles}, \
         \"elapsed_s\": {elapsed:.3}}},\n   \
         \"throughput\": {{\"commands_per_s\": {:.1}, \"cycles_per_s\": {:.1}, \
         \"sessions_per_s\": {:.2}}},\n   \
         \"latency_ms\": {{\"p50\": {p50:.3}, \"p90\": {p90:.3}, \"p99\": {p99:.3}, \
         \"max\": {max_lat:.3}}},\n   \
         \"backpressure\": {{\"busy_retries\": {busy}, \"overloaded_probe\": {overloaded}}},\n   \
         \"divergences\": {divergences}}}",
        opts.connections,
        opts.iterations,
        opts.workers,
        run_queue_cap,
        commands as f64 / elapsed,
        cycles as f64 / elapsed,
        sessions as f64 / elapsed,
    );
    (row, divergences)
}

// ---------------------------------------------------------------------------
// Spawned backend processes (the fd budget of the 10k-connection phase and
// the multi-process shard set both want real `ops5-serve` children).
// ---------------------------------------------------------------------------

struct BackendProc {
    child: Child,
    addr: SocketAddr,
    metrics: Option<SocketAddr>,
}

impl BackendProc {
    /// Asks the backend to shut down cleanly; kills it if that fails.
    fn stop(mut self) {
        let clean = Client::connect(self.addr)
            .and_then(|mut c| c.shutdown())
            .is_ok();
        if clean {
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                match self.child.try_wait() {
                    Ok(Some(_)) => return,
                    Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                    Err(_) => break,
                }
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Locates the `ops5-serve` binary: `--backend-bin`, or a sibling of the
/// running executable (both live in the same cargo target directory).
fn backend_bin(opts: &Opts) -> Result<PathBuf, String> {
    if let Some(p) = &opts.backend_bin {
        return Ok(p.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name("ops5-serve");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(format!(
        "ops5-serve not found at {} — build it (cargo build --release) or pass --backend-bin",
        sibling.display()
    ))
}

/// Spawns an `ops5-serve --front-end reactor` child and parses its listen
/// (and optionally metrics) address off stderr.
fn spawn_backend(bin: &Path, opts: &Opts, with_metrics: bool) -> Result<BackendProc, String> {
    let mut cmd = Command::new(bin);
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--programs")
        .arg(&opts.programs)
        .arg("--workers")
        .arg(opts.workers.to_string())
        .arg("--front-end")
        .arg("reactor")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if with_metrics {
        cmd.arg("--metrics-port").arg("0");
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut addr: Option<SocketAddr> = None;
    let mut metrics: Option<SocketAddr> = None;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("read backend stderr: {e}")),
        }
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("ops5-serve: listening on ") {
            addr = rest.parse().ok();
        }
        if let Some(rest) = line.strip_prefix("ops5-serve: metrics on http://") {
            metrics = rest.trim_end_matches("/metrics").parse().ok();
        }
        if let Some(addr) = addr {
            if with_metrics && metrics.is_none() {
                continue;
            }
            // Keep draining stderr so the child never blocks on the pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                loop {
                    sink.clear();
                    match reader.read_line(&mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            });
            return Ok(BackendProc {
                child,
                addr,
                metrics,
            });
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    Err("backend did not report a listen address within 30s".into())
}

/// One `GET /metrics` scrape; returns the value of an un-labelled series.
fn scrape_metric(addr: SocketAddr, name: &str) -> Option<i64> {
    let mut s = TcpStream::connect(addr).ok()?;
    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").ok()?;
    let mut body = String::new();
    s.read_to_string(&mut body).ok()?;
    for line in body.lines() {
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            return parts
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v as i64);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// High-concurrency phase: 10k+ connections from one nonblocking driver.
// ---------------------------------------------------------------------------

/// The micro session every high-concurrency connection runs. Request 0
/// carries the whole inline-program body; the rest are single lines.
fn hc_script() -> Vec<String> {
    vec![
        "OPEN - vs2\n(literalize ping n)\n(p pong (ping ^n <n>) --> (remove 1))\nEND\n".into(),
        "ASSERT ping ^n 1\n".into(),
        "ASSERT ping ^n 2\n".into(),
        "ASSERT ping ^n 3\n".into(),
        "RUN 10\n".into(),
        "FIRED?\n".into(),
        "CLOSE\n".into(),
    ]
}

struct HcConn {
    stream: TcpStream,
    rd: LineBuf,
    wr: WriteBuf,
    interest: Interest,
    cursor: usize,
    awaiting: bool,
    in_multi: bool,
    cur: Vec<String>,
    replies: Vec<String>,
    not_before: Instant,
    done: bool,
    failed: Option<String>,
}

impl HcConn {
    fn new(stream: TcpStream, now: Instant) -> HcConn {
        HcConn {
            stream,
            rd: LineBuf::new(),
            wr: WriteBuf::new(),
            interest: Interest::READABLE,
            cursor: 0,
            awaiting: false,
            in_multi: false,
            cur: Vec::new(),
            replies: Vec::new(),
            not_before: now,
            done: false,
            failed: None,
        }
    }
}

/// Runs `script` once over a blocking connection and returns the
/// normalized reply stream — the reference every driver connection must
/// reproduce byte-for-byte.
fn hc_reference(addr: SocketAddr, script: &[String]) -> Result<Vec<String>, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let _ = s.set_nodelay(true);
    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
    let mut rd = LineBuf::new();
    let mut replies = Vec::new();
    for (i, req) in script.iter().enumerate() {
        loop {
            s.write_all(req.as_bytes()).map_err(|e| e.to_string())?;
            let mut lines = Vec::new();
            loop {
                let line = loop {
                    if let Some(l) = rd.next_line() {
                        break l;
                    }
                    match rd.read_from(&mut s) {
                        Ok(0) => return Err("reference: unexpected EOF".into()),
                        Ok(_) => {}
                        Err(e) => return Err(format!("reference: {e}")),
                    }
                };
                let first = lines.is_empty();
                lines.push(line);
                if first {
                    let head = lines.last().unwrap();
                    if ["OK", "ERR", "BUSY", "OVERLOADED"]
                        .iter()
                        .any(|p| head == p || head.starts_with(&format!("{p} ")))
                    {
                        break;
                    }
                } else if lines.last().unwrap() == "END" {
                    break;
                }
            }
            let head = &lines[0];
            if head.starts_with("BUSY") || head.starts_with("OVERLOADED") {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            let rec = if i == 0 && head.starts_with("OK session") {
                "OK session".to_string()
            } else {
                lines.join("\n")
            };
            replies.push(rec);
            break;
        }
    }
    Ok(replies)
}

/// The 10k-connection phase. Establishes all connections first (confirmed
/// via the backend's `serve_connections_open` gauge), then drives the
/// micro script everywhere and diffs every reply stream against the
/// reference. Returns (JSON row, divergences).
fn hc_phase(opts: &Opts, bin: &Path) -> Result<(String, u64), String> {
    let n = opts.hc_connections;
    let raised = reactor::raise_nofile_limit((n + 512) as u64).unwrap_or(0);
    if (raised as usize) < n + 256 {
        return Err(format!(
            "fd limit {raised} too low for {n} connections (need ~{})",
            n + 256
        ));
    }
    eprintln!(
        "serve_load[reactor-hc]: spawning backend ({})",
        bin.display()
    );
    let backend = spawn_backend(bin, opts, true)?;
    let maddr = backend
        .metrics
        .ok_or("backend reported no metrics address")?;
    let script = hc_script();
    let reference = hc_reference(backend.addr, &script)?;

    let t0 = Instant::now();
    let poll = Poll::new().map_err(|e| e.to_string())?;
    let mut conns: Vec<HcConn> = Vec::with_capacity(n);

    // Phase 1: establish every connection before any traffic, pacing the
    // accept backlog and confirming real concurrency via the gauge.
    eprintln!("serve_load[reactor-hc]: establishing {n} connections...");
    while conns.len() < n {
        let chunk = (n - conns.len()).min(256);
        for _ in 0..chunk {
            let s = TcpStream::connect(backend.addr)
                .map_err(|e| format!("connect #{}: {e}", conns.len()))?;
            let _ = s.set_nodelay(true);
            s.set_nonblocking(true).map_err(|e| e.to_string())?;
            poll.register(s.as_raw_fd(), Token(conns.len()), Interest::READABLE)
                .map_err(|e| e.to_string())?;
            conns.push(HcConn::new(s, t0));
        }
        // Wait for the backend to have accepted this chunk before piling
        // more onto the listen backlog.
        let want = conns.len() as i64;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            // +1: the reference client's connection may still be counted.
            if scrape_metric(maddr, "serve_connections_open").unwrap_or(0) >= want {
                break;
            }
            if Instant::now() > deadline {
                return Err(format!("backend accepted fewer than {want} connections"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let open_peak = scrape_metric(maddr, "serve_connections_open").unwrap_or(0);
    eprintln!(
        "serve_load[reactor-hc]: {} connections established (gauge {open_peak}) in {:.1}s",
        conns.len(),
        t0.elapsed().as_secs_f64()
    );

    // Phase 2: drive the script on every connection, request-response,
    // retrying on backpressure.
    let mut busy_retries = 0u64;
    let mut open_done = 0usize;
    let mut events = Events::with_capacity(1024);
    let deadline = Instant::now() + Duration::from_secs(900);
    loop {
        let now = Instant::now();
        if now > deadline {
            break;
        }
        // Send step: every quiet connection issues its next request.
        for c in conns.iter_mut() {
            if c.done || c.failed.is_some() || c.awaiting || now < c.not_before {
                continue;
            }
            c.wr.push(script[c.cursor].as_bytes());
            c.awaiting = true;
            if c.wr.write_to(&mut c.stream).is_err() {
                c.failed = Some("write".into());
            }
        }
        // Fix up interest: writable only while a partial write is pending.
        for (i, c) in conns.iter_mut().enumerate() {
            if c.done || c.failed.is_some() {
                continue;
            }
            let want = if c.wr.is_empty() {
                Interest::READABLE
            } else {
                Interest::READABLE | Interest::WRITABLE
            };
            if want != c.interest
                && poll
                    .reregister(c.stream.as_raw_fd(), Token(i), want)
                    .is_ok()
            {
                c.interest = want;
            }
        }
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .map_err(|e| e.to_string())?;
        for ev in events.iter() {
            let Token(i) = ev.token();
            let Some(c) = conns.get_mut(i) else { continue };
            if c.done || c.failed.is_some() {
                continue;
            }
            if ev.is_writable() && !c.wr.is_empty() && c.wr.write_to(&mut c.stream).is_err() {
                c.failed = Some("write".into());
                continue;
            }
            if !ev.is_readable() {
                continue;
            }
            for _ in 0..4 {
                match c.rd.read_from(&mut c.stream) {
                    Ok(0) => {
                        if !c.done {
                            c.failed = Some("eof mid-script".into());
                        }
                        break;
                    }
                    Ok(k) => {
                        if k < 4096 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        c.failed = Some(format!("read: {e}"));
                        break;
                    }
                }
            }
            while let Some(line) = c.rd.next_line() {
                if !c.awaiting {
                    c.failed = Some(format!("unsolicited line `{line}`"));
                    break;
                }
                let first = c.cur.is_empty();
                c.cur.push(line);
                let complete = if first {
                    let head = c.cur.last().unwrap();
                    ["OK", "ERR", "BUSY", "OVERLOADED"]
                        .iter()
                        .any(|p| head == p || head.starts_with(&format!("{p} ")))
                } else {
                    c.cur.last().unwrap() == "END"
                };
                if !complete {
                    c.in_multi = true;
                    continue;
                }
                let lines = std::mem::take(&mut c.cur);
                c.in_multi = false;
                c.awaiting = false;
                let head = &lines[0];
                if head.starts_with("BUSY") || head.starts_with("OVERLOADED") {
                    busy_retries += 1;
                    c.not_before = Instant::now() + Duration::from_millis(50);
                    continue;
                }
                let rec = if c.cursor == 0 && head.starts_with("OK session") {
                    "OK session".to_string()
                } else {
                    lines.join("\n")
                };
                c.replies.push(rec);
                c.cursor += 1;
                if c.cursor == script.len() {
                    c.done = true;
                    open_done += 1;
                    break;
                }
            }
        }
        if conns.iter().all(|c| c.done || c.failed.is_some()) {
            break;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let mut divergences = 0u64;
    for (i, c) in conns.iter().enumerate() {
        if let Some(why) = &c.failed {
            if divergences < 5 {
                eprintln!("serve_load[reactor-hc]: conn {i} failed: {why}");
            }
            divergences += 1;
        } else if !c.done {
            if divergences < 5 {
                eprintln!(
                    "serve_load[reactor-hc]: conn {i} timed out at request {}",
                    c.cursor
                );
            }
            divergences += 1;
        } else if c.replies != reference {
            if divergences < 5 {
                let at = c
                    .replies
                    .iter()
                    .zip(reference.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(reference.len().min(c.replies.len()));
                eprintln!(
                    "serve_load[reactor-hc]: DIVERGENCE conn {i} reply {at}: `{}` vs `{}`",
                    c.replies.get(at).map(String::as_str).unwrap_or("<missing>"),
                    reference.get(at).map(String::as_str).unwrap_or("<missing>"),
                );
            }
            divergences += 1;
        }
    }

    let wakeups = scrape_metric(maddr, "reactor_wakeups_total").unwrap_or(0);
    let accepts = scrape_metric(maddr, "serve_accepts_total").unwrap_or(0);
    drop(conns);
    backend.stop();

    println!("== serve_load [reactor-hc] ==");
    println!(
        "connections {n}  peak gauge {open_peak}  completed {open_done}  \
         busy_retries {busy_retries}  elapsed {elapsed:.2}s"
    );
    println!("backend: accepts {accepts}  reactor wakeups {wakeups}");
    println!("divergences: {divergences}");

    let row = format!(
        "{{\"mode\": \"reactor-hc\",\n   \
         \"config\": {{\"connections\": {n}, \"workers\": {}}},\n   \
         \"totals\": {{\"established_peak\": {open_peak}, \"completed\": {open_done}, \
         \"busy_retries\": {busy_retries}, \"backend_accepts\": {accepts}, \
         \"reactor_wakeups\": {wakeups}, \"elapsed_s\": {elapsed:.3}}},\n   \
         \"divergences\": {divergences}}}",
        opts.workers
    );
    Ok((row, divergences))
}

// ---------------------------------------------------------------------------
// Routed phase: 2 backend processes + ops5-router, with a live drain.
// ---------------------------------------------------------------------------

fn admin_field(lines: &[String], backend: usize, key: &str) -> Option<u64> {
    lines
        .iter()
        .find(|l| l.starts_with(&format!("backend {backend} ")))
        .and_then(|l| field(l, key))
        .and_then(|v| v.parse().ok())
}

/// Sessions through a 2-backend shard set, with backend 0 drained while
/// every session sits at a request boundary. Returns (JSON row, divergences).
fn routed_phase(
    opts: &Opts,
    corpus: &[&'static str],
    refs: &Arc<HashMap<String, Vec<String>>>,
    bin: &Path,
) -> Result<(String, u64), String> {
    eprintln!("serve_load[routed]: spawning 2 backends + router");
    let b0 = spawn_backend(bin, opts, false)?;
    let b1 = spawn_backend(bin, opts, false)?;
    let router = Router::bind("127.0.0.1:0", RouterConfig::new(vec![b0.addr, b1.addr]))
        .map_err(|e| e.to_string())?
        .spawn();
    let addr = router.addr;

    let nconns = opts.routed_connections;
    let n = Arc::new(Counters::default());
    // Two rendezvous: all sessions parked mid-run before the drain, and
    // all released after it.
    let barrier = Arc::new(Barrier::new(nconns + 1));
    let t0 = Instant::now();
    let corpus_owned: Vec<&'static str> = corpus.to_vec();
    let threads: Vec<_> = (0..nconns)
        .map(|ci| {
            let n = n.clone();
            let refs = refs.clone();
            let barrier = barrier.clone();
            let corpus = corpus_owned.clone();
            std::thread::spawn(move || {
                let program = corpus[ci % corpus.len()];
                let run = || -> Result<(), String> {
                    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                    c.open(program, Some("psm"))
                        .map_err(|e| e.to_string())?
                        .expect_ok()?;
                    n.sessions.fetch_add(1, Ordering::Relaxed);
                    // Partial progress, then park at a request boundary so
                    // the drain finds the session idle and migratable.
                    for _ in 0..3 {
                        let payload = req_retry(&mut c, "RUN 50", &n)
                            .map_err(|e| e.to_string())?
                            .expect_ok()?;
                        if field(&payload, "reason") != Some("limit") {
                            break;
                        }
                    }
                    barrier.wait();
                    barrier.wait();
                    // Resume: possibly on a different backend now.
                    for _ in 0..400 {
                        let payload = req_retry(&mut c, "RUN 2000", &n)
                            .map_err(|e| e.to_string())?
                            .expect_ok()?;
                        match field(&payload, "reason") {
                            Some("limit") | Some("settled") => continue,
                            Some(_) => break,
                            None => return Err(format!("bad RUN reply `{payload}`")),
                        }
                    }
                    let fired = req_retry(&mut c, "FIRED?", &n)
                        .map_err(|e| e.to_string())?
                        .expect_lines()?;
                    let _ = req_retry(&mut c, "CLOSE", &n).map_err(|e| e.to_string())?;
                    if fired != refs[program] {
                        return Err(format!(
                            "{} fired vs {} reference",
                            fired.len(),
                            refs[program].len()
                        ));
                    }
                    Ok(())
                };
                if let Err(e) = run() {
                    eprintln!("serve_load[routed]: conn {ci} ({program}): DIVERGENCE {e}");
                    n.divergences.fetch_add(1, Ordering::Relaxed);
                    // A failed client must not strand the rendezvous.
                    barrier.wait();
                    barrier.wait();
                }
            })
        })
        .collect();

    barrier.wait(); // every session parked
    let mut admin = Client::connect(addr).map_err(|e| e.to_string())?;
    admin
        .request("ADMIN")
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    let before = admin
        .request("RING?")
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    let on_b0 = admin_field(&before, 0, "pairs").unwrap_or(0);
    eprintln!("serve_load[routed]: draining backend 0 ({on_b0} pairs attached)");
    admin
        .request("DRAIN 0")
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    // The drain migrates idle pairs synchronously, but verify via RING?.
    let deadline = Instant::now() + Duration::from_secs(60);
    let drained = loop {
        let ring = admin
            .request("RING?")
            .map_err(|e| e.to_string())?
            .expect_lines()?;
        if admin_field(&ring, 0, "pairs") == Some(0) {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    let stats = admin
        .request("STATS?")
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    let migrations: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migrations "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let failures: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("migration_failures "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    barrier.wait(); // release the sessions

    for t in threads {
        t.join().expect("routed client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let mut divergences = n.divergences.load(Ordering::Relaxed);
    if !drained {
        eprintln!("serve_load[routed]: DIVERGENCE backend 0 never fully drained");
        divergences += 1;
    }
    if failures > 0 {
        eprintln!("serve_load[routed]: DIVERGENCE {failures} migration failures");
        divergences += failures;
    }

    // Tear down: router shutdown forwards SHUTDOWN to live backends.
    let _ = admin.request("SHUTDOWN");
    let _ = router.join();
    b0.stop();
    b1.stop();

    let sessions = n.sessions.load(Ordering::Relaxed);
    let busy = n.busy_retries.load(Ordering::Relaxed);
    println!("== serve_load [routed] ==");
    println!(
        "sessions {sessions}  migrated {migrations} (of {on_b0} on backend 0)  \
         busy_retries {busy}  elapsed {elapsed:.2}s"
    );
    println!("divergences: {divergences}");

    let row = format!(
        "{{\"mode\": \"routed\",\n   \
         \"config\": {{\"connections\": {nconns}, \"backends\": 2, \"workers\": {}}},\n   \
         \"totals\": {{\"sessions\": {sessions}, \"migrations\": {migrations}, \
         \"migration_failures\": {failures}, \"busy_retries\": {busy}, \
         \"elapsed_s\": {elapsed:.3}}},\n   \
         \"divergences\": {divergences}}}",
        opts.workers
    );
    Ok((row, divergences))
}

// ---------------------------------------------------------------------------
// Priorities phase: weighted scheduling + preemption + cancellation gate.
// ---------------------------------------------------------------------------

/// One session lifecycle in an explicit scheduling class, recording only
/// `RUN` latencies (the pool-scheduled command the class comparison is
/// about; `OPEN` is answered by the reader and never queues).
fn drive_prio_session(
    c: &mut Client,
    program: &str,
    prio: &str,
    n: &Counters,
    lat: &mut Vec<f64>,
    stop: Option<&AtomicU64>,
) -> Result<Option<Vec<String>>, String> {
    let ok = c
        .open_prio(program, Some("psm"), prio)
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    if !ok.contains(&format!("prio={prio}")) {
        return Err(format!("OPEN did not echo prio: `{ok}`"));
    }
    n.sessions.fetch_add(1, Ordering::Relaxed);
    let mut finished = false;
    for _ in 0..400 {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed) != 0) {
            break;
        }
        let t0 = Instant::now();
        let payload = req_retry(c, "RUN 2000", n)
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        lat.push(t0.elapsed().as_secs_f64() * 1e3);
        let cycles: u64 = field(&payload, "cycles")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad RUN reply `{payload}`"))?;
        n.cycles.fetch_add(cycles, Ordering::Relaxed);
        match field(&payload, "reason") {
            Some("halt") | Some("quiescent") | Some("budget") => {
                finished = true;
                break;
            }
            Some("limit") | Some("settled") => continue,
            other => return Err(format!("bad reason {other:?} in `{payload}`")),
        }
    }
    // An interrupted (stop-flagged) session has a prefix firing log; only
    // completed sessions are diffable.
    let fired = if finished {
        Some(
            req_retry(c, "FIRED?", n)
                .map_err(|e| e.to_string())?
                .expect_lines()?,
        )
    } else {
        None
    };
    req_retry(c, "CLOSE", n)
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    Ok(fired)
}

/// Cancels an in-flight sliced `RUN` mid-run, then proves the session is
/// still resumable: run to completion and diff the firing log against the
/// direct-engine reference.
fn cancel_resumability(
    addr: SocketAddr,
    program: &str,
    reference: &[String],
) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    c.open_prio(program, Some("psm"), "high")
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    // Pipeline: a long clamped RUN, then CANCEL while it is (probably)
    // mid-slice. The RUN reply is either `ERR cancelled` (cut at a slice
    // boundary) or `OK ...` (it won the race) — both leave the session
    // resumable, which is the property under test.
    c.send_line("RUN 400000").map_err(|e| e.to_string())?;
    std::thread::sleep(Duration::from_millis(5));
    c.send_line("CANCEL").map_err(|e| e.to_string())?;
    match c.read_reply().map_err(|e| e.to_string())? {
        ClientReply::Ok(_) | ClientReply::Err(_) => {}
        other => return Err(format!("unexpected RUN reply {other:?}")),
    }
    let cancelled = c.read_reply().map_err(|e| e.to_string())?.expect_ok()?;
    if !cancelled.starts_with("cancelled pending=") {
        return Err(format!("unexpected CANCEL reply `{cancelled}`"));
    }
    for _ in 0..400 {
        let payload = c
            .request("RUN 2000")
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        match field(&payload, "reason") {
            Some("limit") | Some("settled") => continue,
            Some(_) => break,
            None => return Err(format!("bad RUN reply `{payload}`")),
        }
    }
    let fired = c
        .request("FIRED?")
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    let _ = c.close();
    if fired != reference {
        return Err(format!(
            "cancelled-then-resumed run diverged: {} fired vs {} reference",
            fired.len(),
            reference.len()
        ));
    }
    Ok(())
}

/// Protocol spot checks: a clamped `RUN` carries `clamped=<requested>`,
/// and the `PRIO` verb reclassifies a live session.
fn clamped_and_prio_check(addr: SocketAddr) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    let spin = "(literalize c n)
                (p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";
    c.open_source(spin, Some("vs2"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    c.assert_wme("c ^n 0").map_err(|e| e.to_string())?.unwrap();
    // 20000 > the server's max_cycles_per_run (10000): server policy, not
    // program behavior, ends this run — the reply must say so.
    let payload = c
        .request("RUN 20000")
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    if field(&payload, "reason") != Some("limit") || field(&payload, "clamped") != Some("20000") {
        return Err(format!(
            "expected reason=limit clamped=20000, got `{payload}`"
        ));
    }
    // An unclamped limit stop carries no clamped= note.
    let payload = c
        .request("RUN 50")
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    if field(&payload, "clamped").is_some() {
        return Err(format!(
            "unclamped RUN must not carry clamped=: `{payload}`"
        ));
    }
    let p = c.prio("batch").map_err(|e| e.to_string())?.expect_ok()?;
    if p != "prio=batch" {
        return Err(format!("unexpected PRIO reply `{p}`"));
    }
    let p = c.prio("high").map_err(|e| e.to_string())?.expect_ok()?;
    if p != "prio=high" {
        return Err(format!("unexpected PRIO reply `{p}`"));
    }
    if !matches!(
        c.prio("frob").map_err(|e| e.to_string())?,
        ClientReply::Err(_)
    ) {
        return Err("PRIO frob must error".into());
    }
    let _ = c.close();
    Ok(())
}

/// The `--priorities` gate. A saturating batch background load keeps every
/// worker busy with sliced RUNs while foreground high/normal sessions issue
/// the identical command shape; every completed session (any class, sliced
/// and preempted throughout) diffs its firing log against the direct
/// engine. Returns (JSON row, failures) where failures counts divergences
/// plus a high-vs-batch p99 inversion.
fn priorities_phase(
    opts: &Opts,
    corpus: &[&'static str],
    refs: &Arc<HashMap<String, Vec<String>>>,
) -> (String, u64) {
    const RUN_SLICE: u64 = 400;
    const BATCH_CONNS: usize = 8;
    // Few workers + many batch sessions: the run queues stay contended, so
    // the weighted dequeue (not idle workers) decides who runs next.
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 32,
        run_queue_cap: 256,
        max_cycles_per_run: 10_000,
        run_slice_cycles: RUN_SLICE,
        matcher: serve::matcher_kind("psm").unwrap(),
        programs_dir: Some(opts.programs.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind").spawn();
    let addr = handle.addr;
    eprintln!(
        "serve_load[priorities]: {BATCH_CONNS} batch background connections, \
         slice {RUN_SLICE} cycles, 2 workers"
    );

    let n = Arc::new(Counters::default());
    let stop = Arc::new(AtomicU64::new(0));
    let batch_lat = Arc::new(Mutex::new(Vec::<f64>::new()));
    let t0 = Instant::now();
    let corpus_owned: Vec<&'static str> = corpus.to_vec();
    let background: Vec<_> = (0..BATCH_CONNS)
        .map(|ci| {
            let n = n.clone();
            let stop = stop.clone();
            let refs = refs.clone();
            let batch_lat = batch_lat.clone();
            let corpus = corpus_owned.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut c = Client::connect(addr).expect("connect");
                let mut it = 0usize;
                while stop.load(Ordering::Relaxed) == 0 {
                    let program = corpus[(ci + it) % corpus.len()];
                    it += 1;
                    match drive_prio_session(&mut c, program, "batch", &n, &mut lat, Some(&stop)) {
                        Ok(Some(fired)) => {
                            if fired != refs[program] {
                                eprintln!(
                                    "serve_load[priorities]: DIVERGENCE batch conn {ci} \
                                     program {program}: {} fired vs {} reference",
                                    fired.len(),
                                    refs[program].len()
                                );
                                n.divergences.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(None) => {} // stop-flagged mid-session
                        Err(e) => {
                            eprintln!("serve_load[priorities]: batch conn {ci} {program}: {e}");
                            n.divergences.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                batch_lat.lock().unwrap().extend(lat);
            })
        })
        .collect();
    // Let the batch load saturate the workers before measuring.
    std::thread::sleep(Duration::from_millis(300));

    // Foreground: the small corpus programs in each class, same command
    // shape as the background, measured under full batch pressure.
    let fg_corpus: Vec<&'static str> = corpus.iter().copied().filter(|p| *p != "rubik").collect();
    let mut high_lat = Vec::new();
    let mut normal_lat = Vec::new();
    for (class, lat) in [("high", &mut high_lat), ("normal", &mut normal_lat)] {
        let mut c = Client::connect(addr).expect("connect");
        for program in &fg_corpus {
            match drive_prio_session(&mut c, program, class, &n, lat, None) {
                Ok(Some(fired)) => {
                    if fired != refs[*program] {
                        eprintln!(
                            "serve_load[priorities]: DIVERGENCE {class} program {program}: \
                             {} fired vs {} reference",
                            fired.len(),
                            refs[*program].len()
                        );
                        n.divergences.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(None) => unreachable!("foreground sessions run unflagged"),
                Err(e) => {
                    eprintln!("serve_load[priorities]: {class} {program}: {e}");
                    n.divergences.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    // Cancellation + protocol checks, still under the batch load.
    if let Err(e) = cancel_resumability(addr, "blocks", &refs["blocks"]) {
        eprintln!("serve_load[priorities]: DIVERGENCE cancel: {e}");
        n.divergences.fetch_add(1, Ordering::Relaxed);
    }
    if let Err(e) = clamped_and_prio_check(addr) {
        eprintln!("serve_load[priorities]: DIVERGENCE clamped/prio: {e}");
        n.divergences.fetch_add(1, Ordering::Relaxed);
    }

    stop.store(1, Ordering::Relaxed);
    for t in background {
        t.join().expect("batch thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let mut shut = Client::connect(addr).expect("connect");
    shut.shutdown().expect("shutdown").expect_ok().expect("ok");
    handle.join().expect("server join");

    let mut batch = batch_lat.lock().unwrap().clone();
    let sort = |v: &mut Vec<f64>| v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sort(&mut batch);
    sort(&mut high_lat);
    sort(&mut normal_lat);
    let p = |v: &[f64]| (percentile(v, 0.50), percentile(v, 0.99));
    let (high_p50, high_p99) = p(&high_lat);
    let (normal_p50, normal_p99) = p(&normal_lat);
    let (batch_p50, batch_p99) = p(&batch);
    let mut failures = n.divergences.load(Ordering::Relaxed);
    let inverted = high_p99 >= batch_p99;
    if inverted {
        eprintln!(
            "serve_load[priorities]: GATE FAILURE high p99 {high_p99:.2}ms >= \
             batch p99 {batch_p99:.2}ms"
        );
        failures += 1;
    }

    let sessions = n.sessions.load(Ordering::Relaxed);
    let commands = n.commands.load(Ordering::Relaxed);
    let busy = n.busy_retries.load(Ordering::Relaxed);
    let divergences = n.divergences.load(Ordering::Relaxed);
    println!("== serve_load [priorities] ==");
    println!(
        "sessions {sessions}  commands {commands}  busy_retries {busy}  elapsed {elapsed:.2}s"
    );
    println!(
        "RUN latency ms: high p50 {high_p50:.2} p99 {high_p99:.2}  \
         normal p50 {normal_p50:.2} p99 {normal_p99:.2}  \
         batch p50 {batch_p50:.2} p99 {batch_p99:.2}"
    );
    println!("divergences: {divergences}  priority inversion: {inverted}");

    let row = format!(
        "{{\"mode\": \"priorities\",\n   \
         \"config\": {{\"batch_connections\": {BATCH_CONNS}, \"workers\": 2, \
         \"run_slice_cycles\": {RUN_SLICE}, \"matcher\": \"psm\"}},\n   \
         \"totals\": {{\"sessions\": {sessions}, \"commands\": {commands}, \
         \"busy_retries\": {busy}, \"elapsed_s\": {elapsed:.3}}},\n   \
         \"latency_ms\": {{\"high_p50\": {high_p50:.3}, \"high_p99\": {high_p99:.3}, \
         \"normal_p50\": {normal_p50:.3}, \"normal_p99\": {normal_p99:.3}, \
         \"batch_p50\": {batch_p50:.3}, \"batch_p99\": {batch_p99:.3}}},\n   \
         \"priority_inversion\": {inverted},\n   \
         \"divergences\": {divergences}}}"
    );
    (row, failures)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };
    let corpus = ["blocks", "fibonacci", "monkey", "hanoi", "rubik"];
    if opts.kill_recover {
        let divergences = kill_recover_main(&opts, &corpus);
        if divergences > 0 {
            std::process::exit(1);
        }
        return;
    }

    eprintln!("serve_load: computing reference firing logs (direct psm engines)...");
    let refs = Arc::new(references(&opts.programs, &corpus));

    if opts.priorities {
        let (row, failures) = priorities_phase(&opts, &corpus, &refs);
        let json = format!("{{\"rows\": [\n  {row}\n]}}\n");
        std::fs::write(&opts.json, json).expect("write json");
        eprintln!("serve_load: wrote {}", opts.json.display());
        if failures > 0 {
            eprintln!("serve_load: {failures} failures");
            std::process::exit(1);
        }
        return;
    }

    let mut rows: Vec<String> = Vec::new();
    let mut total_divergences = 0u64;
    let fronts: &[FrontEnd] = match opts.front_end.as_str() {
        "threads" => &[FrontEnd::Threads],
        "reactor" => &[FrontEnd::Reactor],
        _ => &[FrontEnd::Threads, FrontEnd::Reactor],
    };
    for fe in fronts {
        let (row, div) = closed_loop(&opts, &corpus, &refs, *fe);
        rows.push(row);
        total_divergences += div;
    }

    if opts.high_concurrency {
        match backend_bin(&opts) {
            Ok(bin) => {
                match hc_phase(&opts, &bin) {
                    Ok((row, div)) => {
                        rows.push(row);
                        total_divergences += div;
                    }
                    Err(e) => {
                        eprintln!("serve_load[reactor-hc]: FAILED: {e}");
                        rows.push(format!(
                            "{{\"mode\": \"reactor-hc\", \"error\": \"{}\"}}",
                            e.replace('"', "'")
                        ));
                        total_divergences += 1;
                    }
                }
                match routed_phase(&opts, &corpus, &refs, &bin) {
                    Ok((row, div)) => {
                        rows.push(row);
                        total_divergences += div;
                    }
                    Err(e) => {
                        eprintln!("serve_load[routed]: FAILED: {e}");
                        rows.push(format!(
                            "{{\"mode\": \"routed\", \"error\": \"{}\"}}",
                            e.replace('"', "'")
                        ));
                        total_divergences += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("serve_load: {e}");
                total_divergences += 1;
            }
        }
    }

    let json = format!("{{\"rows\": [\n  {}\n]}}\n", rows.join(",\n  "));
    std::fs::write(&opts.json, json).expect("write json");
    eprintln!("serve_load: wrote {}", opts.json.display());

    if total_divergences > 0 {
        eprintln!("serve_load: {total_divergences} divergences");
        std::process::exit(1);
    }
}
