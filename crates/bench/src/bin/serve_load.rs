//! `serve_load` — closed-loop load generator for the serve layer.
//!
//! Spins up an in-process server with a PSM session pool, then drives N
//! concurrent connections for M iterations each. One iteration opens a
//! session on the next program from the corpus rotation (`programs/*.ops`
//! plus the generated Rubik workload), runs it to halt/quiescence in
//! chunked `RUN` commands, fetches the firing log, checks it against a
//! direct in-process engine run of the same program (differential check:
//! the server must not change semantics), and closes.
//!
//! Backpressure is exercised two ways: the run queue is deliberately
//! smaller than the connection count, so closed-loop clients bounce off
//! `BUSY` and retry; and a dedicated saturation probe pipelines a burst of
//! `ASSERT`s at a wedged session without reading replies, which must
//! produce `OVERLOADED`.
//!
//! Prints a throughput/latency summary and writes `BENCH_serve.json`.
//!
//! `--kill-recover` switches to the durability gate: for every corpus
//! program on every matcher, a durable session is driven partway, killed
//! without `CLOSE` (the connection just vanishes), recovered from its
//! on-disk snapshot + change-log via `RESTORE`, and run to completion —
//! the recovered firing log must diff clean against an uninterrupted
//! direct-engine run. Any divergence exits nonzero.
//!
//! ```text
//! Usage: serve_load [--connections N] [--iterations M] [--workers W]
//!                   [--programs DIR] [--json PATH]
//!                   [--kill-recover] [--matchers vs1,vs2,lisp,psm]
//! ```

use serve::{Client, ClientReply, Registry, ServeConfig, Server, Session};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    connections: usize,
    iterations: usize,
    workers: usize,
    programs: PathBuf,
    json: PathBuf,
    kill_recover: bool,
    matchers: Vec<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        connections: 32,
        iterations: 2,
        workers: 4,
        programs: PathBuf::from("programs"),
        json: PathBuf::from("BENCH_serve.json"),
        kill_recover: false,
        matchers: ["vs1", "vs2", "lisp", "psm"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--connections" => o.connections = val()?.parse().map_err(|e| format!("{e}"))?,
            "--iterations" => o.iterations = val()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => o.workers = val()?.parse().map_err(|e| format!("{e}"))?,
            "--programs" => o.programs = PathBuf::from(val()?),
            "--json" => o.json = PathBuf::from(val()?),
            "--kill-recover" => o.kill_recover = true,
            "--matchers" => o.matchers = val()?.split(',').map(|s| s.to_string()).collect(),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

#[derive(Default)]
struct Counters {
    sessions: AtomicU64,
    commands: AtomicU64,
    cycles: AtomicU64,
    busy_retries: AtomicU64,
    divergences: AtomicU64,
}

/// Sends a request, retrying on backpressure (the closed-loop client's
/// contract: a `BUSY` reply means "come back", not "give up").
fn req_retry(c: &mut Client, line: &str, n: &Counters) -> std::io::Result<ClientReply> {
    loop {
        let reply = c.request(line)?;
        if reply.is_backpressure() {
            n.busy_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }
        n.commands.fetch_add(1, Ordering::Relaxed);
        return Ok(reply);
    }
}

fn field<'a>(payload: &'a str, key: &str) -> Option<&'a str> {
    payload
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// One session lifecycle; returns this session's firing log.
fn drive_session(
    c: &mut Client,
    program: &str,
    n: &Counters,
    lat: &mut Vec<f64>,
) -> Result<Vec<String>, String> {
    let t0 = Instant::now();
    c.open(program, Some("psm"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    lat.push(t0.elapsed().as_secs_f64() * 1e3);
    n.commands.fetch_add(1, Ordering::Relaxed);
    n.sessions.fetch_add(1, Ordering::Relaxed);
    for _ in 0..200 {
        let t0 = Instant::now();
        let payload = req_retry(c, "RUN 2000", n)
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        lat.push(t0.elapsed().as_secs_f64() * 1e3);
        let cycles: u64 = field(&payload, "cycles")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad RUN reply `{payload}`"))?;
        n.cycles.fetch_add(cycles, Ordering::Relaxed);
        match field(&payload, "reason") {
            Some("halt") | Some("quiescent") | Some("budget") => break,
            Some("limit") | Some("settled") => continue,
            other => return Err(format!("bad reason {other:?} in `{payload}`")),
        }
    }
    let fired = req_retry(c, "FIRED?", n)
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    req_retry(c, "CLOSE", n)
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    Ok(fired)
}

/// Reference firing logs from direct in-process engine runs — the ground
/// truth the served sessions are diffed against.
fn references(programs: &Path, names: &[&str]) -> HashMap<String, Vec<String>> {
    let reg = Registry::with_builtins(Some(programs));
    let mut map = HashMap::new();
    for name in names {
        let spec = reg.get(name).unwrap_or_else(|| panic!("missing {name}"));
        let mut eng = spec
            .build(serve::matcher_kind("psm").unwrap(), Default::default())
            .expect("build reference engine");
        eng.run(400_000).expect("reference run");
        let lines: Vec<String> = eng
            .fired_log()
            .iter()
            .map(|(p, tags)| {
                let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
                format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
            })
            .collect();
        map.insert(name.to_string(), lines);
    }
    map
}

/// Pipelines a burst of commands at a wedged session without draining
/// replies, forcing the per-session inbox over its depth. Returns how many
/// `OVERLOADED` replies came back.
fn saturation_probe(addr: std::net::SocketAddr) -> Result<u64, String> {
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    let spin = "(literalize c n)
                (p spin (c ^n <n>) --> (modify 1 ^n (compute <n> + 1)))";
    c.open_source(spin, Some("vs2"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    c.assert_wme("c ^n 0").map_err(|e| e.to_string())?.unwrap();
    // Wedge the session's worker on a long run, then flood the inbox.
    let burst = 96;
    c.send_line("RUN 10000").map_err(|e| e.to_string())?;
    for i in 0..burst {
        c.send_line(&format!("ASSERT c ^n {i}"))
            .map_err(|e| e.to_string())?;
    }
    let mut overloaded = 0;
    for _ in 0..burst + 1 {
        if matches!(
            c.read_reply().map_err(|e| e.to_string())?,
            ClientReply::Overloaded(_)
        ) {
            overloaded += 1;
        }
    }
    let _ = c.close();
    Ok(overloaded)
}

/// Runs one program to completion on a direct in-process engine and
/// returns its firing log lines — the ground truth for recovery diffs.
fn reference_fired(reg: &Registry, program: &str, matcher: &str) -> Result<Vec<String>, String> {
    let spec = reg
        .get(program)
        .ok_or_else(|| format!("unknown program `{program}`"))?;
    let mut eng = spec
        .build(serve::matcher_kind(matcher)?, Default::default())
        .map_err(|e| e.to_string())?;
    eng.run(400_000).map_err(|e| e.to_string())?;
    Ok(eng
        .fired_log()
        .iter()
        .map(|(p, tags)| {
            let t: Vec<String> = tags.iter().map(|x| x.to_string()).collect();
            format!("{} {}", eng.prog.prod_name(*p), t.join(" "))
        })
        .collect())
}

/// One kill-recover check: drive a durable session partway in small `RUN`
/// chunks, vanish without `CLOSE`, recover from the on-disk snapshot +
/// change-log via `RESTORE`, finish the run, and diff the recovered firing
/// log against `reference`. Returns an error describing the divergence, if
/// any.
fn kill_recover_one(
    programs: &Path,
    program: &str,
    matcher: &str,
    reference: &[String],
) -> Result<(), String> {
    let state = std::env::temp_dir().join(format!(
        "serve-kr-{}-{program}-{matcher}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state);
    let cfg = ServeConfig {
        workers: 2,
        durability_dir: Some(state.clone()),
        // Low water mark: mid-run checkpoints *and* log-tail replay both
        // get exercised on every program.
        checkpoint_every: 32,
        programs_dir: Some(programs.to_path_buf()),
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg)
        .map_err(|e| e.to_string())?
        .spawn();

    {
        // The doomed session: partial progress in small chunks, then the
        // connection is dropped with no CLOSE — the simulated kill. Every
        // completed command's records are already flushed to disk.
        let mut c = Client::connect(handle.addr).map_err(|e| e.to_string())?;
        c.open(program, Some(matcher))
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        for _ in 0..3 {
            let payload = c
                .request("RUN 50")
                .map_err(|e| e.to_string())?
                .expect_ok()?;
            if field(&payload, "reason") != Some("limit") {
                break;
            }
        }
    }

    let snap = std::fs::read_to_string(Session::snap_path(&state, 1))
        .map_err(|e| format!("read snapshot: {e}"))?;
    let log = std::fs::read_to_string(Session::log_path(&state, 1))
        .map_err(|e| format!("read change log: {e}"))?;

    let mut c = Client::connect(handle.addr).map_err(|e| e.to_string())?;
    c.restore(program, Some(matcher), &format!("{snap}{log}"))
        .map_err(|e| e.to_string())?
        .expect_ok()?;
    for _ in 0..400 {
        let payload = c
            .request("RUN 2000")
            .map_err(|e| e.to_string())?
            .expect_ok()?;
        match field(&payload, "reason") {
            Some("limit") | Some("settled") => continue,
            Some(_) => break,
            None => return Err(format!("bad RUN reply `{payload}`")),
        }
    }
    let fired = c
        .request("FIRED?")
        .map_err(|e| e.to_string())?
        .expect_lines()?;
    let _ = c.close();
    let mut shut = Client::connect(handle.addr).map_err(|e| e.to_string())?;
    let _ = shut.shutdown();
    handle.join().map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&state);

    if fired != reference {
        let first_diff = fired
            .iter()
            .zip(reference.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(fired.len().min(reference.len()));
        return Err(format!(
            "{} recovered firings vs {} reference (first diff at {})",
            fired.len(),
            reference.len(),
            first_diff
        ));
    }
    Ok(())
}

/// The `--kill-recover` durability gate; returns the number of divergences.
fn kill_recover_main(opts: &Opts, corpus: &[&str]) -> u64 {
    let reg = Registry::with_builtins(Some(&opts.programs));
    let mut divergences = 0u64;
    let mut checks = 0u64;
    let t0 = Instant::now();
    for program in corpus {
        for matcher in &opts.matchers {
            checks += 1;
            let outcome = reference_fired(&reg, program, matcher)
                .and_then(|r| kill_recover_one(&opts.programs, program, matcher, &r));
            match outcome {
                Ok(()) => eprintln!("serve_load: kill-recover {program}/{matcher}: clean"),
                Err(e) => {
                    eprintln!("serve_load: DIVERGENCE {program}/{matcher}: {e}");
                    divergences += 1;
                }
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!("== serve_load --kill-recover ==");
    println!(
        "checks {checks} ({} programs x {} matchers)  divergences {divergences}  elapsed {elapsed:.2}s",
        corpus.len(),
        opts.matchers.len()
    );
    let json = format!(
        "{{\n  \"mode\": \"kill-recover\",\n  \"checks\": {checks},\n  \
         \"divergences\": {divergences},\n  \"elapsed_s\": {elapsed:.3}\n}}\n"
    );
    if let Err(e) = std::fs::write(&opts.json, json) {
        eprintln!("serve_load: write {}: {e}", opts.json.display());
    }
    divergences
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };
    let corpus = ["blocks", "fibonacci", "monkey", "hanoi", "rubik"];
    if opts.kill_recover {
        let divergences = kill_recover_main(&opts, &corpus);
        if divergences > 0 {
            std::process::exit(1);
        }
        return;
    }
    eprintln!(
        "serve_load: {} connections x {} iterations over {:?}",
        opts.connections, opts.iterations, corpus
    );

    eprintln!("serve_load: computing reference firing logs (direct psm engines)...");
    let refs = Arc::new(references(&opts.programs, &corpus));

    // Run queue deliberately smaller than the connection count so the
    // closed-loop clients exercise BUSY-and-retry under saturation.
    let cfg = ServeConfig {
        workers: opts.workers,
        queue_depth: 8,
        run_queue_cap: (opts.connections / 2).max(4),
        max_cycles_per_run: 10_000,
        matcher: serve::matcher_kind("psm").unwrap(),
        programs_dir: Some(opts.programs.clone()),
        ..ServeConfig::default()
    };
    let run_queue_cap = cfg.run_queue_cap;
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind").spawn();
    let addr = handle.addr;

    let n = Arc::new(Counters::default());
    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..opts.connections)
        .map(|ci| {
            let n = n.clone();
            let refs = refs.clone();
            let latencies = latencies.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut c = Client::connect(addr).expect("connect");
                for it in 0..opts.iterations {
                    let program = corpus[(ci + it) % corpus.len()];
                    match drive_session(&mut c, program, &n, &mut lat) {
                        Ok(fired) => {
                            if fired != refs[program] {
                                eprintln!(
                                    "serve_load: DIVERGENCE conn {ci} iter {it} program {program}: \
                                     {} fired vs {} reference",
                                    fired.len(),
                                    refs[program].len()
                                );
                                n.divergences.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("serve_load: conn {ci} iter {it} {program}: {e}");
                            n.divergences.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(lat);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let overloaded = match saturation_probe(addr) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("serve_load: saturation probe: {e}");
            0
        }
    };

    let mut shut = Client::connect(addr).expect("connect");
    shut.shutdown().expect("shutdown").expect_ok().expect("ok");
    handle.join().expect("server join");

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p90, p99) = (
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        percentile(&lat, 0.99),
    );
    let max_lat = lat.last().copied().unwrap_or(0.0);
    let sessions = n.sessions.load(Ordering::Relaxed);
    let commands = n.commands.load(Ordering::Relaxed);
    let cycles = n.cycles.load(Ordering::Relaxed);
    let busy = n.busy_retries.load(Ordering::Relaxed);
    let divergences = n.divergences.load(Ordering::Relaxed);

    println!("== serve_load ==");
    println!("sessions {sessions}  commands {commands}  cycles {cycles}  elapsed {elapsed:.2}s");
    println!(
        "throughput: {:.0} commands/s, {:.0} cycles/s, {:.1} sessions/s",
        commands as f64 / elapsed,
        cycles as f64 / elapsed,
        sessions as f64 / elapsed
    );
    println!("latency ms: p50 {p50:.2}  p90 {p90:.2}  p99 {p99:.2}  max {max_lat:.2}");
    println!("backpressure: {busy} busy/overloaded retries, {overloaded} overloaded (probe)");
    println!("divergences: {divergences}");

    let json = format!(
        "{{\n  \"config\": {{\"connections\": {}, \"iterations\": {}, \"workers\": {}, \
         \"queue_depth\": 8, \"run_queue_cap\": {}, \"matcher\": \"psm\"}},\n  \
         \"totals\": {{\"sessions\": {sessions}, \"commands\": {commands}, \"cycles\": {cycles}, \
         \"elapsed_s\": {elapsed:.3}}},\n  \
         \"throughput\": {{\"commands_per_s\": {:.1}, \"cycles_per_s\": {:.1}, \
         \"sessions_per_s\": {:.2}}},\n  \
         \"latency_ms\": {{\"p50\": {p50:.3}, \"p90\": {p90:.3}, \"p99\": {p99:.3}, \
         \"max\": {max_lat:.3}}},\n  \
         \"backpressure\": {{\"busy_retries\": {busy}, \"overloaded_probe\": {overloaded}}},\n  \
         \"divergences\": {divergences}\n}}\n",
        opts.connections,
        opts.iterations,
        opts.workers,
        run_queue_cap,
        commands as f64 / elapsed,
        cycles as f64 / elapsed,
        sessions as f64 / elapsed,
    );
    std::fs::write(&opts.json, json).expect("write json");
    eprintln!("serve_load: wrote {}", opts.json.display());

    if divergences > 0 {
        std::process::exit(1);
    }
}
