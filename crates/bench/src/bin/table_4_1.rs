//! Table 4-1: uniprocessor versions — vs1 (list memories) vs vs2 (hash
//! memories), plus total WM-changes and node activations, and the §5
//! average-task-length figure.
//!
//! Run with: `cargo run --release -p bench --bin table_4_1`

use bench::{header, programs, secs, timed_run};
use workloads::MatcherChoice;

fn main() {
    header("Table 4-1: Uniprocessor versions (paper: Microvax-II seconds; here: host seconds)");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12} {:>13} {:>14}",
        "PROGRAM", "VS1 (s)", "VS2 (s)", "vs1/vs2", "WM-changes", "activations", "avg-task(op)"
    );
    for (name, make) in programs() {
        let w = make();
        let (t1, _e1) = timed_run(&w, &MatcherChoice::Vs1).expect("vs1 run");
        let w = make();
        let (t2, e2) = timed_run(&w, &MatcherChoice::Vs2).expect("vs2 run");
        let stats = e2.match_stats();
        // §5: "average length of the individual tasks ... varies between
        // 100-700 machine instructions"; we report the cost-model units.
        let trace = bench::record_trace(&make()).expect("trace");
        let avg = trace.avg_task_cost(&psm::trace::CostModel::default());
        println!(
            "{:<10} {:>10} {:>10} {:>8.2} {:>12} {:>13} {:>14.0}",
            name,
            secs(t1),
            secs(t2),
            t1.as_secs_f64() / t2.as_secs_f64(),
            stats.wme_changes,
            stats.activations,
            avg,
        );
    }
    println!();
    println!("(paper: Weaver 101.5/85.8s, Rubik 235.2/96.9s, Tourney 323.7/93.5s;");
    println!(" expected shape: vs2 <= vs1 everywhere, dramatically for Tourney)");
}
