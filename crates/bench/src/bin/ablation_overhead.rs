//! Scheduling-overhead ablation — the §1/§3 granularity argument.
//!
//! "A consequence of parallelizing a highly-optimized implementation is
//! that one must be very careful about overheads, else the overheads may
//! nullify the speed-up." This sweep varies the per-task scheduling
//! overhead (queue lock hold time) and reports the 1+13 speed-up: as
//! overhead approaches the average task length, speed-up collapses — the
//! quantitative version of the paper's fine-granularity warning.
//!
//! Run with: `cargo run --release -p bench --bin ablation_overhead`

use bench::{header, programs, record_trace};
use multimax::{simulate, SimConfig};
use psm::line::LockScheme;
use psm::trace::CostModel;

const OVERHEADS: [u32; 6] = [2, 8, 16, 32, 64, 128];

fn main() {
    header("Scheduling-overhead ablation: 1+13 speed-up vs per-task queue overhead (8 queues)");
    print!("{:<10} {:>10}", "PROGRAM", "avg task");
    for o in OVERHEADS {
        print!(" {:>8}", format!("ovh {o}"));
    }
    println!();
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let avg = trace.avg_task_cost(&CostModel::default());
        print!("{:<10} {:>10.0}", name, avg);
        for o in OVERHEADS {
            let cost = CostModel {
                sched_overhead: o,
                ..CostModel::default()
            };
            let mut uni_cfg = SimConfig::new(1, 1, LockScheme::Simple);
            uni_cfg.cost = cost;
            let mut par_cfg = SimConfig::new(13, 8, LockScheme::Simple);
            par_cfg.cost = cost;
            let uni = simulate(&trace, &uni_cfg);
            let par = simulate(&trace, &par_cfg);
            print!(" {:>8.2}", uni.match_time as f64 / par.match_time as f64);
        }
        println!();
    }
    println!();
    println!("(expected shape: Weaver/Rubik speed-up decays monotonically as the");
    println!(" scheduling overhead grows toward the ~80-instruction average task");
    println!(" length — fine-grained parallelism only pays when overheads stay");
    println!(" small. Tourney's ratio *rises* with overhead because the overhead");
    println!(" inflates its uniprocessor baseline while its parallel time stays");
    println!(" pinned on the serial hash line)");
}
