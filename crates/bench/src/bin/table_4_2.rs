//! Table 4-2: number of tokens examined in the opposite memory, linear
//! (vs1) vs hash (vs2) memories, for left and right activations — computed
//! over activations whose opposite memory is non-empty, as in the paper.
//!
//! Run with: `cargo run --release -p bench --bin table_4_2`

use bench::{header, programs, timed_run};
use workloads::MatcherChoice;

fn main() {
    header("Table 4-2: Tokens examined in opposite memory (per non-empty activation)");
    println!(
        "{:<10} | {:>9} {:>9} | {:>9} {:>9}",
        "", "left", "", "right", ""
    );
    println!(
        "{:<10} | {:>9} {:>9} | {:>9} {:>9}",
        "PROGRAM", "lin mem", "hash mem", "lin mem", "hash mem"
    );
    for (name, make) in programs() {
        let (_t, e1) = timed_run(&make(), &MatcherChoice::Vs1).expect("vs1");
        let (_t, e2) = timed_run(&make(), &MatcherChoice::Vs2).expect("vs2");
        let s1 = e1.match_stats();
        let s2 = e2.match_stats();
        println!(
            "{:<10} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
            name,
            s1.avg_opp_left(),
            s2.avg_opp_left(),
            s1.avg_opp_right(),
            s2.avg_opp_right(),
        );
    }
    println!();
    println!("(paper: Weaver 10.1→7.7 / 5.2→1.0, Rubik 31.0→3.8 / 1.6→1.8,");
    println!("        Tourney 47.6→5.9 / 270.1→23.3;");
    println!(" expected shape: hash ≤ linear, largest reduction for Tourney)");
}
