//! §4.2's closing experiment: "By modifying two such productions using
//! domain specific knowledge, we could increase the speed-up achieved using
//! 1+13 processes from 2.7-fold to 5.1-fold."
//!
//! Run with: `cargo run --release -p bench --bin tourney_fix`

use bench::{header, record_trace, sim, tourney_bench, tourney_fixed_bench};
use psm::line::LockScheme;

fn main() {
    header(
        "Tourney fix: cross-product productions rewritten with domain knowledge (1+13, 8 queues)",
    );
    for (label, w) in [
        ("pathological", tourney_bench()),
        ("fixed", tourney_fixed_bench()),
    ] {
        let trace = record_trace(&w).expect("trace");
        let uni = sim(&trace, 1, 1, LockScheme::Simple);
        let r = sim(&trace, 13, 8, LockScheme::Simple);
        println!(
            "{:<14} speed-up {:.2}  (uniproc {:.2} Mop, hash-line contention L {:.1} / R {:.1})",
            label,
            uni.match_time as f64 / r.match_time as f64,
            uni.match_time as f64 / 1.0e6,
            r.avg_hash_left(),
            r.avg_hash_right(),
        );
    }
    println!();
    println!("(paper: 2.7-fold → 5.1-fold)");
}
