//! The hardware task scheduler — the paper's future work, simulated.
//!
//! §3.2: "Gupta \[4\] proposed a hardware task scheduler for scheduling the
//! fine-grained tasks. So far we have not implemented the hardware
//! scheduler, and in this paper we present results only for the case when
//! one or more software task queues are used."
//!
//! We can implement it — in the simulator: a hardware scheduler makes
//! enqueue/dequeue effectively free (single-cycle push/pop against a
//! hardware FIFO, no lock). This binary compares, at 1+13 processes:
//!
//!   * 1 software queue (Table 4-5's configuration),
//!   * 8 software queues (Table 4-6's),
//!   * 1 hardware queue (scheduling overhead ≈ 1 instruction).
//!
//! Run with: `cargo run --release -p bench --bin hw_scheduler`

use bench::{header, programs, record_trace};
use multimax::{simulate, SimConfig};
use psm::line::LockScheme;
use psm::trace::CostModel;

fn main() {
    header("Hardware task scheduler ablation (1+13 processes, simple line locks)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "PROGRAM", "1 sw queue", "8 sw queues", "1 hw queue", "hw contention"
    );
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let uni = simulate(&trace, &SimConfig::new(1, 1, LockScheme::Simple));

        let sw1 = simulate(&trace, &SimConfig::new(13, 1, LockScheme::Simple));
        let sw8 = simulate(&trace, &SimConfig::new(13, 8, LockScheme::Simple));

        let mut hw = SimConfig::new(13, 1, LockScheme::Simple);
        hw.cost = CostModel {
            sched_overhead: 2,
            ..CostModel::default()
        };
        // The uniprocessor baseline must use the same cost model.
        let mut hw_uni_cfg = SimConfig::new(1, 1, LockScheme::Simple);
        hw_uni_cfg.cost = hw.cost;
        let hw_uni = simulate(&trace, &hw_uni_cfg);
        let hw13 = simulate(&trace, &hw);

        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>14.2}",
            name,
            uni.match_time as f64 / sw1.match_time as f64,
            uni.match_time as f64 / sw8.match_time as f64,
            hw_uni.match_time as f64 / hw13.match_time as f64,
            hw13.avg_queue_spins(),
        );
    }
    println!();
    println!("(expected shape: for Weaver/Rubik the hardware scheduler beats the");
    println!(" 8-software-queue speed-up with a single queue, validating the paper's");
    println!(" diagnosis that scheduling overhead, not queue semantics, was the");
    println!(" bottleneck. Tourney moves the other way: its bottleneck is the hash");
    println!(" line, so cheaper scheduling only shrinks the uniprocessor baseline");
    println!(" the speed-up is measured against)");
}
