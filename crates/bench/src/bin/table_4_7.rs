//! Table 4-7: contention for the centralized task queue — average number of
//! times a process spins before acquiring the queue lock, single queue.
//!
//! Run with: `cargo run --release -p bench --bin table_4_7`

use bench::{header, programs, record_trace, sim, PROC_COLUMNS};
use psm::line::LockScheme;

fn main() {
    header("Table 4-7: Contention for the centralized task queue (avg spins before acquisition)");
    print!("{:<10}", "PROGRAM");
    for p in PROC_COLUMNS {
        print!(" {:>7}", format!("1+{p}"));
    }
    println!("   (single queue)");
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        print!("{:<10}", name);
        for p in PROC_COLUMNS {
            let r = sim(&trace, p, 1, LockScheme::Simple);
            print!(" {:>7.2}", r.avg_queue_spins());
        }
        println!();
    }
    println!();
    // The drop with 8 queues, quoted in §4.2.
    println!("With 8 queues at 1+13 (paper: 4.85 / 6.12 / 4.75):");
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let r = sim(&trace, 13, 8, LockScheme::Simple);
        println!("  {:<10} {:.2}", name, r.avg_queue_spins());
    }
    println!();
    println!("(paper single queue: Weaver 1.03/2.68/6.31/11.58/20.05/24.62,");
    println!("        Rubik 1.01/2.63/5.92/10.58/22.66/26.89,");
    println!("        Tourney 1.00/1.57/2.53/3.94/7.22/8.93;");
    println!(" expected shape: grows with processes; Tourney least (fewer, longer tasks);");
    println!(" drops sharply with 8 queues)");
}
