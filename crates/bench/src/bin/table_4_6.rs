//! Table 4-6: speed-up with multiple task queues ({1,2,4,8,8,8} per
//! process column) and simple hash-table locks.
//!
//! Run with: `cargo run --release -p bench --bin table_4_6`

use bench::{header, programs, record_trace, sim, PROC_COLUMNS, QUEUE_COLUMNS};
use psm::line::LockScheme;

fn main() {
    header(
        "Table 4-6: Speed-up, multiple task queues, simple hash-table locks (simulated Multimax)",
    );
    print!("{:<10} {:>12}", "PROGRAM", "uniproc(Mop)");
    for (p, q) in PROC_COLUMNS.iter().zip(QUEUE_COLUMNS.iter()) {
        print!(" {:>9}", format!("1+{p}/{q}q"));
    }
    println!();
    for (name, make) in programs() {
        let trace = record_trace(&make()).expect("trace");
        let uni = sim(&trace, 1, 1, LockScheme::Simple);
        print!("{:<10} {:>12.2}", name, uni.match_time as f64 / 1.0e6);
        for (&p, &q) in PROC_COLUMNS.iter().zip(QUEUE_COLUMNS.iter()) {
            let r = sim(&trace, p, q, LockScheme::Simple);
            print!(" {:>9.2}", uni.match_time as f64 / r.match_time as f64);
        }
        println!();
    }
    println!();
    println!("(paper: Weaver 1.02/2.88/4.51/5.80/7.56/8.15,");
    println!("        Rubik  1.07/3.93/6.41/8.49/10.66/11.42,");
    println!("        Tourney 1.12/2.02/2.17/2.33/2.47/2.30;");
    println!(" expected shape: multiple queues lift Weaver/Rubik well past Table 4-5;");
    println!(" Tourney stays flat — its bottleneck is the hash line, not the queue)");
}
