//! Cross-matcher match-performance suite.
//!
//! Runs Weaver, Rubik, and Tourney on all five matchers (vs1, vs2, lisp,
//! psm-e, col) and reports per-change and per-cycle wall times plus heap
//! allocation counts, writing `BENCH_match.json` — the seed point for the
//! repo's match-perf trajectory (EXPERIMENTS.md tracks before/after numbers
//! per optimization PR).
//!
//! Run with: `cargo run --release -p bench --bin match_perf`
//! CI smoke:  `cargo run --release -p bench --bin match_perf -- --smoke`
//!
//! The batched-replay section records the exact WME-change stream a vs2 run
//! pushes through the match, then replays it re-chunked into batches of 64
//! into fresh vs2 and col matchers — the collection-oriented workload the
//! columnar matcher is built for. Under `--smoke` it gates on col beating
//! vs2 per-change on Weaver at batch-64 with no more allocations per change;
//! rows land in `BENCH_match.json` under `"col_batch"`.
//!
//! `--profile` adds the observability pass: every workload x matcher pair is
//! re-run twice — metrics disabled (baseline) and enabled — reporting the
//! overhead of the obs layer and the top hottest join nodes per pair (named
//! by owning production), appended to `BENCH_match.json` under `"profile"`.
//! For col it also reports the `col_bucket_scan_len` histogram: how many
//! entries each bucket scan examined, the dial that tells whether the value
//! index is actually partitioning the memories. Under `--smoke` the pass
//! gates on allocs/change ratio <= 1.05 and on every histogram snapshot
//! validating.

use engine::EngineBuilder;
use ops5::{ChangeBatch, CsChange, MatchStats, Matcher, QuiesceReport, WmeChange};
use rete::network::Network;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use workloads::{rubik, tourney, weaver, MatcherChoice, Workload};

/// Forwarding allocator that counts allocations and allocated bytes so the
/// suite can report match-loop allocation pressure, not just wall time.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

struct Row {
    program: &'static str,
    matcher: &'static str,
    wall_s: f64,
    cycles: u64,
    changes: u64,
    per_change_us: f64,
    per_cycle_us: f64,
    join_acts: u64,
    null_acts: u64,
    allocs: u64,
    alloc_bytes: u64,
    allocs_per_change: f64,
}

fn benchmark(program: &'static str, w: &Workload, choice: &MatcherChoice) -> Row {
    // Build (parse + compile + initial WM) outside the measured window: the
    // suite measures the match loop, not the front end.
    let mut eng = workloads::build_engine(w, choice).expect("build engine");
    let (a0, b0) = alloc_snapshot();
    let started = Instant::now();
    let res = eng.run(w.max_cycles).expect("run");
    let wall = started.elapsed();
    let (a1, b1) = alloc_snapshot();
    if let Err(e) = (w.validate)(&eng) {
        panic!("{program} failed validation under {}: {e}", choice.label());
    }
    let stats = eng.match_stats();
    let changes = stats.wme_changes.max(1);
    let cycles = res.cycles.max(1);
    let allocs = a1 - a0;
    Row {
        program,
        matcher: choice.label(),
        wall_s: wall.as_secs_f64(),
        cycles: res.cycles,
        changes: stats.wme_changes,
        per_change_us: wall.as_secs_f64() * 1e6 / changes as f64,
        per_cycle_us: wall.as_secs_f64() * 1e6 / cycles as f64,
        join_acts: stats.join_activations,
        null_acts: stats.null_activations,
        allocs,
        alloc_bytes: b1 - b0,
        allocs_per_change: allocs as f64 / changes as f64,
    }
}

/// One rete-configuration measurement: Weaver on vs2 under the given network
/// compile options, capturing network node counts and join/null counters.
struct ReteRow {
    config: &'static str,
    options: rete::NetworkOptions,
    joins: usize,
    shared_prefixes: usize,
    memory_nodes: usize,
    join_acts: u64,
    null_acts: u64,
    null_skipped: u64,
    wall_s: f64,
}

fn rete_config_row(w: &Workload, config: &'static str, options: rete::NetworkOptions) -> ReteRow {
    let mut eng =
        workloads::build_engine_with(w, &MatcherChoice::Vs2, Some(options)).expect("build engine");
    let summary = eng.network().summary();
    let started = Instant::now();
    eng.run(w.max_cycles).expect("run");
    let wall = started.elapsed();
    if let Err(e) = (w.validate)(&eng) {
        panic!("rete config {config} failed validation: {e}");
    }
    let s = eng.match_stats();
    ReteRow {
        config,
        options,
        joins: summary.joins,
        shared_prefixes: summary.shared_prefixes,
        memory_nodes: summary.memory_nodes,
        join_acts: s.join_activations,
        null_acts: s.null_activations,
        null_skipped: s.null_skipped,
        wall_s: wall.as_secs_f64(),
    }
}

/// Compares network compile configurations on Weaver and writes
/// `BENCH_rete.json`. Under `--smoke` this doubles as the acceptance gate
/// for sharing + unlinking: unlinking must strictly reduce null activations,
/// and the combined config must cut join activations by at least 20%.
fn rete_comparison(w: &Workload, smoke: bool) {
    bench::header("Rete network configurations (Weaver, vs2)");
    let configs = [
        (
            "baseline",
            rete::NetworkOptions {
                sharing: false,
                unlinking: false,
            },
        ),
        (
            "unlink",
            rete::NetworkOptions {
                sharing: false,
                unlinking: true,
            },
        ),
        (
            "share+unlink",
            rete::NetworkOptions {
                sharing: true,
                unlinking: true,
            },
        ),
    ];
    println!(
        "{:<13} {:>7} {:>8} {:>8} {:>12} {:>11} {:>12} {:>9}",
        "CONFIG", "joins", "shared", "mems", "join-acts", "null-acts", "null-skip", "wall(s)"
    );
    let rows: Vec<ReteRow> = configs
        .iter()
        .map(|(name, opts)| {
            let r = rete_config_row(w, name, *opts);
            println!(
                "{:<13} {:>7} {:>8} {:>8} {:>12} {:>11} {:>12} {:>9.3}",
                r.config,
                r.joins,
                r.shared_prefixes,
                r.memory_nodes,
                r.join_acts,
                r.null_acts,
                r.null_skipped,
                r.wall_s
            );
            r
        })
        .collect();

    let mut json = String::from("{\n  \"suite\": \"rete_configs\",\n  \"program\": \"Weaver\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"sharing\": {}, \"unlinking\": {}, \
             \"joins\": {}, \"shared_prefixes\": {}, \"memory_nodes\": {}, \
             \"join_activations\": {}, \"null_activations\": {}, \
             \"null_skipped\": {}, \"wall_s\": {:.6}}}{}\n",
            r.config,
            r.options.sharing,
            r.options.unlinking,
            r.joins,
            r.shared_prefixes,
            r.memory_nodes,
            r.join_acts,
            r.null_acts,
            r.null_skipped,
            r.wall_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rete.json", &json).expect("write BENCH_rete.json");
    println!();
    println!("wrote BENCH_rete.json ({} configs)", rows.len());

    let base = &rows[0];
    let unlink = &rows[1];
    let tuned = &rows[2];
    let join_cut = 1.0 - tuned.join_acts as f64 / base.join_acts.max(1) as f64;
    println!(
        "unlinking null activations: {} -> {} ({} skipped); sharing+unlinking join activations: {} -> {} ({:.1}% fewer)",
        base.null_acts,
        unlink.null_acts,
        unlink.null_skipped,
        base.join_acts,
        tuned.join_acts,
        100.0 * join_cut
    );
    if smoke {
        assert!(
            unlink.null_acts < base.null_acts,
            "unlinking must strictly reduce Weaver null activations ({} vs {})",
            unlink.null_acts,
            base.null_acts
        );
        assert!(
            join_cut >= 0.20,
            "sharing+unlinking must cut Weaver join activations by >= 20% (got {:.1}%)",
            100.0 * join_cut
        );
    }
}

/// Wrapper that logs every submitted change in order, then delegates — the
/// same recording trick as `benches/batching.rs`, so the replay section
/// measures the matchers on the exact post-annihilation stream a real run
/// produces rather than on synthetic batches.
struct Recorder {
    inner: Box<dyn Matcher>,
    log: Arc<Mutex<Vec<WmeChange>>>,
}

impl Matcher for Recorder {
    fn submit(&mut self, batch: &ChangeBatch) {
        self.log.lock().unwrap().extend(batch.iter().cloned());
        self.inner.submit(batch);
    }
    fn quiesce(&mut self) -> QuiesceReport {
        self.inner.quiesce()
    }
    fn stats(&self) -> MatchStats {
        self.inner.stats()
    }
    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
    fn name(&self) -> &'static str {
        "recorder"
    }
}

/// Runs a workload once under vs2 and returns the compiled network plus the
/// change stream the matcher actually saw.
fn record_stream(w: &Workload) -> (Arc<Network>, Vec<WmeChange>) {
    let log: Arc<Mutex<Vec<WmeChange>>> = Arc::default();
    let log2 = log.clone();
    let mut eng = EngineBuilder::from_source(&w.source)
        .expect("parse")
        .custom_matcher(move |net| {
            Box::new(Recorder {
                inner: rete::seq::boxed_vs2(net, rete::HashMemConfig::default()),
                log: log2,
            })
        })
        .build()
        .expect("build");
    for wme in &w.setup {
        let sets: Vec<(String, ops5::Value)> = wme
            .sets
            .iter()
            .map(|(a, v)| {
                let val = match v {
                    workloads::SetupVal::Sym(s) => eng.sym(s),
                    workloads::SetupVal::Int(i) => ops5::Value::Int(*i),
                };
                (a.clone(), val)
            })
            .collect();
        let refs: Vec<(&str, ops5::Value)> = sets.iter().map(|(a, v)| (a.as_str(), *v)).collect();
        eng.make_wme(&wme.class, &refs).expect("setup wme");
    }
    eng.run(w.max_cycles).expect("run");
    let stream = std::mem::take(&mut *log.lock().unwrap());
    (eng.network().clone(), stream)
}

/// Replays a stream in chunks of `batch` changes, quiescing after each, and
/// returns the total number of conflict-set changes the matcher emitted plus
/// a hash chained over the *folded* conflict-set state after every chunk —
/// the cross-matcher agreement check for the replay harness. Raw change
/// counts are not comparable across matchers at batch > 1: a set-at-a-time
/// matcher may never emit an instantiation that a change-at-a-time matcher
/// inserts and then removes within the same chunk. Folding is what the
/// engine observes, so per-chunk folded state is the equivalence that
/// matters.
fn replay(m: &mut dyn Matcher, stream: &[WmeChange], batch: usize) -> (usize, u64) {
    use std::collections::BTreeSet;
    use std::hash::{Hash, Hasher};
    let mut cs = 0;
    let mut state: BTreeSet<(ops5::ProdId, Vec<u64>)> = BTreeSet::new();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for chunk in stream.chunks(batch) {
        m.submit(&chunk.iter().cloned().collect::<ChangeBatch>());
        for c in m.quiesce().cs_changes {
            cs += 1;
            match c {
                CsChange::Insert(i) => {
                    state.insert(i.key());
                }
                CsChange::Remove(i) => {
                    state.remove(&i.key());
                }
            }
        }
        state.hash(&mut h);
    }
    (cs, h.finish())
}

/// One matcher's replay measurement at one batch size.
struct ColBatchRow {
    program: &'static str,
    matcher: &'static str,
    batch: usize,
    wall_s: f64,
    changes: u64,
    per_change_us: f64,
    allocs_per_change: f64,
    cs_changes: usize,
    fold_sig: u64,
}

const COL_BATCH: usize = 64;
const COL_REPS: usize = 5;

/// Measures one matcher replaying `stream` at `COL_BATCH`, best-of-`COL_REPS`
/// wall time. Allocation counts are deterministic per rep, so the last rep's
/// count stands for all of them.
fn col_batch_row(
    program: &'static str,
    matcher: &'static str,
    make: &dyn Fn() -> Box<dyn Matcher>,
    stream: &[WmeChange],
) -> ColBatchRow {
    let mut wall_s = f64::INFINITY;
    let mut allocs = 0u64;
    let mut cs_changes = 0usize;
    let mut fold_sig = 0u64;
    for _ in 0..COL_REPS {
        let mut m = make();
        let (a0, _) = alloc_snapshot();
        let started = Instant::now();
        (cs_changes, fold_sig) = replay(m.as_mut(), stream, COL_BATCH);
        wall_s = wall_s.min(started.elapsed().as_secs_f64());
        let (a1, _) = alloc_snapshot();
        allocs = a1 - a0;
    }
    let changes = stream.len().max(1) as u64;
    ColBatchRow {
        program,
        matcher,
        batch: COL_BATCH,
        wall_s,
        changes,
        per_change_us: wall_s * 1e6 / changes as f64,
        allocs_per_change: allocs as f64 / changes as f64,
        cs_changes,
        fold_sig,
    }
}

/// Batched-replay comparison: vs2 vs col on the recorded Weaver and Tourney
/// change streams at batch-64 — the set-at-a-time workload the columnar
/// matcher targets. Under `--smoke` gates on col strictly beating vs2
/// per-change on Weaver and allocating no more per change on either program.
fn col_batch_comparison(programs: &[(&'static str, Workload)], smoke: bool) -> Vec<ColBatchRow> {
    bench::header("Batched replay: vs2 vs col (recorded change streams, batch-64)");
    println!(
        "{:<8} {:<6} {:>6} {:>9} {:>9} {:>11} {:>12} {:>10}",
        "PROGRAM", "ENGINE", "batch", "wall(s)", "changes", "us/change", "allocs/chg", "cs-chgs"
    );
    let mut rows = Vec::new();
    for (name, w) in programs {
        if *name != "Weaver" && *name != "Tourney" {
            continue;
        }
        let (net, stream) = record_stream(w);
        assert!(
            stream.len() > 100,
            "{name}: recorded stream too small to measure"
        );
        let vs2_make: Box<dyn Fn() -> Box<dyn Matcher>> = Box::new({
            let net = net.clone();
            move || rete::seq::boxed_vs2(net.clone(), rete::HashMemConfig::default())
        });
        let col_make: Box<dyn Fn() -> Box<dyn Matcher>> = Box::new({
            let net = net.clone();
            move || rete::colmatch::boxed_col(net.clone())
        });
        for (label, make) in [("vs2", &vs2_make), ("col", &col_make)] {
            let row = col_batch_row(name, label, make.as_ref(), &stream);
            println!(
                "{:<8} {:<6} {:>6} {:>9.3} {:>9} {:>11.3} {:>12.2} {:>10}",
                row.program,
                row.matcher,
                row.batch,
                row.wall_s,
                row.changes,
                row.per_change_us,
                row.allocs_per_change,
                row.cs_changes
            );
            rows.push(row);
        }
        let vs2 = &rows[rows.len() - 2];
        let col = &rows[rows.len() - 1];
        assert_eq!(
            vs2.fold_sig, col.fold_sig,
            "{name}: vs2 and col disagree on folded conflict-set state \
             (raw change counts may differ legitimately at batch > 1: col \
             suppresses insert/remove pairs that cancel within one chunk)"
        );
        let speedup = vs2.per_change_us / col.per_change_us.max(1e-9);
        println!(
            "{name}: col is {speedup:.2}x vs2 per-change at batch-{COL_BATCH} \
             (allocs/chg {:.2} vs {:.2})",
            col.allocs_per_change, vs2.allocs_per_change
        );
        if smoke {
            if *name == "Weaver" {
                assert!(
                    speedup > 1.0,
                    "col must beat vs2 per-change on Weaver at batch-{COL_BATCH} \
                     (got {speedup:.2}x)"
                );
            }
            assert!(
                col.allocs_per_change <= vs2.allocs_per_change,
                "{name}: col allocs/change {:.2} exceeds vs2 {:.2}",
                col.allocs_per_change,
                vs2.allocs_per_change
            );
        }
    }
    rows
}

/// One hot join node in a profile report, resolved against the network.
struct HotLine {
    join: usize,
    prod: String,
    ce: u16,
    activations: u64,
    scanned: u64,
}

/// Summary of the col matcher's per-bucket scan-length histogram: how many
/// candidate entries each join scan examined. Short scans mean the value
/// index is doing its job; a fat tail means collisions or low-selectivity
/// join keys.
struct ScanHistStats {
    count: u64,
    sum: u64,
    mean: f64,
    /// Nonzero buckets as `(upper_bound_exclusive, count)`.
    buckets: Vec<(u64, u64)>,
}

/// One workload x matcher measurement from the `--profile` pass.
struct ProfileRow {
    program: &'static str,
    matcher: &'static str,
    wall_off_s: f64,
    wall_on_s: f64,
    allocs_per_change_off: f64,
    allocs_per_change_on: f64,
    cycles: u64,
    hot: Vec<HotLine>,
    scan_hist: Option<ScanHistStats>,
}

impl ProfileRow {
    fn overhead_pct(&self) -> f64 {
        100.0 * (self.wall_on_s - self.wall_off_s) / self.wall_off_s.max(1e-9)
    }

    fn alloc_ratio(&self) -> f64 {
        self.allocs_per_change_on / self.allocs_per_change_off.max(1e-9)
    }
}

/// Runs one workload twice — obs disabled, then enabled — and pulls the hot
/// join nodes out of the enabled engine's node profile.
fn profile_pair(program: &'static str, w: &Workload, choice: &MatcherChoice) -> ProfileRow {
    let measure = |eng: &mut engine::Engine| {
        let (a0, _) = alloc_snapshot();
        let started = Instant::now();
        let res = eng.run(w.max_cycles).expect("run");
        let wall = started.elapsed().as_secs_f64();
        let (a1, _) = alloc_snapshot();
        let changes = eng.match_stats().wme_changes.max(1);
        (wall, (a1 - a0) as f64 / changes as f64, res.cycles)
    };

    // Best-of-5 on both legs, reps interleaved off/on/off/on/... so that
    // background load drift over the measurement window contaminates both
    // legs equally; the per-leg minimum is the least noise-contaminated
    // estimate of its true cost.
    const REPS: usize = 5;
    let mut wall_off_s = f64::INFINITY;
    let mut allocs_off = 0.0;
    let mut wall_on_s = f64::INFINITY;
    let mut allocs_on = 0.0;
    let mut cycles = 0;
    let mut on = None;
    for _ in 0..REPS {
        let mut off = workloads::build_engine(w, choice).expect("build engine");
        let (wall, allocs, _) = measure(&mut off);
        wall_off_s = wall_off_s.min(wall);
        allocs_off = allocs;
        drop(off);

        let mut eng = workloads::build_engine_obs(w, choice, None, obs::ObsConfig::enabled())
            .expect("build engine (obs)");
        let (wall, allocs, cyc) = measure(&mut eng);
        wall_on_s = wall_on_s.min(wall);
        allocs_on = allocs;
        cycles = cyc;
        on = Some(eng);
    }
    let on = on.expect("at least one obs rep");

    // Histogram invariant gate: every snapshot must be internally
    // consistent, and the match-phase histogram must hold one sample per
    // recognize-act cycle.
    let snap = on.obs_registry().expect("obs registry").snapshot();
    let mut scan_hist = None;
    for (name, h) in snap.histograms() {
        h.validate()
            .unwrap_or_else(|e| panic!("{program}/{}: {name}: {e}", choice.label()));
        if name == "engine_match_ns" {
            assert_eq!(
                h.count,
                cycles,
                "{program}/{}: engine_match_ns must hold one sample per cycle",
                choice.label()
            );
        }
        if name == "col_bucket_scan_len" && h.count > 0 {
            scan_hist = Some(ScanHistStats {
                count: h.count,
                sum: h.sum,
                mean: h.mean(),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| (obs::bucket_bound(i), *c))
                    .collect(),
            });
        }
    }

    let net = on.network().clone();
    let hot = on
        .node_profile()
        .map(|p| p.top_n(5))
        .unwrap_or_default()
        .into_iter()
        .map(|h| {
            let j = &net.joins[h.join];
            HotLine {
                join: h.join,
                prod: net.prod_names[j.prod.index()].clone(),
                ce: j.ce_index,
                activations: h.activations,
                scanned: h.scanned,
            }
        })
        .collect();

    ProfileRow {
        program,
        matcher: choice.label(),
        wall_off_s,
        wall_on_s,
        allocs_per_change_off: allocs_off,
        allocs_per_change_on: allocs_on,
        cycles,
        hot,
        scan_hist,
    }
}

fn profile_pass(programs: &[(&'static str, Workload)], smoke: bool) -> Vec<ProfileRow> {
    bench::header("Observability profile (obs off vs on, hottest join nodes)");
    let mut rows = Vec::new();
    for (name, w) in programs {
        for choice in matchers() {
            let row = profile_pair(name, w, &choice);
            println!(
                "{:<8} {:<6} wall {:>8.3}s -> {:>8.3}s ({:>+6.1}%)  allocs/chg x{:.3}",
                row.program,
                row.matcher,
                row.wall_off_s,
                row.wall_on_s,
                row.overhead_pct(),
                row.alloc_ratio()
            );
            if row.hot.is_empty() {
                println!("         (no per-node profile for this matcher)");
            }
            for h in &row.hot {
                println!(
                    "         join #{:<4} {:<28} ce{:<2} acts {:>10} scanned {:>12}",
                    h.join, h.prod, h.ce, h.activations, h.scanned
                );
            }
            if let Some(sh) = &row.scan_hist {
                let dist: Vec<String> = sh
                    .buckets
                    .iter()
                    .map(|(bound, c)| {
                        if *bound == u64::MAX {
                            format!("inf:{c}")
                        } else {
                            format!("<{bound}:{c}")
                        }
                    })
                    .collect();
                println!(
                    "         bucket scans {:>10}  entries examined {:>12}  mean {:>7.2}  [{}]",
                    sh.count,
                    sh.sum,
                    sh.mean,
                    dist.join(" ")
                );
            }
            if row.matcher == "col" {
                assert!(
                    row.scan_hist.is_some(),
                    "{}: col profile run recorded no bucket scans",
                    row.program
                );
            }
            if smoke {
                assert!(
                    row.alloc_ratio() <= 1.05,
                    "{}/{}: obs-enabled allocs/change ratio {:.3} exceeds 1.05",
                    row.program,
                    row.matcher,
                    row.alloc_ratio()
                );
            }
            rows.push(row);
        }
    }
    // vs1/vs2/psm-e all profile per node; lisp legitimately reports none.
    assert!(
        rows.iter().any(|r| !r.hot.is_empty()),
        "profile pass produced no hot join nodes at all"
    );
    rows
}

/// One serial/parallel act comparison on a corpus program × matcher pair.
struct ActPerfRow {
    program: &'static str,
    matcher: &'static str,
    fired: u64,
    serial_passes: u64,
    serial_submits: u64,
    par_passes: u64,
    par_submits: u64,
    groups: u64,
    mean_group: f64,
    rejects: u64,
    doomed: u64,
}

fn act_perf_run(
    src: &str,
    kind: engine::MatcherKind,
    act: engine::ActStrategy,
) -> (String, Vec<(u32, Vec<u64>)>, engine::ActStats) {
    let mut eng = EngineBuilder::from_source(src)
        .expect("parse corpus program")
        .matcher(kind)
        .act_strategy(act)
        .build()
        .expect("build engine");
    eng.load_startup().expect("load startup forms");
    eng.run(100_000).expect("run");
    let fired = eng
        .fired_log()
        .iter()
        .map(|(p, tags)| (p.0, tags.clone()))
        .collect();
    (eng.snapshot().to_text(), fired, eng.act_stats())
}

/// Serial vs parallel act phase on the `programs/` corpus. Equality of the
/// firing log and final working-memory snapshot is asserted unconditionally
/// (the parallel act is serial-equivalent by construction, and this is the
/// bench-side witness); the perf claim is that grouped firings fold into
/// fewer match passes and matcher submissions. Rows land in
/// `BENCH_match.json` under `"act_perf"`. Under `--smoke` gates on triage
/// reaching a mean group size above 1.5 with strictly fewer match passes
/// and submits than the serial run.
fn act_perf(smoke: bool) -> Vec<ActPerfRow> {
    bench::header("Act phase: serial vs parallel (corpus programs)");
    println!(
        "{:<10} {:<6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "PROGRAM",
        "ENGINE",
        "fired",
        "passes",
        "submits",
        "passes'",
        "submits'",
        "groups",
        "mean",
        "rejects",
        "doomed"
    );
    let mut rows = Vec::new();
    for name in ["blocks", "fibonacci", "monkey", "hanoi", "triage"] {
        let src = std::fs::read_to_string(format!("programs/{name}.ops"))
            .expect("read corpus program (run from the workspace root)");
        let matchers: Vec<(&'static str, engine::MatcherKind)> = if name == "triage" {
            // triage is the grouping showcase; cover both the default and
            // the columnar matcher there.
            vec![
                (
                    "vs2",
                    engine::MatcherKind::Vs2(rete::HashMemConfig::default()),
                ),
                ("col", engine::MatcherKind::Col),
            ]
        } else {
            vec![(
                "vs2",
                engine::MatcherKind::Vs2(rete::HashMemConfig::default()),
            )]
        };
        for (label, kind) in matchers {
            let (s_snap, s_fired, s_stats) =
                act_perf_run(&src, kind.clone(), engine::ActStrategy::Serial);
            let (p_snap, p_fired, p_stats) =
                act_perf_run(&src, kind, engine::ActStrategy::parallel());
            assert_eq!(
                p_fired, s_fired,
                "{name}/{label}: parallel act changed the firing log"
            );
            assert_eq!(
                p_snap, s_snap,
                "{name}/{label}: parallel act changed final working memory"
            );
            let row = ActPerfRow {
                program: name,
                matcher: label,
                fired: p_stats.fired,
                serial_passes: s_stats.match_passes,
                serial_submits: s_stats.act_submits,
                par_passes: p_stats.match_passes,
                par_submits: p_stats.act_submits,
                groups: p_stats.groups,
                mean_group: p_stats.mean_group_size(),
                rejects: p_stats.interference_rejects,
                doomed: p_stats.doomed_skips,
            };
            println!(
                "{:<10} {:<6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7.2} {:>7} {:>7}",
                row.program,
                row.matcher,
                row.fired,
                row.serial_passes,
                row.serial_submits,
                row.par_passes,
                row.par_submits,
                row.groups,
                row.mean_group,
                row.rejects,
                row.doomed
            );
            if smoke && name == "triage" {
                assert!(
                    row.mean_group > 1.5,
                    "triage/{label}: mean act group size {:.2} <= 1.5 — grouping regressed",
                    row.mean_group
                );
                assert!(
                    row.par_submits < row.serial_submits,
                    "triage/{label}: parallel submits {} not below serial {}",
                    row.par_submits,
                    row.serial_submits
                );
                assert!(
                    row.par_passes < row.serial_passes,
                    "triage/{label}: parallel match passes {} not below serial {}",
                    row.par_passes,
                    row.serial_passes
                );
            }
            rows.push(row);
        }
    }
    rows
}

fn smoke_programs() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "Weaver",
            weaver::workload(weaver::WeaverConfig {
                width: 6,
                height: 6,
                kinds: 12,
                nets: 3,
                blocked_pct: 8,
                seed: 42,
            }),
        ),
        (
            "Rubik",
            rubik::workload(rubik::RubikConfig {
                seed: 2026,
                scramble_len: 12,
                plan: rubik::PlanMode::Inverse,
            }),
        ),
        (
            "Tourney",
            tourney::workload(tourney::TourneyConfig {
                teams: 8,
                variant: tourney::Variant::Pathological,
            }),
        ),
    ]
}

fn matchers() -> Vec<MatcherChoice> {
    vec![
        MatcherChoice::Vs1,
        MatcherChoice::Vs2,
        MatcherChoice::Lisp,
        MatcherChoice::Psm(psm::PsmConfig::default()),
        MatcherChoice::Col,
    ]
}

fn main() {
    // The workload sections gate on deterministic counters measured under
    // the serial act phase; the act comparison below sets its strategies
    // explicitly. Scrub the env knob so an `OPS5_ACT=parallel` CI job
    // (act-smoke) exercises the same gates as the default one.
    std::env::remove_var("OPS5_ACT");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile_mode = std::env::args().any(|a| a == "--profile");
    let programs: Vec<(&'static str, Workload)> = if smoke {
        smoke_programs()
    } else {
        bench::programs()
            .into_iter()
            .map(|(name, make)| (name, make()))
            .collect()
    };

    bench::header(if smoke {
        "Match-perf suite (smoke configs)"
    } else {
        "Match-perf suite"
    });
    println!(
        "{:<8} {:<6} {:>9} {:>8} {:>9} {:>11} {:>11} {:>11} {:>10} {:>11} {:>12}",
        "PROGRAM",
        "ENGINE",
        "wall(s)",
        "cycles",
        "changes",
        "us/change",
        "us/cycle",
        "join-acts",
        "null-acts",
        "allocs",
        "allocs/chg"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, w) in &programs {
        for choice in matchers() {
            let row = benchmark(name, w, &choice);
            println!(
                "{:<8} {:<6} {:>9.3} {:>8} {:>9} {:>11.2} {:>11.1} {:>11} {:>10} {:>11} {:>12.1}",
                row.program,
                row.matcher,
                row.wall_s,
                row.cycles,
                row.changes,
                row.per_change_us,
                row.per_cycle_us,
                row.join_acts,
                row.null_acts,
                row.allocs,
                row.allocs_per_change
            );
            rows.push(row);
        }
    }

    println!();
    let col_rows = col_batch_comparison(&programs, smoke);

    println!();
    let act_rows = act_perf(smoke);

    let profile_rows = if profile_mode {
        println!();
        profile_pass(&programs, smoke)
    } else {
        Vec::new()
    };

    let mut json = String::from("{\n  \"suite\": \"match_perf\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"program\": \"{}\", \"matcher\": \"{}\", \"wall_s\": {:.6}, \
             \"cycles\": {}, \"wme_changes\": {}, \"us_per_change\": {:.3}, \
             \"us_per_cycle\": {:.3}, \"join_activations\": {}, \
             \"null_activations\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \
             \"allocs_per_change\": {:.2}}}{}\n",
            r.program,
            r.matcher,
            r.wall_s,
            r.cycles,
            r.changes,
            r.per_change_us,
            r.per_cycle_us,
            r.join_acts,
            r.null_acts,
            r.allocs,
            r.alloc_bytes,
            r.allocs_per_change,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]");
    if !col_rows.is_empty() {
        json.push_str(",\n  \"col_batch\": [\n");
        for (i, r) in col_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"program\": \"{}\", \"matcher\": \"{}\", \"batch\": {}, \
                 \"wall_s\": {:.6}, \"changes\": {}, \"us_per_change\": {:.3}, \
                 \"allocs_per_change\": {:.2}, \"cs_changes\": {}}}{}\n",
                r.program,
                r.matcher,
                r.batch,
                r.wall_s,
                r.changes,
                r.per_change_us,
                r.allocs_per_change,
                r.cs_changes,
                if i + 1 == col_rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]");
    }
    if !act_rows.is_empty() {
        json.push_str(",\n  \"act_perf\": [\n");
        for (i, r) in act_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"program\": \"{}\", \"matcher\": \"{}\", \"fired\": {}, \
                 \"serial_match_passes\": {}, \"serial_act_submits\": {}, \
                 \"parallel_match_passes\": {}, \"parallel_act_submits\": {}, \
                 \"groups\": {}, \"mean_group_size\": {:.3}, \
                 \"interference_rejects\": {}, \"doomed_skips\": {}}}{}\n",
                r.program,
                r.matcher,
                r.fired,
                r.serial_passes,
                r.serial_submits,
                r.par_passes,
                r.par_submits,
                r.groups,
                r.mean_group,
                r.rejects,
                r.doomed,
                if i + 1 == act_rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]");
    }
    if !profile_rows.is_empty() {
        json.push_str(",\n  \"profile\": [\n");
        for (i, r) in profile_rows.iter().enumerate() {
            let hot: Vec<String> = r
                .hot
                .iter()
                .map(|h| {
                    format!(
                        "{{\"join\": {}, \"prod\": \"{}\", \"ce\": {}, \
                         \"activations\": {}, \"scanned\": {}}}",
                        h.join, h.prod, h.ce, h.activations, h.scanned
                    )
                })
                .collect();
            let hist = r
                .scan_hist
                .as_ref()
                .map(|sh| {
                    format!(
                        ", \"scan_hist\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.3}}}",
                        sh.count, sh.sum, sh.mean
                    )
                })
                .unwrap_or_default();
            json.push_str(&format!(
                "    {{\"program\": \"{}\", \"matcher\": \"{}\", \"cycles\": {}, \
                 \"wall_off_s\": {:.6}, \"wall_on_s\": {:.6}, \
                 \"overhead_pct\": {:.2}, \"allocs_per_change_off\": {:.2}, \
                 \"allocs_per_change_on\": {:.2}, \"hot_nodes\": [{}]{}}}{}\n",
                r.program,
                r.matcher,
                r.cycles,
                r.wall_off_s,
                r.wall_on_s,
                r.overhead_pct(),
                r.allocs_per_change_off,
                r.allocs_per_change_on,
                hot.join(", "),
                hist,
                if i + 1 == profile_rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]");
    }
    json.push_str("\n}\n");
    std::fs::write("BENCH_match.json", &json).expect("write BENCH_match.json");
    println!();
    println!("wrote BENCH_match.json ({} rows)", rows.len());
    println!();

    // The Weaver config comparison runs on the smoke-sized grid either way:
    // the counters it gates on are deterministic, and the smoke run is the
    // one CI enforces.
    let (_, weaver) = smoke_programs().remove(0);
    rete_comparison(&weaver, smoke);
}
