//! Cross-matcher match-performance suite.
//!
//! Runs Weaver, Rubik, and Tourney on all four matchers (vs1, vs2, lisp,
//! psm-e) and reports per-change and per-cycle wall times plus heap
//! allocation counts, writing `BENCH_match.json` — the seed point for the
//! repo's match-perf trajectory (EXPERIMENTS.md tracks before/after numbers
//! per optimization PR).
//!
//! Run with: `cargo run --release -p bench --bin match_perf`
//! CI smoke:  `cargo run --release -p bench --bin match_perf -- --smoke`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use workloads::{rubik, tourney, weaver, MatcherChoice, Workload};

/// Forwarding allocator that counts allocations and allocated bytes so the
/// suite can report match-loop allocation pressure, not just wall time.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

struct Row {
    program: &'static str,
    matcher: &'static str,
    wall_s: f64,
    cycles: u64,
    changes: u64,
    per_change_us: f64,
    per_cycle_us: f64,
    join_acts: u64,
    null_acts: u64,
    allocs: u64,
    alloc_bytes: u64,
    allocs_per_change: f64,
}

fn benchmark(program: &'static str, w: &Workload, choice: &MatcherChoice) -> Row {
    // Build (parse + compile + initial WM) outside the measured window: the
    // suite measures the match loop, not the front end.
    let mut eng = workloads::build_engine(w, choice).expect("build engine");
    let (a0, b0) = alloc_snapshot();
    let started = Instant::now();
    let res = eng.run(w.max_cycles).expect("run");
    let wall = started.elapsed();
    let (a1, b1) = alloc_snapshot();
    if let Err(e) = (w.validate)(&eng) {
        panic!("{program} failed validation under {}: {e}", choice.label());
    }
    let stats = eng.match_stats();
    let changes = stats.wme_changes.max(1);
    let cycles = res.cycles.max(1);
    let allocs = a1 - a0;
    Row {
        program,
        matcher: choice.label(),
        wall_s: wall.as_secs_f64(),
        cycles: res.cycles,
        changes: stats.wme_changes,
        per_change_us: wall.as_secs_f64() * 1e6 / changes as f64,
        per_cycle_us: wall.as_secs_f64() * 1e6 / cycles as f64,
        join_acts: stats.join_activations,
        null_acts: stats.null_activations,
        allocs,
        alloc_bytes: b1 - b0,
        allocs_per_change: allocs as f64 / changes as f64,
    }
}

/// One rete-configuration measurement: Weaver on vs2 under the given network
/// compile options, capturing network node counts and join/null counters.
struct ReteRow {
    config: &'static str,
    options: rete::NetworkOptions,
    joins: usize,
    shared_prefixes: usize,
    memory_nodes: usize,
    join_acts: u64,
    null_acts: u64,
    null_skipped: u64,
    wall_s: f64,
}

fn rete_config_row(w: &Workload, config: &'static str, options: rete::NetworkOptions) -> ReteRow {
    let mut eng =
        workloads::build_engine_with(w, &MatcherChoice::Vs2, Some(options)).expect("build engine");
    let summary = eng.network().summary();
    let started = Instant::now();
    eng.run(w.max_cycles).expect("run");
    let wall = started.elapsed();
    if let Err(e) = (w.validate)(&eng) {
        panic!("rete config {config} failed validation: {e}");
    }
    let s = eng.match_stats();
    ReteRow {
        config,
        options,
        joins: summary.joins,
        shared_prefixes: summary.shared_prefixes,
        memory_nodes: summary.memory_nodes,
        join_acts: s.join_activations,
        null_acts: s.null_activations,
        null_skipped: s.null_skipped,
        wall_s: wall.as_secs_f64(),
    }
}

/// Compares network compile configurations on Weaver and writes
/// `BENCH_rete.json`. Under `--smoke` this doubles as the acceptance gate
/// for sharing + unlinking: unlinking must strictly reduce null activations,
/// and the combined config must cut join activations by at least 20%.
fn rete_comparison(w: &Workload, smoke: bool) {
    bench::header("Rete network configurations (Weaver, vs2)");
    let configs = [
        (
            "baseline",
            rete::NetworkOptions {
                sharing: false,
                unlinking: false,
            },
        ),
        (
            "unlink",
            rete::NetworkOptions {
                sharing: false,
                unlinking: true,
            },
        ),
        (
            "share+unlink",
            rete::NetworkOptions {
                sharing: true,
                unlinking: true,
            },
        ),
    ];
    println!(
        "{:<13} {:>7} {:>8} {:>8} {:>12} {:>11} {:>12} {:>9}",
        "CONFIG", "joins", "shared", "mems", "join-acts", "null-acts", "null-skip", "wall(s)"
    );
    let rows: Vec<ReteRow> = configs
        .iter()
        .map(|(name, opts)| {
            let r = rete_config_row(w, name, *opts);
            println!(
                "{:<13} {:>7} {:>8} {:>8} {:>12} {:>11} {:>12} {:>9.3}",
                r.config,
                r.joins,
                r.shared_prefixes,
                r.memory_nodes,
                r.join_acts,
                r.null_acts,
                r.null_skipped,
                r.wall_s
            );
            r
        })
        .collect();

    let mut json = String::from("{\n  \"suite\": \"rete_configs\",\n  \"program\": \"Weaver\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"sharing\": {}, \"unlinking\": {}, \
             \"joins\": {}, \"shared_prefixes\": {}, \"memory_nodes\": {}, \
             \"join_activations\": {}, \"null_activations\": {}, \
             \"null_skipped\": {}, \"wall_s\": {:.6}}}{}\n",
            r.config,
            r.options.sharing,
            r.options.unlinking,
            r.joins,
            r.shared_prefixes,
            r.memory_nodes,
            r.join_acts,
            r.null_acts,
            r.null_skipped,
            r.wall_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rete.json", &json).expect("write BENCH_rete.json");
    println!();
    println!("wrote BENCH_rete.json ({} configs)", rows.len());

    let base = &rows[0];
    let unlink = &rows[1];
    let tuned = &rows[2];
    let join_cut = 1.0 - tuned.join_acts as f64 / base.join_acts.max(1) as f64;
    println!(
        "unlinking null activations: {} -> {} ({} skipped); sharing+unlinking join activations: {} -> {} ({:.1}% fewer)",
        base.null_acts,
        unlink.null_acts,
        unlink.null_skipped,
        base.join_acts,
        tuned.join_acts,
        100.0 * join_cut
    );
    if smoke {
        assert!(
            unlink.null_acts < base.null_acts,
            "unlinking must strictly reduce Weaver null activations ({} vs {})",
            unlink.null_acts,
            base.null_acts
        );
        assert!(
            join_cut >= 0.20,
            "sharing+unlinking must cut Weaver join activations by >= 20% (got {:.1}%)",
            100.0 * join_cut
        );
    }
}

fn smoke_programs() -> Vec<(&'static str, Workload)> {
    vec![
        (
            "Weaver",
            weaver::workload(weaver::WeaverConfig {
                width: 6,
                height: 6,
                kinds: 12,
                nets: 3,
                blocked_pct: 8,
                seed: 42,
            }),
        ),
        (
            "Rubik",
            rubik::workload(rubik::RubikConfig {
                seed: 2026,
                scramble_len: 12,
                plan: rubik::PlanMode::Inverse,
            }),
        ),
        (
            "Tourney",
            tourney::workload(tourney::TourneyConfig {
                teams: 8,
                variant: tourney::Variant::Pathological,
            }),
        ),
    ]
}

fn matchers() -> Vec<MatcherChoice> {
    vec![
        MatcherChoice::Vs1,
        MatcherChoice::Vs2,
        MatcherChoice::Lisp,
        MatcherChoice::Psm(psm::PsmConfig::default()),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let programs: Vec<(&'static str, Workload)> = if smoke {
        smoke_programs()
    } else {
        bench::programs()
            .into_iter()
            .map(|(name, make)| (name, make()))
            .collect()
    };

    bench::header(if smoke {
        "Match-perf suite (smoke configs)"
    } else {
        "Match-perf suite"
    });
    println!(
        "{:<8} {:<6} {:>9} {:>8} {:>9} {:>11} {:>11} {:>11} {:>10} {:>11} {:>12}",
        "PROGRAM",
        "ENGINE",
        "wall(s)",
        "cycles",
        "changes",
        "us/change",
        "us/cycle",
        "join-acts",
        "null-acts",
        "allocs",
        "allocs/chg"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, w) in &programs {
        for choice in matchers() {
            let row = benchmark(name, w, &choice);
            println!(
                "{:<8} {:<6} {:>9.3} {:>8} {:>9} {:>11.2} {:>11.1} {:>11} {:>10} {:>11} {:>12.1}",
                row.program,
                row.matcher,
                row.wall_s,
                row.cycles,
                row.changes,
                row.per_change_us,
                row.per_cycle_us,
                row.join_acts,
                row.null_acts,
                row.allocs,
                row.allocs_per_change
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n  \"suite\": \"match_perf\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"program\": \"{}\", \"matcher\": \"{}\", \"wall_s\": {:.6}, \
             \"cycles\": {}, \"wme_changes\": {}, \"us_per_change\": {:.3}, \
             \"us_per_cycle\": {:.3}, \"join_activations\": {}, \
             \"null_activations\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \
             \"allocs_per_change\": {:.2}}}{}\n",
            r.program,
            r.matcher,
            r.wall_s,
            r.cycles,
            r.changes,
            r.per_change_us,
            r.per_cycle_us,
            r.join_acts,
            r.null_acts,
            r.allocs,
            r.alloc_bytes,
            r.allocs_per_change,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_match.json", &json).expect("write BENCH_match.json");
    println!();
    println!("wrote BENCH_match.json ({} rows)", rows.len());
    println!();

    // The Weaver config comparison runs on the smoke-sized grid either way:
    // the counters it gates on are deterministic, and the smoke run is the
    // one CI enforces.
    let (_, weaver) = smoke_programs().remove(0);
    rete_comparison(&weaver, smoke);
}
