//! Microbenchmarks for the task-queue scheduler: push/pop cost at 1, 4,
//! and 8 queues — the per-task scheduling overhead that §3.1 worries about
//! for 100-700-instruction tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ops5::{Sign, SymbolId, Value, Wme};
use psm::queue::{ParTask, Scheduler};

fn task() -> ParTask {
    ParTask::Root {
        sign: Sign::Plus,
        wme: Wme::new(SymbolId(1), vec![Value::Int(1)], 1),
    }
}

fn push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues/push-pop");
    for nq in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |b, &nq| {
            let s = Scheduler::new(nq);
            let mut cursor = 0usize;
            b.iter(|| {
                s.push(task(), &mut cursor);
                let t = s.pop(0).unwrap();
                s.task_done();
                t
            })
        });
    }
    g.finish();
}

fn burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues/burst-64");
    g.sample_size(20);
    for nq in [1usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |b, &nq| {
            let s = Scheduler::new(nq);
            let mut cursor = 0usize;
            b.iter(|| {
                for _ in 0..64 {
                    s.push(task(), &mut cursor);
                }
                for _ in 0..64 {
                    s.pop(0).unwrap();
                    s.task_done();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, push_pop, burst);
criterion_main!(benches);
