//! Microbenchmarks for the synchronization primitives (§3.2): the TTAS spin
//! lock and the reader-writer spin lock used by the MRSW line protocol,
//! uncontended and contended — the "simple vs complex locks" overhead axis
//! of Table 4-8.

use criterion::{criterion_group, criterion_main, Criterion};
use psm::sync::{RwSpinLock, SpinLock};
use std::hint::black_box;
use std::sync::Arc;

fn uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks/uncontended");
    let spin = SpinLock::new(0u64);
    g.bench_function("spinlock", |b| {
        b.iter(|| {
            *spin.lock() += 1;
        })
    });
    let rw = RwSpinLock::new(0u64);
    g.bench_function("rwspin-write", |b| {
        b.iter(|| {
            *rw.write() += 1;
        })
    });
    g.bench_function("rwspin-read", |b| {
        b.iter(|| {
            black_box(*rw.read());
        })
    });
    let pl = parking_lot_shim::Mutex::new(0u64);
    g.bench_function("parking-lot-mutex", |b| {
        b.iter(|| {
            *pl.lock() += 1;
        })
    });
    g.finish();
}

// Tiny shim so the bench compiles without adding parking_lot to the
// dependency list of this crate: reuse std's Mutex as the comparison
// baseline (the perf-book's advice: measure before switching).
mod parking_lot_shim {
    pub use std::sync::Mutex as StdMutex;
    pub struct Mutex<T>(StdMutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(StdMutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap()
        }
    }
}

fn contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks/contended-2-threads");
    g.sample_size(10);
    g.bench_function("spinlock", |b| {
        b.iter_custom(|iters| {
            let lock = Arc::new(SpinLock::new(0u64));
            let l2 = lock.clone();
            let handle = std::thread::spawn(move || {
                for _ in 0..iters {
                    *l2.lock() += 1;
                }
            });
            let start = std::time::Instant::now();
            for _ in 0..iters {
                *lock.lock() += 1;
            }
            let elapsed = start.elapsed();
            handle.join().unwrap();
            elapsed
        })
    });
    g.finish();
}

criterion_group!(benches, uncontended, contended);
criterion_main!(benches);
