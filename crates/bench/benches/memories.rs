//! Token-memory microbenchmarks: list vs hash memories for scans and
//! delete searches as memory size grows — the mechanism behind Tables
//! 4-2/4-3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ops5::{Program, Value, Wme};
use rete::memory::{HashMem, ListMem, TokenMem};
use rete::network::Network;
use rete::token::Token;
use rete::HashMemConfig;
use std::sync::Arc;

fn setup() -> (
    ops5::SymbolId,
    ops5::SymbolId,
    rete::network::JoinNode,
    Arc<Network>,
) {
    let mut prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
    let net = Arc::new(Network::compile(&prog).unwrap());
    let ca = prog.symbols.intern("a");
    let cb = prog.symbols.intern("b");
    let j = net.join(0).clone();
    (ca, cb, j, net)
}

fn scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("memories/scan-right");
    for size in [16usize, 128, 1024] {
        let (ca, cb, j, net) = setup();
        let mut list = ListMem::new(net.n_joins());
        let mut hash = HashMem::new(HashMemConfig { buckets: 256 });
        for i in 0..size {
            let w = Wme::new(cb, vec![Value::Int(i as i64)], i as u64 + 1);
            list.insert_right(&j, list.right_key(&j, &w), w.clone());
            hash.insert_right(&j, hash.right_key(&j, &w), w);
        }
        let tok = Token::single(Wme::new(ca, vec![Value::Int(7)], 100_000));
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::new("list", size), &size, |b, _| {
            b.iter(|| {
                list.scan_right(&j, list.left_key(&j, &tok), &tok, &mut out);
                out.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("hash", size), &size, |b, _| {
            b.iter(|| {
                hash.scan_right(&j, hash.left_key(&j, &tok), &tok, &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

fn delete_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("memories/delete-search");
    for size in [16usize, 256] {
        g.bench_with_input(BenchmarkId::new("list", size), &size, |b, &size| {
            b.iter_with_setup(
                || {
                    let (_ca, cb, j, net) = setup();
                    let mut m = ListMem::new(net.n_joins());
                    for i in 0..size {
                        let w = Wme::new(cb, vec![Value::Int(i as i64)], i as u64 + 1);
                        m.insert_right(&j, m.right_key(&j, &w), w);
                    }
                    (
                        m,
                        j,
                        Wme::new(cb, vec![Value::Int(size as i64 - 1)], size as u64),
                    )
                },
                |(mut m, j, target)| {
                    let k = m.right_key(&j, &target);
                    m.remove_right(&j, k, &target).examined
                },
            )
        });
        g.bench_with_input(BenchmarkId::new("hash", size), &size, |b, &size| {
            b.iter_with_setup(
                || {
                    let (_ca, cb, j, _net) = setup();
                    let mut m = HashMem::new(HashMemConfig { buckets: 256 });
                    for i in 0..size {
                        let w = Wme::new(cb, vec![Value::Int(i as i64)], i as u64 + 1);
                        m.insert_right(&j, m.right_key(&j, &w), w);
                    }
                    (
                        m,
                        j,
                        Wme::new(cb, vec![Value::Int(size as i64 - 1)], size as u64),
                    )
                },
                |(mut m, j, target)| {
                    let k = m.right_key(&j, &target);
                    m.remove_right(&j, k, &target).examined
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, scan, delete_search);
criterion_main!(benches);
