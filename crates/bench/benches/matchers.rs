//! End-to-end matcher benchmarks on synthetic workloads: vs1 vs vs2 vs the
//! interpreted lisp baseline — the Table 4-1/4-4 axes in microcosm.

use criterion::{criterion_group, criterion_main, Criterion};
use workloads::{build_engine, synth, MatcherChoice};

fn run(choice: &MatcherChoice, w: &workloads::Workload) {
    let mut eng = build_engine(w, choice).expect("build");
    eng.run(w.max_cycles).expect("run");
}

fn fat_memories(c: &mut Criterion) {
    let mut g = c.benchmark_group("matchers/fat-memories-8x30");
    g.sample_size(10);
    for (label, choice) in [
        ("vs1", MatcherChoice::Vs1),
        ("vs2", MatcherChoice::Vs2),
        ("lisp", MatcherChoice::Lisp),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| run(&choice, &synth::fat_memories(8, 30)))
        });
    }
    g.finish();
}

fn cross_product(c: &mut Criterion) {
    let mut g = c.benchmark_group("matchers/cross-product-8");
    g.sample_size(10);
    for (label, choice) in [
        ("vs1", MatcherChoice::Vs1),
        ("vs2", MatcherChoice::Vs2),
        ("lisp", MatcherChoice::Lisp),
    ] {
        g.bench_function(label, |b| b.iter(|| run(&choice, &synth::cross_product(8))));
    }
    g.finish();
}

fn chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("matchers/chain-100");
    g.sample_size(10);
    for (label, choice) in [
        ("vs1", MatcherChoice::Vs1),
        ("vs2", MatcherChoice::Vs2),
        ("lisp", MatcherChoice::Lisp),
    ] {
        g.bench_function(label, |b| b.iter(|| run(&choice, &synth::long_chain(100))));
    }
    g.finish();
}

criterion_group!(benches, fat_memories, cross_product, chain);
criterion_main!(benches);
