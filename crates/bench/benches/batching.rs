//! Batched vs per-change submission — what the `ChangeBatch` pipeline buys.
//!
//! Records the exact WME-change stream each workload pushes through the
//! match during a real run (via a recording wrapper matcher), then replays
//! that stream into fresh matchers re-chunked into batches of 1, 8, and 64
//! changes. Batch size 1 is the old per-change discipline; the chunking
//! invariance property (tests/properties.rs) guarantees every size computes
//! the same conflict set, so the difference is pure dispatch overhead:
//! per-class alpha-chain walks for vs2, TaskCount traffic and queue pushes
//! for PSM-E.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::EngineBuilder;
use ops5::{ChangeBatch, MatchStats, Matcher, QuiesceReport, WmeChange};
use rete::network::Network;
use std::sync::{Arc, Mutex};
use workloads::{rubik, tourney, weaver, Workload};

/// Wrapper that logs every submitted change in order, then delegates.
struct Recorder {
    inner: Box<dyn Matcher>,
    log: Arc<Mutex<Vec<WmeChange>>>,
}

impl Matcher for Recorder {
    fn submit(&mut self, batch: &ChangeBatch) {
        self.log.lock().unwrap().extend(batch.iter().cloned());
        self.inner.submit(batch);
    }
    fn quiesce(&mut self) -> QuiesceReport {
        self.inner.quiesce()
    }
    fn stats(&self) -> MatchStats {
        self.inner.stats()
    }
    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
    fn name(&self) -> &'static str {
        "recorder"
    }
}

/// Runs a workload once under vs2 and returns the compiled network plus the
/// post-annihilation change stream the matcher actually saw.
fn record_stream(w: &Workload) -> (Arc<Network>, Vec<WmeChange>) {
    let log: Arc<Mutex<Vec<WmeChange>>> = Arc::default();
    let log2 = log.clone();
    let mut eng = EngineBuilder::from_source(&w.source)
        .expect("parse")
        .custom_matcher(move |net| {
            Box::new(Recorder {
                inner: rete::seq::boxed_vs2(net, rete::HashMemConfig::default()),
                log: log2,
            })
        })
        .build()
        .expect("build");
    for wme in &w.setup {
        let sets: Vec<(String, ops5::Value)> = wme
            .sets
            .iter()
            .map(|(a, v)| {
                let val = match v {
                    workloads::SetupVal::Sym(s) => eng.sym(s),
                    workloads::SetupVal::Int(i) => ops5::Value::Int(*i),
                };
                (a.clone(), val)
            })
            .collect();
        let refs: Vec<(&str, ops5::Value)> = sets.iter().map(|(a, v)| (a.as_str(), *v)).collect();
        eng.make_wme(&wme.class, &refs).expect("setup wme");
    }
    eng.run(w.max_cycles).expect("run");
    let stream = std::mem::take(&mut *log.lock().unwrap());
    (eng.network().clone(), stream)
}

/// Replays a stream in chunks of `batch` changes, quiescing after each.
fn replay(m: &mut dyn Matcher, stream: &[WmeChange], batch: usize) -> usize {
    let mut cs = 0;
    for chunk in stream.chunks(batch) {
        m.submit(&chunk.iter().cloned().collect::<ChangeBatch>());
        cs += m.quiesce().cs_changes.len();
    }
    cs
}

const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn bench_workload(c: &mut Criterion, name: &str, w: &Workload) {
    let (net, stream) = record_stream(w);
    assert!(stream.len() > 100, "{name}: stream too small to measure");

    let mut g = c.benchmark_group(format!("batching/{name}"));
    g.sample_size(10);
    for batch in BATCH_SIZES {
        g.bench_with_input(BenchmarkId::new("vs2", batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut m = rete::seq::boxed_vs2(net.clone(), rete::HashMemConfig::default());
                replay(m.as_mut(), &stream, batch)
            })
        });
        g.bench_with_input(BenchmarkId::new("psm", batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut m = psm::ParMatcher::new(
                    net.clone(),
                    psm::PsmConfig {
                        match_processes: 4,
                        queues: 2,
                        ..Default::default()
                    },
                );
                replay(&mut m, &stream, batch)
            })
        });
    }
    g.finish();
}

fn batching(c: &mut Criterion) {
    bench_workload(
        c,
        "rubik",
        &rubik::workload(rubik::RubikConfig {
            seed: 7,
            scramble_len: 12,
            plan: rubik::PlanMode::Inverse,
        }),
    );
    bench_workload(
        c,
        "tourney",
        &tourney::workload(tourney::TourneyConfig {
            teams: 10,
            variant: tourney::Variant::Fixed,
        }),
    );
    bench_workload(
        c,
        "weaver",
        &weaver::workload(weaver::WeaverConfig {
            width: 7,
            height: 6,
            kinds: 4,
            nets: 3,
            blocked_pct: 5,
            seed: 11,
        }),
    );
}

criterion_group!(benches, batching);
criterion_main!(benches);
