//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the subset of criterion's API its benches use:
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher`] (`iter`, `iter_custom`,
//! `iter_with_setup`), [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated to a per-sample
//! target time, then timed over `sample_size` samples; the harness prints
//! min / median / mean per-iteration times. There are no plots, no saved
//! baselines, and no statistical regression analysis — the numbers are
//! honest wall-clock medians, which is what the ablation write-ups quote.
//!
//! A `--quick` argument (also honored when running under `cargo test`)
//! reduces sampling so CI smoke runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample target running time for auto-calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Default number of samples per benchmark (groups can override).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let samples = self.sample_size;
        run_benchmark(name, samples, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    /// Iterations the routine should run this sample.
    iters: u64,
    /// Measured time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// The routine does its own timing over `iters` iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }

    /// Per-iteration setup excluded from the measurement.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let (samples, target) = if quick_mode() {
        (2usize, Duration::from_millis(2))
    } else {
        (sample_size, TARGET_SAMPLE_TIME)
    };

    // Calibrate: double the iteration count until one sample reaches the
    // target time.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 24 {
            break;
        }
        // Jump close to the target in one step once we have a signal.
        if b.elapsed > Duration::ZERO {
            let scale = target.as_nanos() as f64 / b.elapsed.as_nanos().max(1) as f64;
            let next = (iters as f64 * scale * 1.2) as u64;
            iters = next
                .clamp(iters + 1, iters.saturating_mul(128))
                .min(1 << 24);
        } else {
            iters = iters.saturating_mul(128).min(1 << 24);
        }
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 10);
        assert!(b.elapsed > Duration::ZERO || calls == 10);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_with_setup(|| vec![1u8; 16], |v| v.len());
        // Just exercise the path; elapsed is whatever the clock says.
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("list", 32).into_benchmark_id(), "list/32");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
