//! Lexer for OPS5 source text.
//!
//! OPS5 is a Lisp-family surface syntax with a few twists that make the
//! lexer stateful-free but fiddly:
//!
//! * `<x>` (no internal whitespace) is a *variable*; a bare `<` followed by
//!   whitespace is the less-than predicate; `<=`, `<>`, `<=>`, `<<`, `>>`,
//!   `>=` are multi-character tokens.
//! * `-` before an open parenthesis in an LHS is condition-element negation;
//!   before a digit it may begin a negative number; otherwise it is a symbol
//!   (the RHS `compute` subtraction operator). The lexer emits a single
//!   `Minus` token and lets the parser decide.
//! * `;` starts a comment to end of line.

use crate::error::{Ops5Error, Result};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    LParen,
    RParen,
    LBrace,
    RBrace,
    /// `<<`
    LDisj,
    /// `>>`
    RDisj,
    /// `-->`
    Arrow,
    /// `-` (negation marker or subtraction; parser disambiguates)
    Minus,
    /// `^attr`
    Attr(String),
    /// `<name>`
    Var(String),
    /// `=`, `<>`, `<`, `<=`, `>`, `>=`, `<=>`
    Pred(PredTok),
    Sym(String),
    Int(i64),
    Float(f64),
    Eof,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredTok {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    SameType,
}

/// True for characters that may appear in a bare OPS5 symbol.
fn is_sym_char(c: char) -> bool {
    c.is_alphanumeric()
        || matches!(
            c,
            '-' | '_' | '*' | '+' | '/' | '.' | '?' | '!' | ':' | '&' | '$' | '%' | '\\'
        )
}

/// Tokenizes an entire source string.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut it = src.chars().peekable();

    while let Some(&c) = it.peek() {
        let (tl, tc) = (line, col);
        let advance =
            |it: &mut std::iter::Peekable<std::str::Chars>, line: &mut u32, col: &mut u32| {
                let c = it.next().unwrap();
                if c == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                c
            };

        match c {
            c if c.is_whitespace() => {
                advance(&mut it, &mut line, &mut col);
            }
            ';' => {
                while let Some(&c) = it.peek() {
                    if c == '\n' {
                        break;
                    }
                    advance(&mut it, &mut line, &mut col);
                }
            }
            '(' => {
                advance(&mut it, &mut line, &mut col);
                toks.push(Token {
                    kind: TokKind::LParen,
                    line: tl,
                    col: tc,
                });
            }
            ')' => {
                advance(&mut it, &mut line, &mut col);
                toks.push(Token {
                    kind: TokKind::RParen,
                    line: tl,
                    col: tc,
                });
            }
            '{' => {
                advance(&mut it, &mut line, &mut col);
                toks.push(Token {
                    kind: TokKind::LBrace,
                    line: tl,
                    col: tc,
                });
            }
            '}' => {
                advance(&mut it, &mut line, &mut col);
                toks.push(Token {
                    kind: TokKind::RBrace,
                    line: tl,
                    col: tc,
                });
            }
            '^' => {
                advance(&mut it, &mut line, &mut col);
                let mut s = String::new();
                while let Some(&c) = it.peek() {
                    if is_sym_char(c) && c != '\\' {
                        s.push(advance(&mut it, &mut line, &mut col));
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(Ops5Error::Lex {
                        line: tl,
                        col: tc,
                        msg: "expected attribute name after ^".into(),
                    });
                }
                toks.push(Token {
                    kind: TokKind::Attr(s),
                    line: tl,
                    col: tc,
                });
            }
            '=' => {
                advance(&mut it, &mut line, &mut col);
                toks.push(Token {
                    kind: TokKind::Pred(PredTok::Eq),
                    line: tl,
                    col: tc,
                });
            }
            '>' => {
                advance(&mut it, &mut line, &mut col);
                if it.peek() == Some(&'>') {
                    advance(&mut it, &mut line, &mut col);
                    toks.push(Token {
                        kind: TokKind::RDisj,
                        line: tl,
                        col: tc,
                    });
                } else if it.peek() == Some(&'=') {
                    advance(&mut it, &mut line, &mut col);
                    toks.push(Token {
                        kind: TokKind::Pred(PredTok::Ge),
                        line: tl,
                        col: tc,
                    });
                } else {
                    toks.push(Token {
                        kind: TokKind::Pred(PredTok::Gt),
                        line: tl,
                        col: tc,
                    });
                }
            }
            '<' => {
                advance(&mut it, &mut line, &mut col);
                match it.peek() {
                    Some(&'<') => {
                        advance(&mut it, &mut line, &mut col);
                        toks.push(Token {
                            kind: TokKind::LDisj,
                            line: tl,
                            col: tc,
                        });
                    }
                    Some(&'>') => {
                        advance(&mut it, &mut line, &mut col);
                        toks.push(Token {
                            kind: TokKind::Pred(PredTok::Ne),
                            line: tl,
                            col: tc,
                        });
                    }
                    Some(&'=') => {
                        advance(&mut it, &mut line, &mut col);
                        if it.peek() == Some(&'>') {
                            advance(&mut it, &mut line, &mut col);
                            toks.push(Token {
                                kind: TokKind::Pred(PredTok::SameType),
                                line: tl,
                                col: tc,
                            });
                        } else {
                            toks.push(Token {
                                kind: TokKind::Pred(PredTok::Le),
                                line: tl,
                                col: tc,
                            });
                        }
                    }
                    Some(&c2) if c2.is_alphanumeric() || c2 == '_' => {
                        // A variable: <name>
                        let mut s = String::new();
                        let mut closed = false;
                        while let Some(&c3) = it.peek() {
                            if c3 == '>' {
                                advance(&mut it, &mut line, &mut col);
                                closed = true;
                                break;
                            }
                            if c3.is_whitespace() || c3 == '(' || c3 == ')' {
                                break;
                            }
                            s.push(advance(&mut it, &mut line, &mut col));
                        }
                        if !closed {
                            return Err(Ops5Error::Lex {
                                line: tl,
                                col: tc,
                                msg: format!("unterminated variable <{s}"),
                            });
                        }
                        toks.push(Token {
                            kind: TokKind::Var(s),
                            line: tl,
                            col: tc,
                        });
                    }
                    _ => {
                        toks.push(Token {
                            kind: TokKind::Pred(PredTok::Lt),
                            line: tl,
                            col: tc,
                        });
                    }
                }
            }
            '-' => {
                advance(&mut it, &mut line, &mut col);
                // `-->` arrow, `-5` number, otherwise Minus.
                if it.peek() == Some(&'-') {
                    let mut clone = it.clone();
                    clone.next();
                    if clone.peek() == Some(&'>') {
                        advance(&mut it, &mut line, &mut col);
                        advance(&mut it, &mut line, &mut col);
                        toks.push(Token {
                            kind: TokKind::Arrow,
                            line: tl,
                            col: tc,
                        });
                        continue;
                    }
                }
                if it.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let kind = lex_number(&mut it, &mut line, &mut col, true, tl, tc)?;
                    toks.push(Token {
                        kind,
                        line: tl,
                        col: tc,
                    });
                } else {
                    toks.push(Token {
                        kind: TokKind::Minus,
                        line: tl,
                        col: tc,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let kind = lex_number(&mut it, &mut line, &mut col, false, tl, tc)?;
                toks.push(Token {
                    kind,
                    line: tl,
                    col: tc,
                });
            }
            c if is_sym_char(c) => {
                let mut s = String::new();
                while let Some(&c2) = it.peek() {
                    if is_sym_char(c2) {
                        s.push(advance(&mut it, &mut line, &mut col));
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Sym(s),
                    line: tl,
                    col: tc,
                });
            }
            '|' => {
                // |quoted symbol| — may contain anything but `|`.
                advance(&mut it, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    match it.peek() {
                        Some(&'|') => {
                            advance(&mut it, &mut line, &mut col);
                            break;
                        }
                        Some(_) => s.push(advance(&mut it, &mut line, &mut col)),
                        None => {
                            return Err(Ops5Error::Lex {
                                line: tl,
                                col: tc,
                                msg: "unterminated |symbol|".into(),
                            })
                        }
                    }
                }
                toks.push(Token {
                    kind: TokKind::Sym(s),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(Ops5Error::Lex {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    toks.push(Token {
        kind: TokKind::Eof,
        line,
        col,
    });
    Ok(toks)
}

fn lex_number(
    it: &mut std::iter::Peekable<std::str::Chars>,
    _line: &mut u32,
    col: &mut u32,
    neg: bool,
    tl: u32,
    tc: u32,
) -> Result<TokKind> {
    let mut s = String::new();
    if neg {
        s.push('-');
    }
    let mut is_float = false;
    while let Some(&c) = it.peek() {
        if c.is_ascii_digit() {
            s.push(c);
        } else if c == '.' && !is_float {
            // Only a float if a digit follows; `3.` is the symbol-ish edge we
            // reject for simplicity.
            is_float = true;
            s.push(c);
        } else if (c == 'e' || c == 'E') && is_float {
            s.push(c);
        } else {
            break;
        }
        it.next();
        *col += 1;
    }
    if is_float {
        s.parse::<f64>()
            .map(TokKind::Float)
            .map_err(|e| Ops5Error::Lex {
                line: tl,
                col: tc,
                msg: format!("bad float {s}: {e}"),
            })
    } else {
        s.parse::<i64>()
            .map(TokKind::Int)
            .map_err(|e| Ops5Error::Lex {
                line: tl,
                col: tc,
                msg: format!("bad int {s}: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_production_tokens() {
        let ks = kinds("(p find (goal ^type find-block) --> (halt))");
        assert_eq!(ks[0], TokKind::LParen);
        assert_eq!(ks[1], TokKind::Sym("p".into()));
        assert_eq!(ks[2], TokKind::Sym("find".into()));
        assert!(ks.contains(&TokKind::Attr("type".into())));
        assert!(ks.contains(&TokKind::Arrow));
        assert!(ks.contains(&TokKind::Sym("find-block".into())));
    }

    #[test]
    fn variables_vs_predicates() {
        let ks = kinds("<x> < <= <> <=> >= > << >>");
        assert_eq!(
            ks,
            vec![
                TokKind::Var("x".into()),
                TokKind::Pred(PredTok::Lt),
                TokKind::Pred(PredTok::Le),
                TokKind::Pred(PredTok::Ne),
                TokKind::Pred(PredTok::SameType),
                TokKind::Pred(PredTok::Ge),
                TokKind::Pred(PredTok::Gt),
                TokKind::LDisj,
                TokKind::RDisj,
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 -4 3.5 -0.25"),
            vec![
                TokKind::Int(12),
                TokKind::Int(-4),
                TokKind::Float(3.5),
                TokKind::Float(-0.25),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn minus_and_arrow() {
        assert_eq!(
            kinds("- --> -"),
            vec![TokKind::Minus, TokKind::Arrow, TokKind::Minus, TokKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("foo ; a comment\nbar"),
            vec![
                TokKind::Sym("foo".into()),
                TokKind::Sym("bar".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn line_tracking() {
        let ts = lex("a\nb").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn braces_for_conjunction() {
        assert_eq!(
            kinds("{ > 2 < 5 }"),
            vec![
                TokKind::LBrace,
                TokKind::Pred(PredTok::Gt),
                TokKind::Int(2),
                TokKind::Pred(PredTok::Lt),
                TokKind::Int(5),
                TokKind::RBrace,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_symbol() {
        assert_eq!(
            kinds("|hello world|"),
            vec![TokKind::Sym("hello world".into()), TokKind::Eof]
        );
    }

    #[test]
    fn unterminated_var_is_error() {
        assert!(lex("<oops").is_err());
    }

    #[test]
    fn symbols_with_hyphens() {
        assert_eq!(
            kinds("find-colored-block"),
            vec![TokKind::Sym("find-colored-block".into()), TokKind::Eof]
        );
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

        /// The lexer must never panic: any input either tokenizes or
        /// reports a positioned error.
        #[test]
        fn lexer_total(src in "\\PC*") {
            let _ = lex(&src);
        }

        /// Lexing the rendering of arbitrary symbol-ish words roundtrips.
        #[test]
        fn symbols_roundtrip(words in proptest::collection::vec("[a-z][a-z0-9-]{0,10}", 1..8)) {
            let src = words.join(" ");
            let toks = lex(&src).unwrap();
            let syms: Vec<String> = toks
                .into_iter()
                .filter_map(|t| match t.kind {
                    TokKind::Sym(s) => Some(s),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(syms, words);
        }
    }
}

#[cfg(test)]
mod parser_fuzz {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

        /// The parser must never panic either.
        #[test]
        fn parser_total(src in "\\PC*") {
            let _ = crate::program::Program::from_source(&src);
        }

        /// Parenthesis soup specifically.
        #[test]
        fn paren_soup(src in "[()p\\-<>=^ a-z0-9{}]*") {
            let _ = crate::program::Program::from_source(&src);
        }
    }
}
