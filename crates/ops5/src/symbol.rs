//! Interned symbols.
//!
//! Every identifier that flows through the matcher — class names, attribute
//! names, symbolic constants — is interned once into a [`SymbolTable`] and
//! afterwards handled as a 4-byte [`SymbolId`]. All hot-path comparisons and
//! hashing work on the id, never the string, mirroring the paper's
//! "compiled" representation where symbols are machine words.

use std::collections::HashMap;
use std::fmt;

/// A 4-byte handle to an interned symbol.
///
/// Ids are dense, starting at 0, and stable for the life of the
/// [`SymbolTable`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

impl SymbolId {
    /// The distinguished `nil` symbol. A fresh [`SymbolTable`] always interns
    /// `nil` first, so this id is valid against any table.
    pub const NIL: SymbolId = SymbolId(0);

    /// Raw index, usable for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner. Owned by the control thread; match threads only ever
/// see `SymbolId`s.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    by_name: HashMap<String, SymbolId>,
    names: Vec<String>,
    gensym_counter: u64,
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolTable {
    /// Creates a table with `nil` pre-interned as [`SymbolId::NIL`].
    pub fn new() -> Self {
        let mut t = SymbolTable {
            by_name: HashMap::new(),
            names: Vec::new(),
            gensym_counter: 0,
        };
        let nil = t.intern("nil");
        debug_assert_eq!(nil, SymbolId::NIL);
        t
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned symbol without inserting.
    pub fn get(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// The name behind an id. Panics on a foreign id.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only `nil` is interned.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Generates a fresh unique symbol (`g1`, `g2`, ...), used by the RHS
    /// `bind` action with no expression (OPS5 `genatom` semantics).
    pub fn gensym(&mut self) -> SymbolId {
        loop {
            self.gensym_counter += 1;
            let name = format!("g{}", self.gensym_counter);
            if !self.by_name.contains_key(&name) {
                return self.intern(&name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_zero() {
        let t = SymbolTable::new();
        assert_eq!(t.name(SymbolId::NIL), "nil");
        assert_eq!(t.get("nil"), Some(SymbolId::NIL));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("goal");
        let b = t.intern("goal");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "goal");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
    }

    #[test]
    fn gensym_never_collides() {
        let mut t = SymbolTable::new();
        t.intern("g1");
        let g = t.gensym();
        assert_eq!(t.name(g), "g2");
        let g2 = t.gensym();
        assert_eq!(t.name(g2), "g3");
    }

    #[test]
    fn get_does_not_insert() {
        let t = SymbolTable::new();
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 1);
    }
}
