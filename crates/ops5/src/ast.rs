//! Production AST.
//!
//! This is the *semantic* form produced by the parser: attribute names are
//! already resolved to field indices against the program's class table, so
//! downstream network compilers never touch strings.

use crate::symbol::SymbolId;
use crate::value::{ArithOp, Pred, Value};

/// One test atom on an attribute: a constant or a variable reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TestAtom {
    Const(Value),
    /// Variable by name; binding/occurrence analysis happens at network
    /// compile time.
    Var(SymbolId),
}

/// A single predicate test on an attribute value.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueTest {
    pub pred: Pred,
    pub atom: TestAtom,
}

/// Everything tested on one attribute of a condition element.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrTest {
    /// A (possibly singleton) conjunction `{ t1 t2 ... }`.
    Conj(Vec<ValueTest>),
    /// Disjunction of constants `<< v1 v2 ... >>`.
    Disj(Vec<Value>),
}

/// A condition element: class, negation marker, and per-field tests.
#[derive(Debug, Clone, PartialEq)]
pub struct CondElem {
    pub class: SymbolId,
    pub negated: bool,
    /// (field index, test) pairs, in source order.
    pub tests: Vec<(u16, AttrTest)>,
}

/// RHS expression tree (`compute` bodies and plain values).
#[derive(Debug, Clone, PartialEq)]
pub enum RhsExpr {
    Const(Value),
    Var(SymbolId),
    Arith(ArithOp, Box<RhsExpr>, Box<RhsExpr>),
}

/// A plain RHS value (no arithmetic); used by `write`.
#[derive(Debug, Clone, PartialEq)]
pub enum RhsValue {
    Const(Value),
    Var(SymbolId),
}

/// One item of a `write` action.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteItem {
    Value(RhsValue),
    /// `(crlf)`
    Crlf,
}

/// An RHS action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    Make {
        class: SymbolId,
        sets: Vec<(u16, RhsExpr)>,
    },
    /// `ce` is the 1-based positive-CE index from the source, already
    /// validated to refer to a non-negated condition element.
    Modify {
        ce: u16,
        sets: Vec<(u16, RhsExpr)>,
    },
    Remove {
        ce: u16,
    },
    Write {
        items: Vec<WriteItem>,
    },
    /// `(bind <x> expr)`; with no expr, binds a gensym (OPS5 genatom).
    Bind {
        var: SymbolId,
        expr: Option<RhsExpr>,
    },
    Halt,
}

/// A complete production.
#[derive(Debug, Clone, PartialEq)]
pub struct Production {
    pub name: SymbolId,
    pub lhs: Vec<CondElem>,
    pub rhs: Vec<Action>,
}

impl Production {
    /// Number of positive (non-negated) condition elements; the length of an
    /// instantiation token for this production.
    pub fn positive_ces(&self) -> usize {
        self.lhs.iter().filter(|ce| !ce.negated).count()
    }

    /// Maps a 1-based *source CE index* (counting only positive CEs, the way
    /// `modify 2` counts) to the index within the instantiation's WME list.
    /// Identity in our representation, but kept as a named helper so call
    /// sites document intent.
    pub fn positive_index(&self, source_idx: u16) -> Option<usize> {
        let idx = source_idx as usize;
        if idx >= 1 && idx <= self.positive_ces() {
            Some(idx - 1)
        } else {
            None
        }
    }

    /// OPS5 specificity: the number of tests in the LHS (used by conflict
    /// resolution for tie-breaking).
    pub fn specificity(&self) -> u32 {
        let mut n = 0u32;
        for ce in &self.lhs {
            n += 1; // class test
            for (_, t) in &ce.tests {
                n += match t {
                    AttrTest::Conj(ts) => ts.len() as u32,
                    AttrTest::Disj(_) => 1,
                };
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ce(negated: bool) -> CondElem {
        CondElem {
            class: SymbolId(1),
            negated,
            tests: vec![],
        }
    }

    #[test]
    fn positive_ce_counting() {
        let p = Production {
            name: SymbolId(9),
            lhs: vec![ce(false), ce(true), ce(false)],
            rhs: vec![],
        };
        assert_eq!(p.positive_ces(), 2);
        assert_eq!(p.positive_index(1), Some(0));
        assert_eq!(p.positive_index(2), Some(1));
        assert_eq!(p.positive_index(3), None);
        assert_eq!(p.positive_index(0), None);
    }

    #[test]
    fn specificity_counts_tests() {
        let p = Production {
            name: SymbolId(9),
            lhs: vec![CondElem {
                class: SymbolId(1),
                negated: false,
                tests: vec![
                    (
                        0,
                        AttrTest::Conj(vec![
                            ValueTest {
                                pred: Pred::Gt,
                                atom: TestAtom::Const(Value::Int(2)),
                            },
                            ValueTest {
                                pred: Pred::Lt,
                                atom: TestAtom::Const(Value::Int(5)),
                            },
                        ]),
                    ),
                    (1, AttrTest::Disj(vec![Value::Int(1), Value::Int(2)])),
                ],
            }],
            rhs: vec![],
        };
        // 1 class + 2 conj + 1 disj
        assert_eq!(p.specificity(), 4);
    }
}
