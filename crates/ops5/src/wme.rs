//! Working-memory elements.
//!
//! A WME is immutable once created (OPS5 `modify` is compiled to a
//! remove-plus-make, exactly as in the paper, where a modify is "treated as a
//! delete followed by an add"). WMEs are shared between the control process
//! and the match processes via `Arc`, standing in for the paper's
//! same-virtual-address shared-memory tokens.

use crate::symbol::{SymbolId, SymbolTable};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A working-memory element: a class plus a fixed-arity field vector.
///
/// The `timetag` is the OPS5 timetag: a unique, monotonically increasing
/// stamp assigned when the element enters working memory. It doubles as the
/// WME's identity for token bookkeeping (two structurally equal WMEs made at
/// different times are distinct elements).
#[derive(Debug)]
pub struct Wme {
    pub class: SymbolId,
    pub fields: Box<[Value]>,
    pub timetag: u64,
}

/// Shared handle to an immutable WME.
pub type WmeRef = Arc<Wme>;

impl Wme {
    pub fn new(class: SymbolId, fields: Vec<Value>, timetag: u64) -> WmeRef {
        Arc::new(Wme {
            class,
            fields: fields.into_boxed_slice(),
            timetag,
        })
    }

    /// Field accessor; out-of-range fields read as `nil`, matching OPS5's
    /// "unset attributes are nil" semantics.
    #[inline]
    pub fn field(&self, idx: u16) -> Value {
        self.fields.get(idx as usize).copied().unwrap_or(Value::NIL)
    }

    /// Renders like `(class ^attr val ...)` given the class's attribute
    /// names.
    pub fn display<'a>(
        &'a self,
        syms: &'a SymbolTable,
        attr_names: &'a [SymbolId],
    ) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Wme, &'a SymbolTable, &'a [SymbolId]);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "({}", self.1.name(self.0.class))?;
                for (i, v) in self.0.fields.iter().enumerate() {
                    if v.is_nil() {
                        continue;
                    }
                    if let Some(a) = self.2.get(i) {
                        write!(f, " ^{} {}", self.1.name(*a), v.display(self.1))?;
                    } else {
                        write!(f, " ^{} {}", i, v.display(self.1))?;
                    }
                }
                write!(f, ")")
            }
        }
        D(self, syms, attr_names)
    }
}

/// Structural equality check used by tests and the `remove`-by-content path.
pub fn wme_content_eq(a: &Wme, b: &Wme) -> bool {
    a.class == b.class && a.fields == b.fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn out_of_range_field_is_nil() {
        let mut t = SymbolTable::new();
        let c = t.intern("goal");
        let w = Wme::new(c, vec![Value::Int(1)], 1);
        assert_eq!(w.field(0), Value::Int(1));
        assert!(w.field(5).is_nil());
    }

    #[test]
    fn content_eq_ignores_timetag() {
        let mut t = SymbolTable::new();
        let c = t.intern("goal");
        let a = Wme::new(c, vec![Value::Int(1)], 1);
        let b = Wme::new(c, vec![Value::Int(1)], 2);
        assert!(wme_content_eq(&a, &b));
        assert_ne!(a.timetag, b.timetag);
    }

    #[test]
    fn display_skips_nil_fields() {
        let mut t = SymbolTable::new();
        let c = t.intern("goal");
        let ty = t.intern("type");
        let color = t.intern("color");
        let red = t.intern("red");
        let w = Wme::new(c, vec![Value::NIL, Value::Sym(red)], 3);
        let s = format!("{}", w.display(&t, &[ty, color]));
        assert_eq!(s, "(goal ^color red)");
    }
}
