//! The matcher API: the contract between the recognize-act interpreter (the
//! paper's *control process*) and any match engine.
//!
//! Four engines implement this in the workspace: the sequential Rete with
//! list memories (*vs1*), the sequential Rete with global hash-table
//! memories (*vs2*), the interpretive `lispsim` baseline, and the parallel
//! PSM-E matcher. The interpreter pipelines WME changes into the matcher as
//! RHS evaluation computes them (`submit`), then blocks for quiescence
//! (`quiesce`) before conflict resolution — exactly the structure of §3.1 of
//! the paper.

use crate::program::ProdId;
use crate::wme::WmeRef;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Add or delete, the paper's `+`/`−` token tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    Plus,
    Minus,
}

impl Sign {
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// One working-memory change flowing into the match network.
#[derive(Debug, Clone)]
pub struct WmeChange {
    pub sign: Sign,
    pub wme: WmeRef,
}

/// A satisfied production instance: the production plus the WMEs matched by
/// its positive condition elements, in CE order.
#[derive(Debug, Clone)]
pub struct Instantiation {
    pub prod: ProdId,
    pub wmes: Vec<WmeRef>,
}

impl Instantiation {
    /// Identity key: production + matched timetags. Two instantiations are
    /// the same iff they fire the same rule on the same elements.
    pub fn key(&self) -> (ProdId, Vec<u64>) {
        (self.prod, self.wmes.iter().map(|w| w.timetag).collect())
    }
}

impl PartialEq for Instantiation {
    fn eq(&self, other: &Self) -> bool {
        self.prod == other.prod
            && self.wmes.len() == other.wmes.len()
            && self
                .wmes
                .iter()
                .zip(&other.wmes)
                .all(|(a, b)| a.timetag == b.timetag)
    }
}
impl Eq for Instantiation {}

/// A conflict-set delta emitted by the match phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsChange {
    Insert(Instantiation),
    Remove(Instantiation),
}

/// Match-phase statistics, the raw material for Tables 4-1, 4-2, 4-3 and the
/// task-length analysis in §5.
///
/// "Opposite memory" statistics are recorded per two-input-node activation
/// *whose opposite memory is non-empty* (the paper's Table 4-2 counts only
/// those); "same memory" statistics are recorded per delete request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// WME changes submitted to the network.
    pub wme_changes: u64,
    /// Total node activations processed (tasks, in the parallel framing).
    pub activations: u64,
    /// Constant-test node activations (grouped into tasks separately).
    pub alpha_activations: u64,

    /// Σ tokens examined in the opposite memory, for left activations.
    pub opp_tokens_left: u64,
    /// Number of left activations with a non-empty opposite memory.
    pub opp_nonempty_left: u64,
    /// Σ tokens examined in the opposite memory, for right activations.
    pub opp_tokens_right: u64,
    /// Number of right activations with a non-empty opposite memory.
    pub opp_nonempty_right: u64,

    /// Σ tokens examined in the same memory to locate a delete target, left.
    pub same_tokens_left: u64,
    /// Number of left delete searches.
    pub same_searches_left: u64,
    /// Σ tokens examined in the same memory to locate a delete target, right.
    pub same_tokens_right: u64,
    /// Number of right delete searches.
    pub same_searches_right: u64,

    /// Conflict-set insert/remove operations.
    pub cs_changes: u64,
    /// Conjugate token pairs annihilated (parallel matcher only).
    pub conjugate_pairs: u64,
}

impl MatchStats {
    /// Mean tokens examined in the opposite memory per left activation
    /// (over activations with non-empty opposite memory), Table 4-2 style.
    pub fn avg_opp_left(&self) -> f64 {
        ratio(self.opp_tokens_left, self.opp_nonempty_left)
    }
    pub fn avg_opp_right(&self) -> f64 {
        ratio(self.opp_tokens_right, self.opp_nonempty_right)
    }
    /// Mean tokens examined in the same memory per delete, Table 4-3 style.
    pub fn avg_same_left(&self) -> f64 {
        ratio(self.same_tokens_left, self.same_searches_left)
    }
    pub fn avg_same_right(&self) -> f64 {
        ratio(self.same_tokens_right, self.same_searches_right)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for MatchStats {
    type Output = MatchStats;
    fn add(self, o: MatchStats) -> MatchStats {
        MatchStats {
            wme_changes: self.wme_changes + o.wme_changes,
            activations: self.activations + o.activations,
            alpha_activations: self.alpha_activations + o.alpha_activations,
            opp_tokens_left: self.opp_tokens_left + o.opp_tokens_left,
            opp_nonempty_left: self.opp_nonempty_left + o.opp_nonempty_left,
            opp_tokens_right: self.opp_tokens_right + o.opp_tokens_right,
            opp_nonempty_right: self.opp_nonempty_right + o.opp_nonempty_right,
            same_tokens_left: self.same_tokens_left + o.same_tokens_left,
            same_searches_left: self.same_searches_left + o.same_searches_left,
            same_tokens_right: self.same_tokens_right + o.same_tokens_right,
            same_searches_right: self.same_searches_right + o.same_searches_right,
            cs_changes: self.cs_changes + o.cs_changes,
            conjugate_pairs: self.conjugate_pairs + o.conjugate_pairs,
        }
    }
}

impl AddAssign for MatchStats {
    fn add_assign(&mut self, o: MatchStats) {
        *self = *self + o;
    }
}

/// A match engine.
///
/// Lifecycle per recognize-act cycle: zero or more `submit` calls (the
/// control process pushes changes as RHS evaluation produces them), then one
/// `quiesce` that blocks until the match phase is complete and returns the
/// conflict-set deltas. Engines may process eagerly inside `submit`
/// (sequential engines do) or defer to worker threads (PSM-E does).
pub trait Matcher: Send {
    /// Feed one WME change into the network. May return immediately.
    fn submit(&mut self, change: WmeChange);

    /// Block until the match phase completes; drain and return the
    /// conflict-set deltas produced since the previous `quiesce`.
    fn quiesce(&mut self) -> Vec<CsChange>;

    /// Cumulative statistics since construction or the last `reset_stats`.
    fn stats(&self) -> MatchStats;

    /// Zero the statistics counters.
    fn reset_stats(&mut self);

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolId;
    use crate::value::Value;
    use crate::wme::Wme;

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
    }

    #[test]
    fn instantiation_identity_is_timetags() {
        let w1 = Wme::new(SymbolId(1), vec![Value::Int(1)], 10);
        let w1b = Wme::new(SymbolId(1), vec![Value::Int(1)], 10);
        let w2 = Wme::new(SymbolId(1), vec![Value::Int(1)], 11);
        let a = Instantiation { prod: ProdId(0), wmes: vec![w1] };
        let b = Instantiation { prod: ProdId(0), wmes: vec![w1b] };
        let c = Instantiation { prod: ProdId(0), wmes: vec![w2] };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stats_averages() {
        let s = MatchStats {
            opp_tokens_left: 30,
            opp_nonempty_left: 10,
            ..Default::default()
        };
        assert!((s.avg_opp_left() - 3.0).abs() < 1e-12);
        assert_eq!(s.avg_opp_right(), 0.0);
    }

    #[test]
    fn stats_add() {
        let a = MatchStats { wme_changes: 1, activations: 2, ..Default::default() };
        let b = MatchStats { wme_changes: 3, activations: 4, ..Default::default() };
        let c = a + b;
        assert_eq!(c.wme_changes, 4);
        assert_eq!(c.activations, 6);
    }
}
