//! The matcher API: the contract between the recognize-act interpreter (the
//! paper's *control process*) and any match engine.
//!
//! Four engines implement this in the workspace: the sequential Rete with
//! list memories (*vs1*), the sequential Rete with global hash-table
//! memories (*vs2*), the interpretive `lispsim` baseline, and the parallel
//! PSM-E matcher. The interpreter pipelines WME changes into the matcher as
//! RHS evaluation computes them (`submit`), then blocks for quiescence
//! (`quiesce`) before conflict resolution — exactly the structure of §3.1 of
//! the paper.

use crate::program::ProdId;
use crate::symbol::SymbolId;
use crate::wme::WmeRef;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Add or delete, the paper's `+`/`−` token tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    Plus,
    Minus,
}

impl Sign {
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// One working-memory change flowing into the match network.
#[derive(Debug, Clone)]
pub struct WmeChange {
    pub sign: Sign,
    pub wme: WmeRef,
}

/// A batch of WME changes submitted to a matcher as one unit — the
/// ingestion granularity of the batched match pipeline.
///
/// The control process accumulates every change a production firing
/// produces (a `modify` contributes a delete *and* an add) into one
/// `ChangeBatch` and ships the whole batch with a single
/// [`Matcher::submit`] call, amortizing per-call scheduling, locking, and
/// constant-test dispatch. Batches apply three normalizations as changes
/// are pushed:
///
/// 1. **Conjugate-pair annihilation.** A delete whose timetag matches an
///    add still pending in the same batch cancels it: both changes vanish
///    before the network ever sees a token. (Timetags are unique, so the
///    reverse order — delete before add of the same tag — cannot occur.)
///    The number of cancelled pairs is reported by [`annihilated`] and
///    rolled into the matcher's `conjugate_pairs` statistic.
/// 2. **Per-class grouping.** Changes are bucketed by WME class so that
///    one batch entry drives one alpha-chain walk: a matcher visits the
///    constant-test patterns of a class once per *group*, not once per
///    change — the paper's "small groups of constant-test node
///    activations constitute a task". Groups preserve the first-appearance
///    order of classes; changes within a group preserve submission order
///    (except when an annihilation back-fills a hole).
/// 3. **Coalescing requires distinct elements.** Reordering across groups
///    is sound because changes to *distinct* WMEs commute in the final
///    match state; changes to the *same* WME are exactly the
///    add-then-delete pairs rule 1 removes. Callers must not push the same
///    signed change twice (the engine's working memory guards this).
///
/// [`annihilated`]: ChangeBatch::annihilated
#[derive(Debug, Clone, Default)]
pub struct ChangeBatch {
    /// Per-class groups in first-appearance order of the class.
    groups: Vec<(SymbolId, Vec<WmeChange>)>,
    /// Class → index into `groups`.
    class_index: HashMap<SymbolId, usize>,
    /// Timetag → (group, position) of a pending add, for annihilation.
    pending_adds: HashMap<u64, (usize, usize)>,
    /// Conjugate pairs cancelled inside this batch.
    annihilated: u64,
    /// Live changes across all groups.
    len: usize,
}

impl ChangeBatch {
    pub fn new() -> ChangeBatch {
        ChangeBatch::default()
    }

    /// A batch holding a single change.
    pub fn from_change(change: WmeChange) -> ChangeBatch {
        let mut b = ChangeBatch::new();
        b.push(change);
        b
    }

    /// Fast path for a one-change batch: builds the single per-class group
    /// directly, skipping the `class_index` and `pending_adds` bookkeeping
    /// that [`push`](Self::push) maintains for grouping and conjugate-pair
    /// annihilation — neither can apply to a lone change.
    ///
    /// The returned batch is intended for immediate submission. Pushing
    /// further changes onto it stays *semantically* correct (the flattened
    /// change order is preserved), but a second change of the same class
    /// lands in a fresh group and a conjugate delete is not annihilated;
    /// use [`from_change`](Self::from_change) when the batch will grow.
    pub fn single(change: WmeChange) -> ChangeBatch {
        ChangeBatch {
            groups: vec![(change.wme.class, vec![change])],
            class_index: HashMap::new(),
            pending_adds: HashMap::new(),
            annihilated: 0,
            len: 1,
        }
    }

    /// Pushes one change, applying the coalescing rules above.
    pub fn push(&mut self, change: WmeChange) {
        let tag = change.wme.timetag;
        if change.sign == Sign::Minus {
            if let Some((g, pos)) = self.pending_adds.remove(&tag) {
                // Annihilate: the pending add and this delete cancel.
                let group = &mut self.groups[g].1;
                group.swap_remove(pos);
                if let Some(moved) = group.get(pos) {
                    // The former last element now sits at `pos`; fix its
                    // index if it is a tracked add.
                    if moved.sign == Sign::Plus {
                        self.pending_adds.insert(moved.wme.timetag, (g, pos));
                    }
                }
                self.annihilated += 1;
                self.len -= 1;
                return;
            }
        }
        let class = change.wme.class;
        let g = match self.class_index.get(&class) {
            Some(&g) => g,
            None => {
                let g = self.groups.len();
                self.groups.push((class, Vec::new()));
                self.class_index.insert(class, g);
                g
            }
        };
        if change.sign == Sign::Plus {
            self.pending_adds.insert(tag, (g, self.groups[g].1.len()));
        }
        self.groups[g].1.push(change);
        self.len += 1;
    }

    /// Convenience: push an add.
    pub fn add(&mut self, wme: WmeRef) {
        self.push(WmeChange {
            sign: Sign::Plus,
            wme,
        });
    }

    /// Convenience: push a delete.
    pub fn delete(&mut self, wme: WmeRef) {
        self.push(WmeChange {
            sign: Sign::Minus,
            wme,
        });
    }

    /// Live changes in the batch (after annihilation).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Conjugate add/delete pairs cancelled inside this batch.
    pub fn annihilated(&self) -> u64 {
        self.annihilated
    }

    /// Number of non-empty per-class groups.
    pub fn group_count(&self) -> usize {
        self.groups.iter().filter(|(_, g)| !g.is_empty()).count()
    }

    /// Per-class groups in first-appearance order. Groups emptied by
    /// annihilation are skipped.
    pub fn groups(&self) -> impl Iterator<Item = (SymbolId, &[WmeChange])> {
        self.groups
            .iter()
            .filter(|(_, g)| !g.is_empty())
            .map(|(c, g)| (*c, g.as_slice()))
    }

    /// All live changes, flattened in group order.
    pub fn iter(&self) -> impl Iterator<Item = &WmeChange> {
        self.groups.iter().flat_map(|(_, g)| g.iter())
    }

    /// Empties the batch for reuse, keeping allocations.
    pub fn clear(&mut self) {
        self.groups.clear();
        self.class_index.clear();
        self.pending_adds.clear();
        self.annihilated = 0;
        self.len = 0;
    }
}

impl FromIterator<WmeChange> for ChangeBatch {
    fn from_iter<I: IntoIterator<Item = WmeChange>>(iter: I) -> ChangeBatch {
        let mut b = ChangeBatch::new();
        for c in iter {
            b.push(c);
        }
        b
    }
}

/// A satisfied production instance: the production plus the WMEs matched by
/// its positive condition elements, in CE order.
#[derive(Debug, Clone)]
pub struct Instantiation {
    pub prod: ProdId,
    pub wmes: Vec<WmeRef>,
}

impl Instantiation {
    /// Identity key: production + matched timetags. Two instantiations are
    /// the same iff they fire the same rule on the same elements.
    pub fn key(&self) -> (ProdId, Vec<u64>) {
        (self.prod, self.wmes.iter().map(|w| w.timetag).collect())
    }
}

impl PartialEq for Instantiation {
    fn eq(&self, other: &Self) -> bool {
        self.prod == other.prod
            && self.wmes.len() == other.wmes.len()
            && self
                .wmes
                .iter()
                .zip(&other.wmes)
                .all(|(a, b)| a.timetag == b.timetag)
    }
}
impl Eq for Instantiation {}

/// A conflict-set delta emitted by the match phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsChange {
    Insert(Instantiation),
    Remove(Instantiation),
}

/// Match-phase statistics, the raw material for Tables 4-1, 4-2, 4-3 and the
/// task-length analysis in §5.
///
/// "Opposite memory" statistics are recorded per two-input-node activation
/// *whose opposite memory is non-empty* (the paper's Table 4-2 counts only
/// those); "same memory" statistics are recorded per delete request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// WME changes submitted to the network.
    pub wme_changes: u64,
    /// Total node activations processed (tasks, in the parallel framing).
    pub activations: u64,
    /// Constant-test node activations (grouped into tasks separately).
    pub alpha_activations: u64,

    /// Σ tokens examined in the opposite memory, for left activations.
    pub opp_tokens_left: u64,
    /// Number of left activations with a non-empty opposite memory.
    pub opp_nonempty_left: u64,
    /// Σ tokens examined in the opposite memory, for right activations.
    pub opp_tokens_right: u64,
    /// Number of right activations with a non-empty opposite memory.
    pub opp_nonempty_right: u64,

    /// Σ tokens examined in the same memory to locate a delete target, left.
    pub same_tokens_left: u64,
    /// Number of left delete searches.
    pub same_searches_left: u64,
    /// Σ tokens examined in the same memory to locate a delete target, right.
    pub same_tokens_right: u64,
    /// Number of right delete searches.
    pub same_searches_right: u64,

    /// Conflict-set insert/remove operations.
    pub cs_changes: u64,
    /// Conjugate token pairs annihilated (parallel matcher only).
    pub conjugate_pairs: u64,

    /// Two-input (join) node activations: every Left/Right task delivered
    /// to a join, whether or not its scan was performed. With beta-prefix
    /// sharing this is the counter that shrinks.
    pub join_activations: u64,
    /// Join activations *performed* whose opposite memory was empty
    /// network-wide (null activations). With unlinking these become
    /// `null_skipped` instead.
    pub null_activations: u64,
    /// Opposite-memory scans skipped by the unlinking emptiness gate.
    pub null_skipped: u64,
}

impl MatchStats {
    /// Mean tokens examined in the opposite memory per left activation
    /// (over activations with non-empty opposite memory), Table 4-2 style.
    pub fn avg_opp_left(&self) -> f64 {
        ratio(self.opp_tokens_left, self.opp_nonempty_left)
    }
    pub fn avg_opp_right(&self) -> f64 {
        ratio(self.opp_tokens_right, self.opp_nonempty_right)
    }
    /// Mean tokens examined in the same memory per delete, Table 4-3 style.
    pub fn avg_same_left(&self) -> f64 {
        ratio(self.same_tokens_left, self.same_searches_left)
    }
    pub fn avg_same_right(&self) -> f64 {
        ratio(self.same_tokens_right, self.same_searches_right)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Applies a macro to every counter field of `MatchStats`.
macro_rules! for_each_stat {
    ($m:ident, $($args:tt)*) => {
        $m! { $($args)*;
            wme_changes, activations, alpha_activations,
            opp_tokens_left, opp_nonempty_left, opp_tokens_right, opp_nonempty_right,
            same_tokens_left, same_searches_left, same_tokens_right, same_searches_right,
            cs_changes, conjugate_pairs,
            join_activations, null_activations, null_skipped
        }
    };
}

macro_rules! stats_binop {
    ($a:ident, $b:ident, $op:ident; $($field:ident),+) => {
        MatchStats { $($field: $a.$field.$op($b.$field)),+ }
    };
}

impl Add for MatchStats {
    type Output = MatchStats;
    fn add(self, o: MatchStats) -> MatchStats {
        for_each_stat!(stats_binop, self, o, wrapping_add)
    }
}

impl AddAssign for MatchStats {
    fn add_assign(&mut self, o: MatchStats) {
        *self = *self + o;
    }
}

/// Counter-wise difference (saturating), for `stats_delta` reporting.
impl Sub for MatchStats {
    type Output = MatchStats;
    fn sub(self, o: MatchStats) -> MatchStats {
        for_each_stat!(stats_binop, self, o, saturating_sub)
    }
}

/// Tracks the statistics snapshot taken at the previous quiesce so a
/// matcher can report per-cycle deltas. Every engine embeds one.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsDeltaTracker {
    last: MatchStats,
}

impl StatsDeltaTracker {
    /// Returns the delta from the previous call and re-snapshots.
    pub fn take(&mut self, now: MatchStats) -> MatchStats {
        let delta = now - self.last;
        self.last = now;
        delta
    }

    /// Forgets the snapshot (call from `reset_stats`).
    pub fn reset(&mut self) {
        self.last = MatchStats::default();
    }
}

/// Recognize-act phase durations for one cycle, in nanoseconds.
///
/// Matchers report `None`; the *engine* driving them measures the phases
/// (it owns the match/resolve/act boundaries) and attaches the timings to
/// the report while also recording them into its latency histograms when
/// observability is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// flush staged changes + matcher quiesce + conflict-set fold-in.
    pub match_ns: u64,
    /// Conflict resolution (`select` + `mark_fired`).
    pub resolve_ns: u64,
    /// RHS execution of the winning instantiation.
    pub act_ns: u64,
}

/// What one `quiesce` produced: the conflict-set deltas of the completed
/// match phase plus the statistics delta since the previous quiesce.
///
/// Bundling the two closes a race in the old five-method API, where
/// callers pairing `quiesce()` with a separate `stats()` call could
/// observe counters from a neighbouring cycle.
#[derive(Debug, Clone, Default)]
pub struct QuiesceReport {
    /// Conflict-set inserts/removes produced since the previous quiesce.
    pub cs_changes: Vec<CsChange>,
    /// Statistics accumulated since the previous quiesce.
    pub stats_delta: MatchStats,
    /// Phase timings, filled in by the driving engine (`None` from raw
    /// matchers and when observability is disabled).
    pub phase: Option<PhaseNanos>,
}

/// A match engine.
///
/// Lifecycle per recognize-act cycle: zero or more `submit` calls (the
/// control process ships each production firing's changes as one
/// [`ChangeBatch`]), then one `quiesce` that blocks until the match phase
/// is complete and returns the conflict-set deltas plus the cycle's
/// statistics. Engines may process eagerly inside `submit` (sequential
/// engines do) or defer to worker threads (PSM-E does).
pub trait Matcher: Send {
    /// Feed a batch of WME changes into the network. May return
    /// immediately.
    fn submit(&mut self, batch: &ChangeBatch);

    /// Block until the match phase completes; drain and return the
    /// conflict-set deltas and statistics produced since the previous
    /// `quiesce`.
    fn quiesce(&mut self) -> QuiesceReport;

    /// Cumulative statistics since construction or the last `reset_stats`.
    fn stats(&self) -> MatchStats;

    /// Zero the statistics counters.
    fn reset_stats(&mut self);

    /// Human-readable engine name for reports.
    fn name(&self) -> &'static str;

    /// Turns on observability: the matcher builds its per-node profile and
    /// registers any additional instruments (worker latency histograms,
    /// lock-contention counters...) into `registry`. Called at most once,
    /// before the first `submit`. The default is a no-op — a matcher
    /// without instrumentation (the trace matcher, test doubles) stays
    /// byte-for-byte on its old paths.
    fn enable_obs(&mut self, _registry: &std::sync::Arc<obs::Registry>) {}

    /// The per-join-node activation/scan profile, when observability is
    /// enabled and the matcher supports it.
    fn node_profile(&self) -> Option<std::sync::Arc<obs::NodeProfile>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolId;
    use crate::value::Value;
    use crate::wme::Wme;

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
    }

    #[test]
    fn instantiation_identity_is_timetags() {
        let w1 = Wme::new(SymbolId(1), vec![Value::Int(1)], 10);
        let w1b = Wme::new(SymbolId(1), vec![Value::Int(1)], 10);
        let w2 = Wme::new(SymbolId(1), vec![Value::Int(1)], 11);
        let a = Instantiation {
            prod: ProdId(0),
            wmes: vec![w1],
        };
        let b = Instantiation {
            prod: ProdId(0),
            wmes: vec![w1b],
        };
        let c = Instantiation {
            prod: ProdId(0),
            wmes: vec![w2],
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stats_averages() {
        let s = MatchStats {
            opp_tokens_left: 30,
            opp_nonempty_left: 10,
            ..Default::default()
        };
        assert!((s.avg_opp_left() - 3.0).abs() < 1e-12);
        assert_eq!(s.avg_opp_right(), 0.0);
    }

    #[test]
    fn stats_add() {
        let a = MatchStats {
            wme_changes: 1,
            activations: 2,
            ..Default::default()
        };
        let b = MatchStats {
            wme_changes: 3,
            activations: 4,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.wme_changes, 4);
        assert_eq!(c.activations, 6);
    }

    #[test]
    fn stats_sub_and_delta_tracker() {
        let a = MatchStats {
            wme_changes: 5,
            cs_changes: 2,
            ..Default::default()
        };
        let b = MatchStats {
            wme_changes: 8,
            cs_changes: 2,
            ..Default::default()
        };
        let d = b - a;
        assert_eq!(d.wme_changes, 3);
        assert_eq!(d.cs_changes, 0);

        let mut t = StatsDeltaTracker::default();
        assert_eq!(t.take(a).wme_changes, 5);
        assert_eq!(t.take(b).wme_changes, 3);
        assert_eq!(t.take(b).wme_changes, 0);
    }

    fn wme(class: u32, tag: u64) -> WmeRef {
        Wme::new(SymbolId(class), vec![Value::Int(tag as i64)], tag)
    }

    #[test]
    fn batch_groups_by_class_in_first_appearance_order() {
        let mut b = ChangeBatch::new();
        b.add(wme(2, 1));
        b.add(wme(1, 2));
        b.add(wme(2, 3));
        b.delete(wme(1, 99)); // delete of an element from an earlier cycle
        assert_eq!(b.len(), 4);
        assert_eq!(b.group_count(), 2);
        let groups: Vec<(SymbolId, usize)> = b.groups().map(|(c, g)| (c, g.len())).collect();
        assert_eq!(groups, vec![(SymbolId(2), 2), (SymbolId(1), 2)]);
        // Flattened iteration follows group order.
        let tags: Vec<u64> = b.iter().map(|c| c.wme.timetag).collect();
        assert_eq!(tags, vec![1, 3, 2, 99]);
    }

    #[test]
    fn batch_annihilates_conjugate_pairs() {
        let mut b = ChangeBatch::new();
        b.add(wme(1, 10));
        b.add(wme(1, 11));
        b.delete(wme(1, 10)); // cancels the pending add of tag 10
        assert_eq!(b.len(), 1);
        assert_eq!(b.annihilated(), 1);
        let tags: Vec<u64> = b.iter().map(|c| c.wme.timetag).collect();
        assert_eq!(tags, vec![11]);
    }

    #[test]
    fn batch_annihilation_can_empty_a_group() {
        let mut b = ChangeBatch::new();
        b.add(wme(3, 20));
        b.delete(wme(3, 20));
        assert!(b.is_empty());
        assert_eq!(b.group_count(), 0);
        assert_eq!(b.groups().count(), 0);
        assert_eq!(b.annihilated(), 1);
    }

    #[test]
    fn batch_annihilation_repairs_swap_index() {
        // Three pending adds; annihilating the first moves the last into
        // its slot. A later delete of the moved add must still annihilate.
        let mut b = ChangeBatch::new();
        b.add(wme(1, 1));
        b.add(wme(1, 2));
        b.add(wme(1, 3));
        b.delete(wme(1, 1));
        b.delete(wme(1, 3));
        assert_eq!(b.annihilated(), 2);
        let tags: Vec<u64> = b.iter().map(|c| c.wme.timetag).collect();
        assert_eq!(tags, vec![2]);
    }

    #[test]
    fn batch_from_iterator_and_clear() {
        let changes = vec![
            WmeChange {
                sign: Sign::Plus,
                wme: wme(1, 1),
            },
            WmeChange {
                sign: Sign::Minus,
                wme: wme(1, 1),
            },
            WmeChange {
                sign: Sign::Plus,
                wme: wme(2, 2),
            },
        ];
        let mut b: ChangeBatch = changes.into_iter().collect();
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.annihilated(), 0);
    }

    #[test]
    fn from_change_is_singleton() {
        let b = ChangeBatch::from_change(WmeChange {
            sign: Sign::Minus,
            wme: wme(1, 7),
        });
        assert_eq!(b.len(), 1);
        assert_eq!(b.group_count(), 1);
    }

    #[test]
    fn single_matches_from_change_observably() {
        for sign in [Sign::Plus, Sign::Minus] {
            let c = WmeChange {
                sign,
                wme: wme(3, 9),
            };
            let fast = ChangeBatch::single(c.clone());
            let slow = ChangeBatch::from_change(c);
            assert_eq!(fast.len(), slow.len());
            assert_eq!(fast.group_count(), slow.group_count());
            assert_eq!(fast.annihilated(), slow.annihilated());
            let f: Vec<(SymbolId, Sign, u64)> = fast
                .iter()
                .map(|c| (c.wme.class, c.sign, c.wme.timetag))
                .collect();
            let s: Vec<(SymbolId, Sign, u64)> = slow
                .iter()
                .map(|c| (c.wme.class, c.sign, c.wme.timetag))
                .collect();
            assert_eq!(f, s);
        }
    }

    #[test]
    fn pushing_onto_single_keeps_change_order() {
        // Not the intended use, but must stay semantically sound: the
        // flattened order still replays add-before-delete.
        let mut b = ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: wme(1, 1),
        });
        b.delete(wme(1, 1));
        let flat: Vec<(Sign, u64)> = b.iter().map(|c| (c.sign, c.wme.timetag)).collect();
        assert_eq!(flat, vec![(Sign::Plus, 1), (Sign::Minus, 1)]);
    }
}
