//! Static act-phase footprints.
//!
//! The parallel act phase fires groups of conflict-set instantiations whose
//! effects provably cannot interfere. Because RHS threaded code is
//! straight-line (no branches), everything a firing can do to working memory
//! is known *statically* per production:
//!
//! * which classes it asserts (`make`, plus the make half of `modify`),
//! * which positive CEs it consumes (`remove`, plus the remove half of
//!   `modify`) — at fire time these resolve to exact timetags, because
//!   removals always target matched-CE WMEs,
//! * how many gensyms it draws (`bind` with no expression), and
//! * whether it halts.
//!
//! On the read side each production's LHS contributes the classes (and
//! tested attributes) it depends on, split into positive and negated
//! occurrences. A production is *fertile* when firing it could create or
//! dominate new instantiations mid-group: it makes a class some production
//! reads, or it retracts a class some production tests negatively (negation
//! unblocking). Group selection only ever places a fertile firing last.

use crate::ast::{Action, Production};
use crate::program::Program;
use crate::symbol::SymbolId;

/// Static RHS write footprint + LHS read footprint of one production.
#[derive(Debug, Clone, Default)]
pub struct ProdFootprint {
    /// Classes asserted by `make` or the make half of `modify` (sorted,
    /// deduplicated).
    pub make_classes: Vec<SymbolId>,
    /// 0-based positive-CE indices consumed by `remove`/`modify`. At fire
    /// time, `instantiation.wmes[i].timetag` for each index gives the exact
    /// retract set.
    pub retract_ces: Vec<usize>,
    /// Classes of the retracted CEs (sorted, deduplicated).
    pub retract_classes: Vec<SymbolId>,
    /// Classes of positive condition elements (sorted, deduplicated).
    pub pos_reads: Vec<SymbolId>,
    /// Classes of negated condition elements (sorted, deduplicated).
    pub neg_reads: Vec<SymbolId>,
    /// `(class, field)` pairs tested anywhere in the LHS (sorted,
    /// deduplicated). Conflict checks are class-granular (a `make` defines
    /// every field, including implicit `nil`s), but the attribute set is
    /// kept for diagnostics and finer-grained future policies.
    pub read_attrs: Vec<(SymbolId, u16)>,
    /// Number of gensyms the RHS draws (`bind` without an expression).
    pub gensyms: usize,
    /// Whether the RHS contains `(halt)`.
    pub has_halt: bool,
}

impl ProdFootprint {
    fn of(prod: &Production) -> ProdFootprint {
        let mut fp = ProdFootprint::default();
        for ce in &prod.lhs {
            if ce.negated {
                fp.neg_reads.push(ce.class);
            } else {
                fp.pos_reads.push(ce.class);
            }
            for (field, _) in &ce.tests {
                fp.read_attrs.push((ce.class, *field));
            }
        }
        // Map a 1-based source CE index to (0-based positive index, class).
        let resolve = |ce: u16| {
            let idx = prod.positive_index(ce)?;
            let class = prod.lhs.iter().filter(|c| !c.negated).nth(idx)?.class;
            Some((idx, class))
        };
        for action in &prod.rhs {
            match action {
                Action::Make { class, .. } => fp.make_classes.push(*class),
                Action::Modify { ce, .. } => {
                    if let Some((idx, class)) = resolve(*ce) {
                        fp.retract_ces.push(idx);
                        fp.retract_classes.push(class);
                        fp.make_classes.push(class);
                    }
                }
                Action::Remove { ce } => {
                    if let Some((idx, class)) = resolve(*ce) {
                        fp.retract_ces.push(idx);
                        fp.retract_classes.push(class);
                    }
                }
                Action::Bind { expr: None, .. } => fp.gensyms += 1,
                Action::Halt => fp.has_halt = true,
                Action::Write { .. } | Action::Bind { .. } => {}
            }
        }
        for v in [
            &mut fp.make_classes,
            &mut fp.retract_classes,
            &mut fp.pos_reads,
            &mut fp.neg_reads,
        ] {
            v.sort_unstable();
            v.dedup();
        }
        fp.read_attrs.sort_unstable();
        fp.read_attrs.dedup();
        fp.retract_ces.sort_unstable();
        fp.retract_ces.dedup();
        fp
    }
}

/// Per-program act footprints: one [`ProdFootprint`] per production plus the
/// derived fertility flags.
#[derive(Debug, Clone, Default)]
pub struct ActFootprints {
    pub prods: Vec<ProdFootprint>,
    /// `fertile[p]` — firing production `p` could create a new instantiation
    /// (its makes feed some production's positive or negated reads, or its
    /// retracts unblock some negation). A fertile firing may only be the
    /// *last* member of a parallel act group: anything it spawns carries
    /// fresher timetags (or newly unblocked negations) and could dominate
    /// the remainder of the group under LEX/MEA.
    pub fertile: Vec<bool>,
}

impl ActFootprints {
    pub fn new(prog: &Program) -> ActFootprints {
        let prods: Vec<ProdFootprint> = prog.productions.iter().map(ProdFootprint::of).collect();
        let mut all_reads: Vec<SymbolId> = Vec::new();
        let mut all_neg_reads: Vec<SymbolId> = Vec::new();
        for fp in &prods {
            all_reads.extend_from_slice(&fp.pos_reads);
            all_reads.extend_from_slice(&fp.neg_reads);
            all_neg_reads.extend_from_slice(&fp.neg_reads);
        }
        all_reads.sort_unstable();
        all_reads.dedup();
        all_neg_reads.sort_unstable();
        all_neg_reads.dedup();
        let fertile = prods
            .iter()
            .map(|fp| {
                let makes_read = fp
                    .make_classes
                    .iter()
                    .any(|c| all_reads.binary_search(c).is_ok());
                let unblocks_neg = fp
                    .retract_classes
                    .iter()
                    .any(|c| all_neg_reads.binary_search(c).is_ok());
                makes_read || unblocks_neg
            })
            .collect();
        ActFootprints { prods, fertile }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn footprints(src: &str) -> (Program, ActFootprints) {
        let prog = Program::from_source(src).unwrap();
        let fps = ActFootprints::new(&prog);
        (prog, fps)
    }

    #[test]
    fn remove_only_rules_are_infertile() {
        let (prog, fps) = footprints(
            "(literalize t a)\n\
             (p r (t ^a <x>) --> (write <x>) (remove 1))",
        );
        let t = prog.symbols.get("t").unwrap();
        let fp = &fps.prods[0];
        assert!(fp.make_classes.is_empty());
        assert_eq!(fp.retract_ces, vec![0]);
        assert_eq!(fp.retract_classes, vec![t]);
        assert_eq!(fp.pos_reads, vec![t]);
        assert!(!fp.has_halt);
        assert_eq!(fp.gensyms, 0);
        assert!(!fps.fertile[0], "no production reads what r writes");
    }

    #[test]
    fn modify_is_retract_plus_make_and_fertile_when_class_is_read() {
        let (prog, fps) = footprints(
            "(literalize t a)\n\
             (p bump (t ^a <x>) --> (modify 1 ^a 2))",
        );
        let t = prog.symbols.get("t").unwrap();
        let fp = &fps.prods[0];
        assert_eq!(fp.make_classes, vec![t]);
        assert_eq!(fp.retract_ces, vec![0]);
        assert!(
            fps.fertile[0],
            "modify re-asserts a class bump itself reads"
        );
    }

    #[test]
    fn retract_feeding_negation_is_fertile() {
        let (prog, fps) = footprints(
            "(literalize a x)(literalize b x)\n\
             (p consume (a ^x <v>) --> (remove 1))\n\
             (p blocked (b ^x <v>) - (a ^x <v>) --> (write go))",
        );
        let a = prog.symbols.get("a").unwrap();
        assert!(
            fps.fertile[0],
            "removing `a` can unblock `blocked`'s negated CE"
        );
        assert_eq!(fps.prods[1].neg_reads, vec![a]);
        assert!(!fps.fertile[1]);
    }

    #[test]
    fn gensym_count_and_halt_flag() {
        let (_, fps) = footprints(
            "(literalize t a)\n\
             (p g (t ^a <x>) --> (bind <g1>) (bind <g2>) (bind <e> (compute <x> + 1)) (halt))",
        );
        let fp = &fps.prods[0];
        assert_eq!(fp.gensyms, 2);
        assert!(fp.has_halt);
    }

    #[test]
    fn negated_ce_does_not_shift_positive_indices() {
        let (prog, fps) = footprints(
            "(literalize a x)(literalize b x)(literalize c x)\n\
             (p p0 (a ^x <v>) - (b ^x <v>) (c ^x <v>) --> (remove 3))",
        );
        let c = prog.symbols.get("c").unwrap();
        let fp = &fps.prods[0];
        // Source `remove 3` counts all CEs; the parser stores the 1-based
        // positive index (2), so the footprint lands on instantiation slot 1.
        assert_eq!(fp.retract_ces, vec![1]);
        assert_eq!(fp.retract_classes, vec![c]);
    }
}
