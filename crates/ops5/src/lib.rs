//! # ops5 — the OPS5 production-system language
//!
//! This crate implements the OPS5 language layer of the PSM-E reproduction:
//! interned symbols, runtime values, working-memory elements (WMEs), the
//! lexer/parser for OPS5 source, the production AST, and the `Matcher` API
//! through which every match engine (sequential list/hash Rete, the
//! interpretive "lisp" baseline, and the parallel PSM-E matcher) is driven.
//!
//! The language subset implemented is the one exercised by the paper's three
//! benchmark programs (Weaver, Rubik, Tourney):
//!
//! * `(literalize class attr ...)` attribute declarations,
//! * `(strategy lex | mea)` conflict-resolution directives,
//! * productions `(p name LHS --> RHS)` with
//!   - positive and negated condition elements,
//!   - constant, variable, and predicate tests (`=`, `<>`, `<`, `<=`, `>`,
//!     `>=`, `<=>`),
//!   - conjunctive `{ ... }` and disjunctive `<< ... >>` attribute tests,
//! * RHS actions `make`, `modify`, `remove`, `write`, `bind`, `halt`, and
//!   `(compute ...)` arithmetic.
//!
//! Scalar attributes only (the paper's programs do not use vector
//! attributes).

pub mod ast;
pub mod error;
pub mod footprint;
pub mod lexer;
pub mod matchapi;
pub mod parser;
pub mod printer;
pub mod program;
pub mod symbol;
pub mod value;
pub mod wire;
pub mod wme;

pub use ast::{Action, AttrTest, CondElem, Production, RhsExpr, RhsValue, WriteItem};
pub use error::{Ops5Error, Result};
pub use footprint::{ActFootprints, ProdFootprint};
pub use matchapi::{
    ChangeBatch, CsChange, Instantiation, MatchStats, Matcher, PhaseNanos, QuiesceReport, Sign,
    StatsDeltaTracker, WmeChange,
};
pub use program::{ClassInfo, ClassTable, ProdId, Program, Strategy};
pub use symbol::{SymbolId, SymbolTable};
pub use value::{Pred, Value};
pub use wme::{Wme, WmeRef};
