//! Error types for parsing and program construction.

use std::fmt;

/// Any error raised by the ops5 crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ops5Error {
    /// Lexical error at a source offset (line, column).
    Lex { line: u32, col: u32, msg: String },
    /// Parse error at a source offset.
    Parse { line: u32, col: u32, msg: String },
    /// Semantic error (unknown attribute, unbound variable, bad CE index...).
    Semantic(String),
    /// Runtime error raised during RHS evaluation.
    Runtime(String),
}

impl fmt::Display for Ops5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ops5Error::Lex { line, col, msg } => {
                write!(f, "lex error at {line}:{col}: {msg}")
            }
            Ops5Error::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Ops5Error::Semantic(m) => write!(f, "semantic error: {m}"),
            Ops5Error::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for Ops5Error {}

pub type Result<T> = std::result::Result<T, Ops5Error>;
