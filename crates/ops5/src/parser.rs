//! Recursive-descent parser for OPS5 source.
//!
//! Grammar (the subset exercised by the paper's programs):
//!
//! ```text
//! program    := form*
//! form       := (literalize class attr*) | (strategy lex|mea) | production
//! production := (p name ce+ --> action*)
//! ce         := [-] (class (^attr lhs-value)*)
//! lhs-value  := [pred] atom | { ([pred] atom)+ } | << const+ >>
//! action     := (make class (^attr rhs-expr)*)
//!             | (modify k (^attr rhs-expr)*)
//!             | (remove k+)
//!             | (write write-item*)
//!             | (bind <var> [rhs-expr])
//!             | (halt)
//! rhs-expr   := const | <var> | (compute operand (op operand)*)
//! ```
//!
//! Attribute names are resolved to field indices against the program's class
//! table during parsing; `modify`/`remove` indices are validated to refer to
//! positive condition elements and rewritten to 1-based positive-CE indices.

use crate::ast::*;
use crate::error::{Ops5Error, Result};
use crate::lexer::{lex, PredTok, TokKind, Token};
use crate::program::{Program, Strategy};
use crate::symbol::SymbolId;
use crate::value::{ArithOp, Pred, Value};
use std::collections::HashSet;

struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    prog: &'a mut Program,
}

pub fn parse_into(prog: &mut Program, src: &str) -> Result<()> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, prog };
    p.program()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos.min(self.toks.len() - 1)];
        (t.line, t.col)
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let (line, col) = self.here();
        Err(Ops5Error::Parse {
            line,
            col,
            msg: msg.into(),
        })
    }

    fn expect_lparen(&mut self) -> Result<()> {
        match self.bump() {
            TokKind::LParen => Ok(()),
            other => self.err(format!("expected '(', found {other:?}")),
        }
    }

    fn expect_rparen(&mut self) -> Result<()> {
        match self.bump() {
            TokKind::RParen => Ok(()),
            other => self.err(format!("expected ')', found {other:?}")),
        }
    }

    fn sym(&mut self) -> Result<SymbolId> {
        match self.bump() {
            TokKind::Sym(s) => Ok(self.prog.symbols.intern(&s)),
            other => self.err(format!("expected symbol, found {other:?}")),
        }
    }

    fn program(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                TokKind::Eof => return Ok(()),
                TokKind::LParen => self.form()?,
                other => return self.err(format!("expected top-level form, found {other:?}")),
            }
        }
    }

    fn form(&mut self) -> Result<()> {
        self.expect_lparen()?;
        let head = match self.bump() {
            TokKind::Sym(s) => s,
            other => return self.err(format!("expected form head, found {other:?}")),
        };
        match head.as_str() {
            "literalize" => {
                let class = self.sym()?;
                let mut attrs = Vec::new();
                while let TokKind::Sym(_) = self.peek() {
                    attrs.push(self.sym()?);
                }
                self.expect_rparen()?;
                self.prog.classes.literalize(class, &attrs);
                Ok(())
            }
            "strategy" => {
                let s = match self.bump() {
                    TokKind::Sym(s) => s,
                    other => return self.err(format!("expected lex|mea, found {other:?}")),
                };
                self.prog.strategy = match s.as_str() {
                    "lex" => Strategy::Lex,
                    "mea" => Strategy::Mea,
                    _ => return self.err(format!("unknown strategy {s}")),
                };
                self.expect_rparen()
            }
            "p" => self.production(),
            "make" => self.startup_make(),
            other => self.err(format!("unknown top-level form ({other} ...)")),
        }
    }

    fn production(&mut self) -> Result<()> {
        let name = self.sym()?;
        let mut lhs: Vec<CondElem> = Vec::new();
        loop {
            match self.peek() {
                TokKind::Arrow => {
                    self.bump();
                    break;
                }
                TokKind::Minus => {
                    self.bump();
                    let mut ce = self.cond_elem()?;
                    ce.negated = true;
                    lhs.push(ce);
                }
                TokKind::LParen => {
                    lhs.push(self.cond_elem()?);
                }
                other => {
                    return self.err(format!(
                        "expected condition element or -->, found {other:?}"
                    ))
                }
            }
        }
        if lhs.is_empty() {
            return self.err("production has no condition elements");
        }
        if lhs[0].negated {
            return self.err("first condition element may not be negated");
        }

        // Variables visible to the RHS: those bound in positive CEs.
        let mut bound: HashSet<SymbolId> = HashSet::new();
        for ce in lhs.iter().filter(|ce| !ce.negated) {
            for (_, t) in &ce.tests {
                if let AttrTest::Conj(ts) = t {
                    for vt in ts {
                        if let TestAtom::Var(v) = vt.atom {
                            if vt.pred.is_eq() {
                                bound.insert(v);
                            }
                        }
                    }
                }
            }
        }

        let mut rhs = Vec::new();
        loop {
            match self.peek() {
                TokKind::RParen => {
                    self.bump();
                    break;
                }
                TokKind::LParen => self.action(&lhs, &mut bound, &mut rhs)?,
                other => return self.err(format!("expected RHS action or ')', found {other:?}")),
            }
        }
        self.prog.productions.push(Production { name, lhs, rhs });
        Ok(())
    }

    /// Top-level `(make class ^attr const ...)`: initial working memory.
    fn startup_make(&mut self) -> Result<()> {
        let class = self.sym()?;
        let mut sets = Vec::new();
        loop {
            match self.peek() {
                TokKind::RParen => {
                    self.bump();
                    break;
                }
                TokKind::Attr(_) => {
                    let attr = match self.bump() {
                        TokKind::Attr(a) => self.prog.symbols.intern(&a),
                        _ => unreachable!(),
                    };
                    let field = self.prog.classes.resolve(class, attr)?;
                    let v = self.const_value()?;
                    sets.push((field, v));
                }
                other => {
                    return self.err(format!(
                        "expected ^attr or ')' in top-level make, found {other:?}"
                    ))
                }
            }
        }
        self.prog
            .startup
            .push(crate::program::StartupWme { class, sets });
        Ok(())
    }

    fn cond_elem(&mut self) -> Result<CondElem> {
        self.expect_lparen()?;
        let class = self.sym()?;
        let mut tests = Vec::new();
        loop {
            match self.peek() {
                TokKind::RParen => {
                    self.bump();
                    break;
                }
                TokKind::Attr(_) => {
                    let attr = match self.bump() {
                        TokKind::Attr(a) => self.prog.symbols.intern(&a),
                        _ => unreachable!(),
                    };
                    let field = self.prog.classes.resolve(class, attr)?;
                    let test = self.lhs_value()?;
                    tests.push((field, test));
                }
                other => {
                    return self.err(format!(
                        "expected ^attr or ')' in condition element, found {other:?}"
                    ))
                }
            }
        }
        Ok(CondElem {
            class,
            negated: false,
            tests,
        })
    }

    fn lhs_value(&mut self) -> Result<AttrTest> {
        match self.peek() {
            TokKind::LBrace => {
                self.bump();
                let mut ts = Vec::new();
                loop {
                    if matches!(self.peek(), TokKind::RBrace) {
                        self.bump();
                        break;
                    }
                    ts.push(self.value_test()?);
                }
                if ts.is_empty() {
                    return self.err("empty conjunction {}");
                }
                Ok(AttrTest::Conj(ts))
            }
            TokKind::LDisj => {
                self.bump();
                let mut vs = Vec::new();
                loop {
                    match self.peek() {
                        TokKind::RDisj => {
                            self.bump();
                            break;
                        }
                        _ => vs.push(self.const_value()?),
                    }
                }
                if vs.is_empty() {
                    return self.err("empty disjunction << >>");
                }
                Ok(AttrTest::Disj(vs))
            }
            _ => Ok(AttrTest::Conj(vec![self.value_test()?])),
        }
    }

    fn value_test(&mut self) -> Result<ValueTest> {
        let pred = match self.peek() {
            TokKind::Pred(p) => {
                let p = *p;
                self.bump();
                match p {
                    PredTok::Eq => Pred::Eq,
                    PredTok::Ne => Pred::Ne,
                    PredTok::Lt => Pred::Lt,
                    PredTok::Le => Pred::Le,
                    PredTok::Gt => Pred::Gt,
                    PredTok::Ge => Pred::Ge,
                    PredTok::SameType => Pred::SameType,
                }
            }
            _ => Pred::Eq,
        };
        let atom = match self.bump() {
            TokKind::Var(v) => TestAtom::Var(self.prog.symbols.intern(&v)),
            TokKind::Sym(s) => TestAtom::Const(Value::Sym(self.prog.symbols.intern(&s))),
            TokKind::Int(i) => TestAtom::Const(Value::Int(i)),
            TokKind::Float(x) => TestAtom::Const(Value::Float(x)),
            other => return self.err(format!("expected test atom, found {other:?}")),
        };
        Ok(ValueTest { pred, atom })
    }

    fn const_value(&mut self) -> Result<Value> {
        match self.bump() {
            TokKind::Sym(s) => Ok(Value::Sym(self.prog.symbols.intern(&s))),
            TokKind::Int(i) => Ok(Value::Int(i)),
            TokKind::Float(x) => Ok(Value::Float(x)),
            other => self.err(format!("expected constant, found {other:?}")),
        }
    }

    /// Maps a 1-based index over *all* CEs to a 1-based positive-CE index,
    /// erroring on negated or out-of-range references.
    fn resolve_ce_index(&self, lhs: &[CondElem], k: i64, what: &str) -> Result<(u16, SymbolId)> {
        if k < 1 || k as usize > lhs.len() {
            return self.err(format!(
                "{what} references condition element {k}, but LHS has {} elements",
                lhs.len()
            ));
        }
        let idx = (k - 1) as usize;
        if lhs[idx].negated {
            return self.err(format!("{what} references negated condition element {k}"));
        }
        let pos = lhs[..=idx].iter().filter(|ce| !ce.negated).count() as u16;
        Ok((pos, lhs[idx].class))
    }

    fn action(
        &mut self,
        lhs: &[CondElem],
        bound: &mut HashSet<SymbolId>,
        out: &mut Vec<Action>,
    ) -> Result<()> {
        self.expect_lparen()?;
        let head = match self.bump() {
            TokKind::Sym(s) => s,
            other => return self.err(format!("expected action head, found {other:?}")),
        };
        match head.as_str() {
            "make" => {
                let class = self.sym()?;
                let sets = self.rhs_sets(class, bound)?;
                self.expect_rparen()?;
                out.push(Action::Make { class, sets });
                Ok(())
            }
            "modify" => {
                let k = match self.bump() {
                    TokKind::Int(i) => i,
                    other => {
                        return self.err(format!("expected CE index after modify, found {other:?}"))
                    }
                };
                let (pos, class) = self.resolve_ce_index(lhs, k, "modify")?;
                let sets = self.rhs_sets(class, bound)?;
                self.expect_rparen()?;
                out.push(Action::Modify { ce: pos, sets });
                Ok(())
            }
            "remove" => {
                // OPS5 remove takes one or more CE indices; desugar into one
                // Remove action per index.
                let mut any = false;
                loop {
                    match self.peek() {
                        TokKind::Int(_) => {
                            let k = match self.bump() {
                                TokKind::Int(i) => i,
                                _ => unreachable!(),
                            };
                            let (pos, _) = self.resolve_ce_index(lhs, k, "remove")?;
                            out.push(Action::Remove { ce: pos });
                            any = true;
                        }
                        TokKind::RParen => {
                            self.bump();
                            break;
                        }
                        other => {
                            return self
                                .err(format!("expected CE index after remove, found {other:?}"))
                        }
                    }
                }
                if !any {
                    return self.err("remove needs at least one CE index");
                }
                Ok(())
            }
            "write" => {
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        TokKind::RParen => {
                            self.bump();
                            break;
                        }
                        TokKind::LParen => {
                            self.bump();
                            match self.bump() {
                                TokKind::Sym(s) if s == "crlf" => {}
                                other => {
                                    return self.err(format!("expected (crlf), found {other:?}"))
                                }
                            }
                            self.expect_rparen()?;
                            items.push(WriteItem::Crlf);
                        }
                        TokKind::Var(_) => {
                            let v = match self.bump() {
                                TokKind::Var(v) => self.prog.symbols.intern(&v),
                                _ => unreachable!(),
                            };
                            self.check_bound(v, bound)?;
                            items.push(WriteItem::Value(RhsValue::Var(v)));
                        }
                        _ => items.push(WriteItem::Value(RhsValue::Const(self.const_value()?))),
                    }
                }
                out.push(Action::Write { items });
                Ok(())
            }
            "bind" => {
                let var = match self.bump() {
                    TokKind::Var(v) => self.prog.symbols.intern(&v),
                    other => {
                        return self.err(format!("expected <var> after bind, found {other:?}"))
                    }
                };
                let expr = if matches!(self.peek(), TokKind::RParen) {
                    None
                } else {
                    Some(self.rhs_expr(bound)?)
                };
                self.expect_rparen()?;
                bound.insert(var);
                out.push(Action::Bind { var, expr });
                Ok(())
            }
            "halt" => {
                self.expect_rparen()?;
                out.push(Action::Halt);
                Ok(())
            }
            other => self.err(format!("unknown RHS action {other}")),
        }
    }

    fn rhs_sets(
        &mut self,
        class: SymbolId,
        bound: &HashSet<SymbolId>,
    ) -> Result<Vec<(u16, RhsExpr)>> {
        let mut sets = Vec::new();
        while let TokKind::Attr(_) = self.peek() {
            let attr = match self.bump() {
                TokKind::Attr(a) => self.prog.symbols.intern(&a),
                _ => unreachable!(),
            };
            let field = self.prog.classes.resolve(class, attr)?;
            let expr = self.rhs_expr(bound)?;
            sets.push((field, expr));
        }
        Ok(sets)
    }

    fn check_bound(&self, v: SymbolId, bound: &HashSet<SymbolId>) -> Result<()> {
        if bound.contains(&v) {
            Ok(())
        } else {
            self.err(format!(
                "variable <{}> is not bound in the LHS",
                self.prog.symbols.name(v)
            ))
        }
    }

    fn rhs_expr(&mut self, bound: &HashSet<SymbolId>) -> Result<RhsExpr> {
        match self.peek() {
            TokKind::LParen => {
                self.bump();
                match self.bump() {
                    TokKind::Sym(s) if s == "compute" => {}
                    other => return self.err(format!("expected (compute ...), found {other:?}")),
                }
                let e = self.compute_body(bound)?;
                self.expect_rparen()?;
                Ok(e)
            }
            TokKind::Var(_) => {
                let v = match self.bump() {
                    TokKind::Var(v) => self.prog.symbols.intern(&v),
                    _ => unreachable!(),
                };
                self.check_bound(v, bound)?;
                Ok(RhsExpr::Var(v))
            }
            _ => Ok(RhsExpr::Const(self.const_value()?)),
        }
    }

    /// `operand (op operand)*`, left-associative. Operators are the symbols
    /// `+`, `*`, `//`, `\\` and the `Minus` token.
    fn compute_body(&mut self, bound: &HashSet<SymbolId>) -> Result<RhsExpr> {
        let mut acc = self.compute_operand(bound)?;
        loop {
            let op = match self.peek() {
                TokKind::Minus => Some(ArithOp::Sub),
                TokKind::Sym(s) => match s.as_str() {
                    "+" => Some(ArithOp::Add),
                    "*" => Some(ArithOp::Mul),
                    "//" => Some(ArithOp::Div),
                    "\\\\" | "\\" => Some(ArithOp::Mod),
                    _ => None,
                },
                _ => None,
            };
            match op {
                Some(op) => {
                    self.bump();
                    let rhs = self.compute_operand(bound)?;
                    acc = RhsExpr::Arith(op, Box::new(acc), Box::new(rhs));
                }
                None => return Ok(acc),
            }
        }
    }

    fn compute_operand(&mut self, bound: &HashSet<SymbolId>) -> Result<RhsExpr> {
        match self.peek() {
            TokKind::Var(_) => {
                let v = match self.bump() {
                    TokKind::Var(v) => self.prog.symbols.intern(&v),
                    _ => unreachable!(),
                };
                self.check_bound(v, bound)?;
                Ok(RhsExpr::Var(v))
            }
            TokKind::Int(_) | TokKind::Float(_) => Ok(RhsExpr::Const(self.const_value()?)),
            TokKind::LParen => self.rhs_expr(bound),
            other => self.err(format!("expected compute operand, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Action, AttrTest, TestAtom};

    fn parse(src: &str) -> Program {
        Program::from_source(src).expect("parse failed")
    }

    #[test]
    fn figure_2_1_sample_production() {
        // The paper's Figure 2-1.
        let p = parse(
            "(p find-colored-block
               (goal ^type find-block ^color <c>)
               (block ^id <i> ^color <c> ^selected no)
               -->
               (modify 2 ^selected yes))",
        );
        assert_eq!(p.productions.len(), 1);
        let prod = &p.productions[0];
        assert_eq!(p.symbols.name(prod.name), "find-colored-block");
        assert_eq!(prod.lhs.len(), 2);
        assert_eq!(prod.positive_ces(), 2);
        match &prod.rhs[0] {
            Action::Modify { ce, sets } => {
                assert_eq!(*ce, 2);
                assert_eq!(sets.len(), 1);
            }
            other => panic!("expected modify, got {other:?}"),
        }
    }

    #[test]
    fn figure_2_2_productions_parse() {
        // The paper's Figure 2-2 p1/p2.
        let p = parse(
            "(p p1 (C1 ^attr1 <x> ^attr2 12)
                   (C2 ^attr1 15 ^attr2 <x>)
                 - (C3 ^attr1 <x>)
               -->
               (remove 2))
             (p p2 (C2 ^attr1 15 ^attr2 <y>)
                   (C4 ^attr1 <y>)
               -->
               (modify 1 ^attr1 12))",
        );
        assert_eq!(p.productions.len(), 2);
        let p1 = &p.productions[0];
        assert!(p1.lhs[2].negated);
        assert_eq!(p1.positive_ces(), 2);
    }

    #[test]
    fn negated_ce_index_rejected_in_remove() {
        let r = Program::from_source("(p bad (a ^x 1) - (b ^y 2) --> (remove 2))");
        assert!(r.is_err());
    }

    #[test]
    fn ce_index_maps_past_negated_elements() {
        let p = parse("(p ok (a ^x 1) - (b ^y 2) (c ^z <v>) --> (modify 3 ^z nil))");
        match &p.productions[0].rhs[0] {
            // CE 3 in source is the 2nd positive CE.
            Action::Modify { ce, .. } => assert_eq!(*ce, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_rhs_variable_rejected() {
        assert!(Program::from_source("(p bad (a ^x 1) --> (make b ^y <nope>))").is_err());
    }

    #[test]
    fn variable_bound_only_in_negated_ce_rejected_in_rhs() {
        assert!(Program::from_source("(p bad (a ^x 1) - (b ^y <v>) --> (make c ^z <v>))").is_err());
    }

    #[test]
    fn bind_introduces_variable() {
        let p = parse("(p ok (a ^x <v>) --> (bind <w> (compute <v> + 1)) (make b ^y <w>))");
        assert_eq!(p.productions[0].rhs.len(), 2);
    }

    #[test]
    fn conjunction_and_disjunction() {
        let p = parse("(p ok (a ^x { > 2 < 5 } ^y << red green >>) --> (halt))");
        let ce = &p.productions[0].lhs[0];
        match &ce.tests[0].1 {
            AttrTest::Conj(ts) => assert_eq!(ts.len(), 2),
            other => panic!("{other:?}"),
        }
        match &ce.tests[1].1 {
            AttrTest::Disj(vs) => assert_eq!(vs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicate_with_variable() {
        let p = parse("(p ok (a ^x <v>) (b ^y < <v>) --> (halt))");
        let ce = &p.productions[0].lhs[1];
        match &ce.tests[0].1 {
            AttrTest::Conj(ts) => {
                assert_eq!(ts[0].pred, Pred::Lt);
                assert!(matches!(ts[0].atom, TestAtom::Var(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strategy_directive() {
        let p = parse("(strategy mea) (p ok (a ^x 1) --> (halt))");
        assert_eq!(p.strategy, Strategy::Mea);
    }

    #[test]
    fn literalize_fixes_layout() {
        let p = parse("(literalize goal type color) (p ok (goal ^color red) --> (halt))");
        let ce = &p.productions[0].lhs[0];
        assert_eq!(ce.tests[0].0, 1, "color is field 1 after literalize");
    }

    #[test]
    fn first_ce_negated_rejected() {
        assert!(Program::from_source("(p bad - (a ^x 1) --> (halt))").is_err());
    }

    #[test]
    fn compute_left_assoc() {
        let p = parse("(p ok (a ^x <v>) --> (make b ^y (compute <v> + 1 * 2)))");
        match &p.productions[0].rhs[0] {
            Action::Make { sets, .. } => match &sets[0].1 {
                RhsExpr::Arith(ArithOp::Mul, l, _) => {
                    assert!(matches!(**l, RhsExpr::Arith(ArithOp::Add, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_remove_desugars() {
        let p = parse("(p q (a ^x 1) (b ^y 2) --> (remove 1 2))");
        let rhs = &p.productions[0].rhs;
        assert_eq!(rhs.len(), 2);
        assert_eq!(rhs[0], Action::Remove { ce: 1 });
        assert_eq!(rhs[1], Action::Remove { ce: 2 });
    }

    #[test]
    fn empty_remove_rejected() {
        assert!(Program::from_source("(p q (a ^x 1) --> (remove))").is_err());
    }

    #[test]
    fn top_level_make_startup() {
        let p = parse(
            "(literalize goal type color)
             (make goal ^type find ^color red)
             (make goal ^color blue)
             (p q (goal ^type find) --> (halt))",
        );
        assert_eq!(p.startup.len(), 2);
        assert_eq!(p.startup[0].sets.len(), 2);
        assert_eq!(p.startup[0].sets[0].0, 0, "type is field 0");
        assert_eq!(p.startup[1].sets[0].0, 1, "color is field 1");
    }

    #[test]
    fn top_level_make_rejects_variables() {
        assert!(Program::from_source("(make goal ^x <v>)").is_err());
    }

    #[test]
    fn write_action() {
        let p = parse("(p ok (a ^x <v>) --> (write solved <v> (crlf)))");
        match &p.productions[0].rhs[0] {
            Action::Write { items } => {
                assert_eq!(items.len(), 3);
                assert!(matches!(items[2], WriteItem::Crlf));
            }
            other => panic!("{other:?}"),
        }
    }
}
