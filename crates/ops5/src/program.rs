//! Program container: class table, productions, strategy.

use crate::ast::Production;
use crate::error::{Ops5Error, Result};
use crate::symbol::{SymbolId, SymbolTable};
use std::collections::HashMap;

/// Dense production identifier (index into `Program::productions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProdId(pub u32);

impl ProdId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Conflict-resolution strategy (OPS5 LEX or MEA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    #[default]
    Lex,
    Mea,
}

/// Per-class attribute layout: attribute name → field index.
#[derive(Debug, Clone, Default)]
pub struct ClassInfo {
    /// Attribute names in field order.
    pub attrs: Vec<SymbolId>,
    index: HashMap<SymbolId, u16>,
}

impl ClassInfo {
    pub fn field_of(&self, attr: SymbolId) -> Option<u16> {
        self.index.get(&attr).copied()
    }

    pub fn arity(&self) -> u16 {
        self.attrs.len() as u16
    }

    fn add(&mut self, attr: SymbolId) -> u16 {
        if let Some(&i) = self.index.get(&attr) {
            return i;
        }
        let i = self.attrs.len() as u16;
        self.attrs.push(attr);
        self.index.insert(attr, i);
        i
    }
}

/// Maps class names to their attribute layouts.
///
/// Layouts come from `literalize` declarations; in *auto* mode (the default)
/// attributes first seen in a production or a `make` are appended to the
/// class layout, which is how most small OPS5 programs are written.
#[derive(Debug, Clone, Default)]
pub struct ClassTable {
    classes: HashMap<SymbolId, ClassInfo>,
    /// When false, referencing an undeclared attribute is an error.
    pub auto_extend: bool,
}

impl ClassTable {
    pub fn new() -> Self {
        ClassTable {
            classes: HashMap::new(),
            auto_extend: true,
        }
    }

    /// Handles a `(literalize class a b c)` declaration.
    pub fn literalize(&mut self, class: SymbolId, attrs: &[SymbolId]) {
        let info = self.classes.entry(class).or_default();
        for &a in attrs {
            info.add(a);
        }
    }

    /// Resolves `class ^attr` to a field index, extending the layout in auto
    /// mode.
    pub fn resolve(&mut self, class: SymbolId, attr: SymbolId) -> Result<u16> {
        let auto = self.auto_extend;
        let info = self.classes.entry(class).or_default();
        if let Some(i) = info.field_of(attr) {
            return Ok(i);
        }
        if auto {
            Ok(info.add(attr))
        } else {
            Err(Ops5Error::Semantic(format!(
                "attribute sym#{} not literalized for class sym#{}",
                attr.0, class.0
            )))
        }
    }

    pub fn info(&self, class: SymbolId) -> Option<&ClassInfo> {
        self.classes.get(&class)
    }

    /// Field arity of a class (0 for unknown classes).
    pub fn arity(&self, class: SymbolId) -> u16 {
        self.classes.get(&class).map_or(0, |c| c.arity())
    }

    pub fn classes(&self) -> impl Iterator<Item = (&SymbolId, &ClassInfo)> {
        self.classes.iter()
    }
}

/// A top-level `(make ...)` startup form: initial working memory declared
/// in the source file.
#[derive(Debug, Clone, PartialEq)]
pub struct StartupWme {
    pub class: SymbolId,
    /// (field index, value) pairs.
    pub sets: Vec<(u16, crate::value::Value)>,
}

/// A parsed OPS5 program: symbol table, class layouts, productions,
/// startup working memory, and the conflict-resolution strategy.
#[derive(Debug, Clone)]
pub struct Program {
    pub symbols: SymbolTable,
    pub classes: ClassTable,
    pub productions: Vec<Production>,
    /// Top-level `(make ...)` forms, in source order.
    pub startup: Vec<StartupWme>,
    pub strategy: Strategy,
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

impl Program {
    pub fn new() -> Self {
        Program {
            symbols: SymbolTable::new(),
            classes: ClassTable::new(),
            productions: Vec::new(),
            startup: Vec::new(),
            strategy: Strategy::Lex,
        }
    }

    /// Parses OPS5 source text into this program (appending productions).
    pub fn parse_str(&mut self, src: &str) -> Result<()> {
        crate::parser::parse_into(self, src)
    }

    /// Convenience: parse a whole program from scratch.
    pub fn from_source(src: &str) -> Result<Program> {
        let mut p = Program::new();
        p.parse_str(src)?;
        Ok(p)
    }

    pub fn production(&self, id: ProdId) -> &Production {
        &self.productions[id.index()]
    }

    pub fn find_production(&self, name: &str) -> Option<ProdId> {
        let sym = self.symbols.get(name)?;
        self.productions
            .iter()
            .position(|p| p.name == sym)
            .map(|i| ProdId(i as u32))
    }

    pub fn prod_name(&self, id: ProdId) -> &str {
        self.symbols.name(self.productions[id.index()].name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literalize_fixes_field_order() {
        let mut syms = SymbolTable::new();
        let c = syms.intern("goal");
        let a1 = syms.intern("type");
        let a2 = syms.intern("color");
        let mut ct = ClassTable::new();
        ct.literalize(c, &[a1, a2]);
        assert_eq!(ct.resolve(c, a1).unwrap(), 0);
        assert_eq!(ct.resolve(c, a2).unwrap(), 1);
        assert_eq!(ct.arity(c), 2);
    }

    #[test]
    fn auto_extend_appends() {
        let mut syms = SymbolTable::new();
        let c = syms.intern("goal");
        let a1 = syms.intern("x");
        let a2 = syms.intern("y");
        let mut ct = ClassTable::new();
        assert_eq!(ct.resolve(c, a1).unwrap(), 0);
        assert_eq!(ct.resolve(c, a2).unwrap(), 1);
        assert_eq!(ct.resolve(c, a1).unwrap(), 0, "stable on re-resolve");
    }

    #[test]
    fn strict_mode_rejects_unknown() {
        let mut syms = SymbolTable::new();
        let c = syms.intern("goal");
        let a1 = syms.intern("x");
        let mut ct = ClassTable::new();
        ct.auto_extend = false;
        assert!(ct.resolve(c, a1).is_err());
    }
}
