//! Runtime values and match predicates.

use crate::symbol::{SymbolId, SymbolTable};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A working-memory value: a symbolic constant or a number.
///
/// Equality and hashing are *variant-exact*: an `Int` never equals a `Float`
/// under `==`/`Hash` (so hash-table memories stay consistent), while the
/// ordering predicates (`<`, `<=`, ...) compare `Int` and `Float`
/// numerically, which is what OPS5 programs expect of arithmetic tests.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    Sym(SymbolId),
    Int(i64),
    Float(f64),
}

impl Value {
    pub const NIL: Value = Value::Sym(SymbolId::NIL);

    #[inline]
    pub fn is_nil(self) -> bool {
        matches!(self, Value::Sym(SymbolId::NIL))
    }

    #[inline]
    pub fn is_numeric(self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric comparison when both sides are numbers; `None` otherwise or
    /// for unordered floats (NaN).
    #[inline]
    pub fn num_cmp(self, other: Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(&b)),
            (Value::Int(a), Value::Float(b)) => (a as f64).partial_cmp(&b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(b as f64)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(&b),
            _ => None,
        }
    }

    /// Renders the value for traces and the RHS `write` action.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Value, &'a SymbolTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Value::Sym(s) => write!(f, "{}", self.1.name(*s)),
                    Value::Int(i) => write!(f, "{i}"),
                    Value::Float(x) => write!(f, "{x}"),
                }
            }
        }
        D(self, syms)
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            // Exact bit equality keeps Hash/Eq consistent; NaN != NaN is
            // irrelevant because the parser never produces NaN.
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}
impl Eq for Value {}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Sym(s) => {
                state.write_u8(0);
                state.write_u32(s.0);
            }
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(x) => {
                state.write_u8(2);
                state.write_u64(x.to_bits());
            }
        }
    }
}

/// An OPS5 match predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `=` — equality (also the implicit predicate).
    Eq,
    /// `<>` — inequality.
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<=>` — same type (both numeric, or both symbolic).
    SameType,
}

impl Pred {
    /// Applies the predicate: does candidate value `v` stand in this relation
    /// to the reference value `r`? (`v Pred r`, e.g. `v < r` for `Lt`.)
    #[inline]
    pub fn eval(self, v: Value, r: Value) -> bool {
        match self {
            Pred::Eq => v == r,
            Pred::Ne => v != r,
            Pred::Lt => matches!(v.num_cmp(r), Some(Ordering::Less)),
            Pred::Le => matches!(v.num_cmp(r), Some(Ordering::Less | Ordering::Equal)),
            Pred::Gt => matches!(v.num_cmp(r), Some(Ordering::Greater)),
            Pred::Ge => matches!(v.num_cmp(r), Some(Ordering::Greater | Ordering::Equal)),
            Pred::SameType => v.is_numeric() == r.is_numeric(),
        }
    }

    /// True for `=`, the only predicate a hash-table memory can index on.
    #[inline]
    pub fn is_eq(self) -> bool {
        matches!(self, Pred::Eq)
    }
}

/// RHS `compute` operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    /// Evaluates `a op b`. Integer arithmetic stays integral; any float
    /// operand promotes. Division by zero and non-numeric operands yield
    /// `None` (the engine raises a runtime error).
    pub fn eval(self, a: Value, b: Value) -> Option<Value> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Some(match self {
                ArithOp::Add => Value::Int(x.wrapping_add(y)),
                ArithOp::Sub => Value::Int(x.wrapping_sub(y)),
                ArithOp::Mul => Value::Int(x.wrapping_mul(y)),
                ArithOp::Div => {
                    if y == 0 {
                        return None;
                    }
                    Value::Int(x.wrapping_div(y))
                }
                ArithOp::Mod => {
                    if y == 0 {
                        return None;
                    }
                    Value::Int(x.wrapping_rem(y))
                }
            }),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let x = match a {
                    Value::Int(i) => i as f64,
                    Value::Float(f) => f,
                    _ => unreachable!(),
                };
                let y = match b {
                    Value::Int(i) => i as f64,
                    Value::Float(f) => f,
                    _ => unreachable!(),
                };
                Some(match self {
                    ArithOp::Add => Value::Float(x + y),
                    ArithOp::Sub => Value::Float(x - y),
                    ArithOp::Mul => Value::Float(x * y),
                    ArithOp::Div => Value::Float(x / y),
                    ArithOp::Mod => Value::Float(x % y),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: u32) -> Value {
        Value::Sym(SymbolId(n))
    }

    #[test]
    fn variant_exact_equality() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Float(3.0));
        assert_ne!(sym(1), Value::Int(1));
    }

    #[test]
    fn numeric_predicates_cross_variants() {
        assert!(Pred::Lt.eval(Value::Int(2), Value::Float(2.5)));
        assert!(Pred::Ge.eval(Value::Float(3.0), Value::Int(3)));
        assert!(
            !Pred::Lt.eval(sym(1), Value::Int(5)),
            "symbols are unordered"
        );
    }

    #[test]
    fn ne_on_mixed_types_is_true() {
        assert!(Pred::Ne.eval(sym(1), Value::Int(1)));
    }

    #[test]
    fn same_type_predicate() {
        assert!(Pred::SameType.eval(Value::Int(1), Value::Float(2.0)));
        assert!(Pred::SameType.eval(sym(1), sym(2)));
        assert!(!Pred::SameType.eval(sym(1), Value::Int(2)));
    }

    #[test]
    fn arith_integer_stays_integer() {
        assert_eq!(
            ArithOp::Add.eval(Value::Int(2), Value::Int(3)),
            Some(Value::Int(5))
        );
        assert_eq!(
            ArithOp::Mod.eval(Value::Int(7), Value::Int(3)),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn arith_promotes_to_float() {
        assert_eq!(
            ArithOp::Mul.eval(Value::Int(2), Value::Float(1.5)),
            Some(Value::Float(3.0))
        );
    }

    #[test]
    fn arith_errors() {
        assert_eq!(ArithOp::Div.eval(Value::Int(1), Value::Int(0)), None);
        assert_eq!(ArithOp::Add.eval(sym(1), Value::Int(1)), None);
    }

    #[test]
    fn float_hash_eq_consistent() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(Value::Float(1.5)), h(Value::Float(1.5)));
        assert_ne!(Value::Float(1.5), Value::Float(1.6));
    }
}
