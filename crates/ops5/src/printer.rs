//! Pretty-printer: renders parsed programs back to OPS5 source.
//!
//! This is OPS5's `pm` (print production) facility. The output reparses to
//! an identical AST — checked by roundtrip tests here and property tests at
//! the workspace root — which makes it usable for program transformation
//! tooling (the Tourney "fix" experiment is exactly such a transformation).

use crate::ast::{Action, AttrTest, CondElem, Production, RhsExpr, TestAtom, WriteItem};
use crate::program::{ClassTable, Program};
use crate::symbol::{SymbolId, SymbolTable};
use crate::value::{ArithOp, Pred, Value};
use std::fmt::Write;

fn pred_str(p: Pred) -> &'static str {
    match p {
        Pred::Eq => "",
        Pred::Ne => "<> ",
        Pred::Lt => "< ",
        Pred::Le => "<= ",
        Pred::Gt => "> ",
        Pred::Ge => ">= ",
        Pred::SameType => "<=> ",
    }
}

fn val_str(v: Value, syms: &SymbolTable) -> String {
    match v {
        Value::Sym(s) => syms.name(s).to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep a trailing .0 so the token relexes as a float.
            let s = f.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
    }
}

fn atom_str(a: &TestAtom, syms: &SymbolTable) -> String {
    match a {
        TestAtom::Const(v) => val_str(*v, syms),
        TestAtom::Var(v) => format!("<{}>", syms.name(*v)),
    }
}

fn attr_name(classes: &ClassTable, class: SymbolId, field: u16, syms: &SymbolTable) -> String {
    classes
        .info(class)
        .and_then(|i| i.attrs.get(field as usize))
        .map(|a| syms.name(*a).to_string())
        .unwrap_or_else(|| format!("f{field}"))
}

/// Renders one condition element.
pub fn print_ce(ce: &CondElem, syms: &SymbolTable, classes: &ClassTable) -> String {
    let mut s = String::new();
    if ce.negated {
        s.push_str("- ");
    }
    let _ = write!(s, "({}", syms.name(ce.class));
    for (field, test) in &ce.tests {
        let _ = write!(s, " ^{} ", attr_name(classes, ce.class, *field, syms));
        match test {
            AttrTest::Disj(vs) => {
                s.push_str("<< ");
                for v in vs {
                    let _ = write!(s, "{} ", val_str(*v, syms));
                }
                s.push_str(">>");
            }
            AttrTest::Conj(ts) if ts.len() == 1 => {
                let _ = write!(s, "{}{}", pred_str(ts[0].pred), atom_str(&ts[0].atom, syms));
            }
            AttrTest::Conj(ts) => {
                s.push_str("{ ");
                for t in ts {
                    let _ = write!(s, "{}{} ", pred_str(t.pred), atom_str(&t.atom, syms));
                }
                s.push('}');
            }
        }
    }
    s.push(')');
    s
}

fn expr_str(e: &RhsExpr, syms: &SymbolTable) -> String {
    fn operand(e: &RhsExpr, syms: &SymbolTable) -> String {
        match e {
            RhsExpr::Const(v) => val_str(*v, syms),
            RhsExpr::Var(v) => format!("<{}>", syms.name(*v)),
            RhsExpr::Arith(..) => format!("({})", compute_body(e, syms)),
        }
    }
    fn compute_body(e: &RhsExpr, syms: &SymbolTable) -> String {
        match e {
            RhsExpr::Arith(op, a, b) => {
                let ops = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "//",
                    ArithOp::Mod => "\\",
                };
                format!("compute {} {} {}", inner(a, syms), ops, inner(b, syms))
            }
            other => operand(other, syms),
        }
    }
    fn inner(e: &RhsExpr, syms: &SymbolTable) -> String {
        match e {
            RhsExpr::Arith(..) => format!("({})", compute_body(e, syms)),
            other => operand(other, syms),
        }
    }
    match e {
        RhsExpr::Arith(..) => format!("({})", compute_body(e, syms)),
        other => operand(other, syms),
    }
}

/// The 1-based all-CE index of the `n`-th positive CE (inverts the parser's
/// positive-index resolution so `modify`/`remove` print with the source
/// numbering).
fn source_ce_index(prod: &Production, positive_1based: u16) -> usize {
    let mut pos = 0u16;
    for (i, ce) in prod.lhs.iter().enumerate() {
        if !ce.negated {
            pos += 1;
            if pos == positive_1based {
                return i + 1;
            }
        }
    }
    positive_1based as usize
}

/// Renders one action.
pub fn print_action(
    action: &Action,
    prod: &Production,
    syms: &SymbolTable,
    classes: &ClassTable,
) -> String {
    let mut s = String::new();
    match action {
        Action::Make { class, sets } => {
            let _ = write!(s, "(make {}", syms.name(*class));
            for (field, e) in sets {
                let _ = write!(
                    s,
                    " ^{} {}",
                    attr_name(classes, *class, *field, syms),
                    expr_str(e, syms)
                );
            }
            s.push(')');
        }
        Action::Modify { ce, sets } => {
            let class = prod
                .lhs
                .iter()
                .filter(|c| !c.negated)
                .nth(*ce as usize - 1)
                .map(|c| c.class)
                .unwrap_or(SymbolId::NIL);
            let _ = write!(s, "(modify {}", source_ce_index(prod, *ce));
            for (field, e) in sets {
                let _ = write!(
                    s,
                    " ^{} {}",
                    attr_name(classes, class, *field, syms),
                    expr_str(e, syms)
                );
            }
            s.push(')');
        }
        Action::Remove { ce } => {
            let _ = write!(s, "(remove {})", source_ce_index(prod, *ce));
        }
        Action::Write { items } => {
            s.push_str("(write");
            for item in items {
                match item {
                    WriteItem::Crlf => s.push_str(" (crlf)"),
                    WriteItem::Value(crate::ast::RhsValue::Const(v)) => {
                        let _ = write!(s, " {}", val_str(*v, syms));
                    }
                    WriteItem::Value(crate::ast::RhsValue::Var(v)) => {
                        let _ = write!(s, " <{}>", syms.name(*v));
                    }
                }
            }
            s.push(')');
        }
        Action::Bind { var, expr } => match expr {
            Some(e) => {
                let _ = write!(s, "(bind <{}> {})", syms.name(*var), expr_str(e, syms));
            }
            None => {
                let _ = write!(s, "(bind <{}>)", syms.name(*var));
            }
        },
        Action::Halt => s.push_str("(halt)"),
    }
    s
}

/// Renders a whole production (OPS5 `pm`).
pub fn print_production(prod: &Production, syms: &SymbolTable, classes: &ClassTable) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "(p {}", syms.name(prod.name));
    for ce in &prod.lhs {
        let _ = writeln!(s, "  {}", print_ce(ce, syms, classes));
    }
    s.push_str("  -->\n");
    for a in &prod.rhs {
        let _ = writeln!(s, "  {}", print_action(a, prod, syms, classes));
    }
    // Close the production on the last line.
    let trimmed = s.trim_end().to_string();
    format!("{trimmed})\n")
}

/// Renders a whole program: literalize declarations, strategy, productions.
pub fn print_program(prog: &Program) -> String {
    let mut s = String::new();
    // Literalize every class so the field layout survives the roundtrip.
    let mut classes: Vec<_> = prog.classes.classes().collect();
    classes.sort_by_key(|(c, _)| c.0);
    for (class, info) in classes {
        if info.attrs.is_empty() {
            continue;
        }
        let _ = write!(s, "(literalize {}", prog.symbols.name(*class));
        for a in &info.attrs {
            let _ = write!(s, " {}", prog.symbols.name(*a));
        }
        s.push_str(")\n");
    }
    if prog.strategy == crate::program::Strategy::Mea {
        s.push_str("(strategy mea)\n");
    }
    for m in &prog.startup {
        let _ = write!(s, "(make {}", prog.symbols.name(m.class));
        for (field, v) in &m.sets {
            let _ = write!(
                s,
                " ^{} {}",
                attr_name(&prog.classes, m.class, *field, &prog.symbols),
                val_str(*v, &prog.symbols)
            );
        }
        s.push_str(")\n");
    }
    for p in &prog.productions {
        s.push_str(&print_production(p, &prog.symbols, &prog.classes));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let p1 = Program::from_source(src).unwrap();
        let printed = print_program(&p1);
        let p2 = Program::from_source(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            p1.productions.len(),
            p2.productions.len(),
            "production count changed:\n{printed}"
        );
        // Structural equality of productions modulo symbol ids: compare by
        // re-printing (print is a function of structure + names).
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printing is not a fixpoint");
    }

    #[test]
    fn roundtrip_startup_makes() {
        roundtrip(
            "(literalize goal type color)
             (make goal ^type find ^color red)
             (p q (goal ^type find) --> (halt))",
        );
        let p = Program::from_source("(make a ^x 1)").unwrap();
        let printed = print_program(&p);
        let p2 = Program::from_source(&printed).unwrap();
        assert_eq!(p.startup, p2.startup);
    }

    #[test]
    fn roundtrip_figure_2_1() {
        roundtrip(
            "(p find-colored-block
               (goal ^type find-block ^color <c>)
               (block ^id <i> ^color <c> ^selected no)
               -->
               (modify 2 ^selected yes))",
        );
    }

    #[test]
    fn roundtrip_negation_and_predicates() {
        roundtrip(
            "(p q (a ^x <v> ^y { > 2 <= 10 } ^z << red green 3 >>)
                - (b ^w <> <v>)
                (c ^u >= <v>)
               -->
               (remove 3)
               (halt))",
        );
    }

    #[test]
    fn roundtrip_rhs_forms() {
        roundtrip(
            "(p q (a ^x <v>)
               -->
               (bind <w> (compute <v> + 1 * 2))
               (bind <g>)
               (make b ^y <w> ^z (compute <v> - 1))
               (write done <v> (crlf))
               (modify 1 ^x 0))",
        );
    }

    #[test]
    fn roundtrip_mea_and_floats() {
        roundtrip(
            "(strategy mea)
             (p q (a ^x 1.5 ^y -2.25) --> (make b ^z 3.0))",
        );
    }

    #[test]
    fn roundtrip_generated_workload_sources() {
        // The printer must handle everything our generators emit.
        // (A smaller weaver so the test stays fast.)
        let p1 = Program::from_source(
            "(literalize cell id x y layer state wire)
             (p expand (phase ^name expand ^net <n>) (wave ^net <n> ^cell <c> ^dist <d>)
               --> (make wave ^net <n> ^cell <c> ^dist (compute <d> + 1)))",
        )
        .unwrap();
        let printed = print_program(&p1);
        Program::from_source(&printed).unwrap();
    }

    #[test]
    fn modify_index_counts_all_ces() {
        // Positive CE 2 sits after a negated CE: the printed index must be
        // the all-CE index (3).
        let src = "(p q (a ^x 1) - (b ^y 2) (c ^z <v>) --> (modify 3 ^z nil))";
        let p = Program::from_source(src).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("(modify 3"), "{printed}");
        roundtrip(src);
    }
}
