//! Protocol-facing WME parse/print helpers.
//!
//! The serve layer speaks a line-oriented text protocol in which working-
//! memory elements travel as OPS5 `make`-style bodies: `class ^attr value
//! ...`. These helpers convert between that text form and the resolved
//! `(class, fields)` representation the engine ingests, using a program's
//! symbol and class tables so attribute names map to the same field slots
//! the compiled network tests.

use crate::error::{Ops5Error, Result};
use crate::program::ClassTable;
use crate::symbol::{SymbolId, SymbolTable};
use crate::value::Value;
use crate::wme::Wme;

/// Parses one value token: integer, float, or (interned) symbol.
pub fn parse_value(token: &str, symbols: &mut SymbolTable) -> Value {
    if let Ok(i) = token.parse::<i64>() {
        return Value::Int(i);
    }
    // Only accept floats that unambiguously look numeric, so symbols like
    // `1.2.3` or `-` stay symbols.
    if token.contains('.') {
        if let Ok(f) = token.parse::<f64>() {
            return Value::Float(f);
        }
    }
    Value::Sym(symbols.intern(token))
}

/// Parses a `class ^attr value ^attr value ...` WME body into the class
/// symbol and a field vector sized to the class arity.
///
/// Resolution is *strict*, unlike the engine's auto-extending `make_wme`
/// path: the class and every attribute must already be declared by the
/// loaded program. A protocol peer must not be able to grow a class layout
/// past what the compiled network tests.
pub fn parse_wme_text(
    text: &str,
    symbols: &mut SymbolTable,
    classes: &ClassTable,
) -> Result<(SymbolId, Vec<Value>)> {
    let mut toks = text.split_whitespace();
    let class_name = toks
        .next()
        .ok_or_else(|| Ops5Error::Runtime("empty WME text".into()))?;
    let class = symbols
        .get(class_name)
        .filter(|c| classes.info(*c).is_some())
        .ok_or_else(|| Ops5Error::Runtime(format!("unknown class `{class_name}`")))?;
    let info = classes.info(class).expect("checked above");
    let mut sets: Vec<(u16, Value)> = Vec::new();
    while let Some(t) = toks.next() {
        let attr_name = t
            .strip_prefix('^')
            .ok_or_else(|| Ops5Error::Runtime(format!("expected ^attr, got `{t}`")))?;
        if attr_name.is_empty() {
            return Err(Ops5Error::Runtime("empty attribute name after ^".into()));
        }
        let val_tok = toks
            .next()
            .ok_or_else(|| Ops5Error::Runtime(format!("^{attr_name} has no value")))?;
        let field = symbols
            .get(attr_name)
            .and_then(|a| info.field_of(a))
            .ok_or_else(|| {
                Ops5Error::Runtime(format!(
                    "attribute ^{attr_name} not declared for class `{class_name}`"
                ))
            })?;
        let value = parse_value(val_tok, symbols);
        sets.push((field, value));
    }
    let mut fields = vec![Value::NIL; info.arity() as usize];
    for (f, v) in sets {
        let f = f as usize;
        if f >= fields.len() {
            fields.resize(f + 1, Value::NIL);
        }
        fields[f] = v;
    }
    Ok((class, fields))
}

/// Renders a WME back to the protocol's `(class ^attr value ...)` form,
/// naming fields from the class table (falling back to positional indices
/// for undeclared slots). The output of [`print_wme`] parses back through
/// [`parse_wme_text`] once the surrounding parentheses are stripped.
pub fn print_wme(wme: &Wme, symbols: &SymbolTable, classes: &ClassTable) -> String {
    let attrs: &[SymbolId] = classes.info(wme.class).map(|i| &i.attrs[..]).unwrap_or(&[]);
    wme.display(symbols, attrs).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn fixture() -> Program {
        Program::from_source("(literalize block name on clear)").unwrap()
    }

    #[test]
    fn parse_resolves_attrs_to_fields() {
        let mut p = fixture();
        let (class, fields) =
            parse_wme_text("block ^on table ^name a", &mut p.symbols, &p.classes).unwrap();
        assert_eq!(class, p.symbols.get("block").unwrap());
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0], Value::Sym(p.symbols.get("a").unwrap()));
        assert_eq!(fields[1], Value::Sym(p.symbols.get("table").unwrap()));
        assert!(fields[2].is_nil());
    }

    #[test]
    fn parse_value_kinds() {
        let mut p = fixture();
        let (_, fields) =
            parse_wme_text("block ^name 42 ^on 2.5", &mut p.symbols, &p.classes).unwrap();
        assert_eq!(fields[0], Value::Int(42));
        assert_eq!(fields[1], Value::Float(2.5));
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut p = fixture();
        assert!(parse_wme_text("", &mut p.symbols, &p.classes).is_err());
        assert!(parse_wme_text("block name a", &mut p.symbols, &p.classes).is_err());
        assert!(parse_wme_text("block ^name", &mut p.symbols, &p.classes).is_err());
        assert!(
            parse_wme_text("block ^bogus 1", &mut p.symbols, &p.classes).is_err(),
            "undeclared attribute must not resolve"
        );
    }

    #[test]
    fn print_roundtrips_through_parse() {
        let mut p = fixture();
        let (class, fields) = parse_wme_text(
            "block ^name a ^on table ^clear yes",
            &mut p.symbols,
            &p.classes,
        )
        .unwrap();
        let w = Wme::new(class, fields.clone(), 7);
        let printed = print_wme(&w, &p.symbols, &p.classes);
        assert_eq!(printed, "(block ^name a ^on table ^clear yes)");
        let inner = printed.trim_start_matches('(').trim_end_matches(')');
        let (class2, fields2) = parse_wme_text(inner, &mut p.symbols, &p.classes).unwrap();
        assert_eq!(class2, class);
        assert_eq!(fields2, fields);
    }
}
