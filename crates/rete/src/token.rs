//! Match tokens.
//!
//! A token is an ordered list of WMEs matching a prefix of a production's
//! positive condition elements (§2.2). Tokens are immutable and shared; a
//! join extends its left token by one WME, producing a fresh token. Identity
//! (for memory lookups and conjugate-pair detection) is the sequence of WME
//! timetags — structurally equal WMEs created at different times are
//! different elements.

use crate::fxhash;
use ops5::{Value, WmeRef};
use std::fmt;
use std::sync::Arc;

/// An ordered list of matched WMEs (positive condition elements only).
#[derive(Clone)]
pub struct Token {
    wmes: Arc<[WmeRef]>,
}

impl Token {
    /// The empty token (left input of the first join when the first CE is
    /// negated never occurs — parser forbids it — but the dummy top token is
    /// still useful in tests).
    pub fn empty() -> Token {
        Token {
            wmes: Arc::from(Vec::new().into_boxed_slice()),
        }
    }

    /// A one-WME token, as produced by the alpha network.
    pub fn single(wme: WmeRef) -> Token {
        Token {
            wmes: Arc::from(vec![wme].into_boxed_slice()),
        }
    }

    /// Extends this token with one more WME (join output).
    pub fn extended(&self, wme: WmeRef) -> Token {
        let mut v = Vec::with_capacity(self.wmes.len() + 1);
        v.extend(self.wmes.iter().cloned());
        v.push(wme);
        Token {
            wmes: Arc::from(v.into_boxed_slice()),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.wmes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wmes.is_empty()
    }

    #[inline]
    pub fn wme(&self, idx: u16) -> &WmeRef {
        &self.wmes[idx as usize]
    }

    #[inline]
    pub fn wmes(&self) -> &[WmeRef] {
        &self.wmes
    }

    /// Value of `token[ce].field(f)` — the join-test left operand.
    #[inline]
    pub fn value(&self, ce: u16, field: u16) -> Value {
        self.wmes[ce as usize].field(field)
    }

    /// Token identity: equal iff same timetag sequence.
    #[inline]
    pub fn same_wmes(&self, other: &Token) -> bool {
        self.wmes.len() == other.wmes.len()
            && self
                .wmes
                .iter()
                .zip(other.wmes.iter())
                .all(|(a, b)| a.timetag == b.timetag)
    }

    /// Fx hash of the timetag sequence (used for fast identity pre-checks).
    pub fn identity_hash(&self) -> u64 {
        fxhash::hash_words(self.wmes.iter().map(|w| w.timetag))
    }

    pub fn timetags(&self) -> Vec<u64> {
        self.wmes.iter().map(|w| w.timetag).collect()
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tok[")?;
        for (i, w) in self.wmes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", w.timetag)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{SymbolId, Value, Wme};

    fn wme(tag: u64) -> WmeRef {
        Wme::new(SymbolId(1), vec![Value::Int(tag as i64)], tag)
    }

    #[test]
    fn extend_grows() {
        let t = Token::single(wme(1)).extended(wme(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.wme(1).timetag, 2);
    }

    #[test]
    fn identity_is_timetags() {
        let a = Token::single(wme(1)).extended(wme(2));
        let b = Token::single(wme(1)).extended(wme(2));
        let c = Token::single(wme(1)).extended(wme(3));
        assert!(a.same_wmes(&b));
        assert!(!a.same_wmes(&c));
        assert_eq!(a.identity_hash(), b.identity_hash());
    }

    #[test]
    fn value_reads_fields() {
        let t = Token::single(wme(7));
        assert_eq!(t.value(0, 0), Value::Int(7));
    }

    #[test]
    fn empty_token() {
        assert!(Token::empty().is_empty());
        assert_eq!(Token::empty().len(), 0);
    }
}
