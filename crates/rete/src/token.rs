//! Match tokens.
//!
//! A token is an ordered list of WMEs matching a prefix of a production's
//! positive condition elements (§2.2). Tokens are immutable and shared; a
//! join extends its left token by one WME, producing a fresh token. Identity
//! (for memory lookups and conjugate-pair detection) is the sequence of WME
//! timetags — structurally equal WMEs created at different times are
//! different elements.
//!
//! Representation: a parent-linked persistent list. Each join output shares
//! its parent's chain and allocates exactly one [`TokenNode`], so
//! `extended()` is O(1) instead of O(depth) — the paper's point that match
//! tasks are only 100–700 instructions makes token materialization the
//! dominant per-task cost otherwise. The identity hash is the Fx left fold
//! over the timetag sequence; because the fold is incremental
//! (`mix(parent_hash, timetag)`), it is computed once at construction and
//! every memory probe reads the cached word.

use crate::fxhash;
use ops5::{Value, WmeRef};
use std::fmt;
use std::sync::Arc;

/// One link in a token chain: the most recent WME plus the shared parent.
struct TokenNode {
    parent: Option<Arc<TokenNode>>,
    wme: WmeRef,
    /// Number of WMEs in the chain ending here (1-based).
    depth: u16,
    /// Fx fold of the timetag sequence root → here, cached at construction.
    hash: u64,
}

/// An ordered list of matched WMEs (positive condition elements only).
#[derive(Clone)]
pub struct Token {
    node: Option<Arc<TokenNode>>,
}

impl Token {
    /// The empty token (left input of the first join when the first CE is
    /// negated never occurs — parser forbids it — but the dummy top token is
    /// still useful in tests). Allocation-free.
    pub fn empty() -> Token {
        Token { node: None }
    }

    /// A one-WME token, as produced by the alpha network.
    pub fn single(wme: WmeRef) -> Token {
        Token::empty().extended(wme)
    }

    /// Extends this token with one more WME (join output). O(1): the parent
    /// chain is shared, one `TokenNode` is allocated.
    pub fn extended(&self, wme: WmeRef) -> Token {
        let (depth, hash) = match &self.node {
            Some(n) => (n.depth + 1, fxhash::mix(n.hash, wme.timetag)),
            None => (1, fxhash::mix(0, wme.timetag)),
        };
        Token {
            node: Some(Arc::new(TokenNode {
                parent: self.node.clone(),
                wme,
                depth,
                hash,
            })),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.node.as_ref().map_or(0, |n| n.depth as usize)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node.is_none()
    }

    /// The WME bound to positive CE `idx` (0-based from the front). Walks
    /// `len() - 1 - idx` parent links; tokens are at most a production's
    /// positive-CE count deep, so the walk is a handful of hops.
    #[inline]
    pub fn wme(&self, idx: u16) -> &WmeRef {
        let mut n = self.node.as_deref().expect("wme index out of range");
        debug_assert!((idx as usize) < n.depth as usize);
        while n.depth != idx + 1 {
            n = n.parent.as_deref().expect("wme index out of range");
        }
        &n.wme
    }

    /// The most recently matched WME (`wme(len-1)`), O(1).
    #[inline]
    pub fn last_wme(&self) -> Option<&WmeRef> {
        self.node.as_deref().map(|n| &n.wme)
    }

    /// Collects the WMEs front-to-back (instantiation construction — the
    /// cold path; hot paths address CEs through [`Token::wme`]).
    pub fn wme_vec(&self) -> Vec<WmeRef> {
        let mut v: Vec<WmeRef> = self.iter_back().cloned().collect();
        v.reverse();
        v
    }

    /// Value of `token[ce].field(f)` — the join-test left operand.
    #[inline]
    pub fn value(&self, ce: u16, field: u16) -> Value {
        self.wme(ce).field(field)
    }

    /// Token identity: equal iff same timetag sequence. The cached hash and
    /// depth reject almost all non-equal pairs in two word compares; the
    /// chain walk confirms (hash collisions must not merge identities).
    #[inline]
    pub fn same_wmes(&self, other: &Token) -> bool {
        match (&self.node, &other.node) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                if a.depth != b.depth || a.hash != b.hash {
                    return false;
                }
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                self.iter_back()
                    .zip(other.iter_back())
                    .all(|(x, y)| x.timetag == y.timetag)
            }
            _ => false,
        }
    }

    /// Fx hash of the timetag sequence (used for fast identity pre-checks).
    /// Cached at construction — reading it is free.
    #[inline]
    pub fn identity_hash(&self) -> u64 {
        self.node.as_ref().map_or(0, |n| n.hash)
    }

    pub fn timetags(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.iter_back().map(|w| w.timetag).collect();
        v.reverse();
        v
    }

    /// Iterates the chain back-to-front (most recent WME first).
    fn iter_back(&self) -> TokenIter<'_> {
        TokenIter {
            node: self.node.as_deref(),
        }
    }
}

struct TokenIter<'a> {
    node: Option<&'a TokenNode>,
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = &'a WmeRef;

    #[inline]
    fn next(&mut self) -> Option<&'a WmeRef> {
        let n = self.node?;
        self.node = n.parent.as_deref();
        Some(&n.wme)
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tok[")?;
        for (i, t) in self.timetags().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{SymbolId, Value, Wme};

    fn wme(tag: u64) -> WmeRef {
        Wme::new(SymbolId(1), vec![Value::Int(tag as i64)], tag)
    }

    #[test]
    fn extend_grows() {
        let t = Token::single(wme(1)).extended(wme(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.wme(1).timetag, 2);
        assert_eq!(t.wme(0).timetag, 1);
        assert_eq!(t.last_wme().unwrap().timetag, 2);
    }

    #[test]
    fn identity_is_timetags() {
        let a = Token::single(wme(1)).extended(wme(2));
        let b = Token::single(wme(1)).extended(wme(2));
        let c = Token::single(wme(1)).extended(wme(3));
        assert!(a.same_wmes(&b));
        assert!(!a.same_wmes(&c));
        assert_eq!(a.identity_hash(), b.identity_hash());
    }

    #[test]
    fn cached_hash_matches_fold_of_timetags() {
        // The incremental hash must equal the flat fold over the sequence —
        // memories built before and after this representation change probe
        // the same lines.
        let mut t = Token::empty();
        for tag in [5u64, 9, 2, 40, 17] {
            t = t.extended(wme(tag));
            assert_eq!(t.identity_hash(), fxhash::hash_words(t.timetags()));
        }
    }

    #[test]
    fn value_reads_fields() {
        let t = Token::single(wme(7));
        assert_eq!(t.value(0, 0), Value::Int(7));
    }

    #[test]
    fn empty_token() {
        assert!(Token::empty().is_empty());
        assert_eq!(Token::empty().len(), 0);
        assert_eq!(Token::empty().identity_hash(), 0);
        assert!(Token::empty().same_wmes(&Token::empty()));
    }

    #[test]
    fn wme_vec_is_front_to_back() {
        let t = Token::single(wme(1)).extended(wme(2)).extended(wme(3));
        let tags: Vec<u64> = t.wme_vec().iter().map(|w| w.timetag).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(t.timetags(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_parent_chains_diverge() {
        let base = Token::single(wme(1)).extended(wme(2));
        let a = base.extended(wme(3));
        let b = base.extended(wme(4));
        assert_eq!(a.timetags(), vec![1, 2, 3]);
        assert_eq!(b.timetags(), vec![1, 2, 4]);
        assert!(!a.same_wmes(&b));
    }
}
