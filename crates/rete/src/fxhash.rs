//! A small, fast, deterministic hash for token-memory keys.
//!
//! The token hash tables are the hottest shared structure in the system (the
//! paper devotes §3.2 to their locking); SipHash would dominate the cost of a
//! node activation, so we use the Fx multiply-rotate mix (the rustc hasher),
//! implemented locally to keep the dependency set to the approved list.

/// 64-bit Fx hash step.
#[inline]
pub fn mix(seed: u64, word: u64) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    (seed.rotate_left(5) ^ word).wrapping_mul(K)
}

/// Hashes a slice of words.
#[inline]
pub fn hash_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0u64;
    for w in words {
        h = mix(h, w);
    }
    h
}

/// A `std::hash::Hasher` over the Fx mix, for use with standard collections
/// on non-hot paths that still want determinism.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.hash = mix(self.hash, u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = mix(self.hash, v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = mix(self.hash, v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.hash = mix(self.hash, v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn deterministic() {
        assert_eq!(hash_words([1, 2, 3]), hash_words([1, 2, 3]));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(hash_words([1, 2]), hash_words([2, 1]));
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(hash_words([0]), hash_words([1]));
        // Empty vs zero word must differ is not guaranteed by Fx (empty = 0);
        // just check a spread of small keys stays collision-free.
        let hs: Vec<u64> = (0u64..1000).map(|i| hash_words([i])).collect();
        let mut sorted = hs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hs.len());
    }

    #[test]
    fn hasher_trait_matches_words() {
        let mut h = FxHasher::default();
        h.write_u64(42);
        assert_eq!(h.finish(), hash_words([42]));
    }
}
