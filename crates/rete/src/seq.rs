//! The sequential matcher — the paper's uniprocessor C implementations.
//!
//! `SeqMatcher<ListMem>` is *vs1*, `SeqMatcher<HashMem>` is *vs2*
//! (Table 4-1). Node activations are processed depth-first off an explicit
//! stack; each activation updates the memories and schedules successor
//! activations, exactly the task structure the parallel matcher distributes
//! across match processes.

use crate::memory::{HashMem, HashMemConfig, ListMem, TokenMem};
use crate::network::{AlphaSucc, JoinId, Network, Succ};
use crate::token::Token;
use ops5::{
    ChangeBatch, CsChange, Instantiation, MatchStats, Matcher, ProdId, QuiesceReport, Sign,
    StatsDeltaTracker, WmeRef,
};
use std::sync::Arc;

/// One schedulable unit of match work (§3.1: a node activation).
#[derive(Debug, Clone)]
pub enum Task {
    Left {
        join: JoinId,
        sign: Sign,
        token: Token,
    },
    Right {
        join: JoinId,
        sign: Sign,
        wme: WmeRef,
    },
    Terminal {
        prod: ProdId,
        sign: Sign,
        token: Token,
    },
}

/// Locally-buffered per-join profile. The hot path does plain `u64`
/// increments; the buffered counts fold into the shared atomic
/// [`obs::NodeProfile`] once per quiesce. On null-activation-dominated
/// workloads an activation does so little work that even one relaxed RMW
/// per record costs several percent of wall, and the sequential matcher
/// has no concurrent readers mid-cycle to serve.
struct BufferedProfile {
    shared: Arc<obs::NodeProfile>,
    acts: Vec<u64>,
    scans: Vec<u64>,
}

impl BufferedProfile {
    fn new(n_joins: usize) -> BufferedProfile {
        BufferedProfile {
            shared: Arc::new(obs::NodeProfile::new(n_joins)),
            acts: vec![0; n_joins],
            scans: vec![0; n_joins],
        }
    }

    #[inline]
    fn record_activation(&mut self, join: usize) {
        self.acts[join] += 1;
    }

    #[inline]
    fn record_scan(&mut self, join: usize, examined: u64) {
        self.scans[join] += examined;
    }

    fn flush(&mut self) {
        for (join, n) in self.acts.iter_mut().enumerate() {
            if *n != 0 {
                self.shared.record_activations(join, *n);
                *n = 0;
            }
        }
        for (join, n) in self.scans.iter_mut().enumerate() {
            if *n != 0 {
                self.shared.record_scan(join, *n);
                *n = 0;
            }
        }
    }
}

/// Sequential Rete matcher over a pluggable memory implementation.
pub struct SeqMatcher<M: TokenMem> {
    net: Arc<Network>,
    mem: M,
    agenda: Vec<Task>,
    out: Vec<CsChange>,
    stats: MatchStats,
    delta: StatsDeltaTracker,
    /// Reusable scan buffers: a steady-state activation allocates nothing.
    scratch_wmes: Vec<WmeRef>,
    scratch_tokens: Vec<Token>,
    /// Per-join activation/scan profile; `None` (the default) keeps the
    /// hot path free of recording.
    profile: Option<BufferedProfile>,
}

impl SeqMatcher<ListMem> {
    /// vs1: linear-list memories.
    pub fn vs1(net: Arc<Network>) -> Self {
        let mem = ListMem::new(net.n_joins());
        SeqMatcher {
            net,
            mem,
            agenda: Vec::new(),
            out: Vec::new(),
            stats: MatchStats::default(),
            delta: StatsDeltaTracker::default(),
            scratch_wmes: Vec::new(),
            scratch_tokens: Vec::new(),
            profile: None,
        }
    }
}

impl SeqMatcher<HashMem> {
    /// vs2: global hash-table memories.
    pub fn vs2(net: Arc<Network>, cfg: HashMemConfig) -> Self {
        SeqMatcher {
            net,
            mem: HashMem::new(cfg),
            agenda: Vec::new(),
            out: Vec::new(),
            stats: MatchStats::default(),
            delta: StatsDeltaTracker::default(),
            scratch_wmes: Vec::new(),
            scratch_tokens: Vec::new(),
            profile: None,
        }
    }
}

/// Factory helpers returning boxed matchers (for table-driven harnesses).
pub fn boxed_vs1(net: Arc<Network>) -> Box<dyn Matcher> {
    Box::new(SeqMatcher::vs1(net))
}

pub fn boxed_vs2(net: Arc<Network>, cfg: HashMemConfig) -> Box<dyn Matcher> {
    Box::new(SeqMatcher::vs2(net, cfg))
}

/// Schedules a join output to every successor (free function so scan-buffer
/// drains can push while the buffer is borrowed from `self`). With sharing
/// off every join has exactly one successor; with it on a shared join fans
/// the token out to each consumer (token clones are `Arc` bumps).
fn push_succs(agenda: &mut Vec<Task>, succs: &[Succ], token: &Token, sign: Sign) {
    for succ in succs {
        match *succ {
            Succ::Join(j) => agenda.push(Task::Left {
                join: j,
                sign,
                token: token.clone(),
            }),
            Succ::Terminal(p) => agenda.push(Task::Terminal {
                prod: p,
                sign,
                token: token.clone(),
            }),
        }
    }
}

impl<M: TokenMem + Send> SeqMatcher<M> {
    fn run_task(&mut self, task: Task) {
        match task {
            Task::Left { join, sign, token } => {
                self.stats.activations += 1;
                self.stats.join_activations += 1;
                if let Some(p) = &mut self.profile {
                    p.record_activation(join as usize);
                }
                let unlink = self.net.options.unlinking;
                let j = self.net.join(join).clone();
                // One key per activation: the same key addresses the remove
                // or insert and the opposite-memory scan.
                let key = self.mem.left_key(&j, &token);
                // Unlinking gate: with the join's right memory globally
                // empty the opposite-memory scan is a null activation —
                // skip it (own-side insert/remove still runs). The gate
                // only suppresses work that would have produced nothing.
                let opp_empty = self.mem.right_count(&j) == 0;
                if !j.negated {
                    match sign {
                        Sign::Plus => self.mem.insert_left(&j, key, token.clone(), 0),
                        Sign::Minus => {
                            let r = self.mem.remove_left(&j, key, &token);
                            self.stats.same_tokens_left += r.examined;
                            self.stats.same_searches_left += 1;
                            debug_assert!(
                                r.entry.is_some(),
                                "sequential delete must find its token"
                            );
                        }
                    }
                    if unlink && opp_empty {
                        self.stats.null_skipped += 1;
                    } else {
                        if opp_empty {
                            self.stats.null_activations += 1;
                        }
                        let scan = self.mem.scan_right(&j, key, &token, &mut self.scratch_wmes);
                        self.stats.opp_tokens_left += scan.examined;
                        if let Some(p) = &mut self.profile {
                            p.record_scan(join as usize, scan.examined);
                        }
                        if scan.nonempty {
                            self.stats.opp_nonempty_left += 1;
                        }
                        for w in self.scratch_wmes.drain(..) {
                            push_succs(&mut self.agenda, &j.succs, &token.extended(w), sign);
                        }
                    }
                } else {
                    match sign {
                        Sign::Plus => {
                            let n = if unlink && opp_empty {
                                self.stats.null_skipped += 1;
                                0
                            } else {
                                if opp_empty {
                                    self.stats.null_activations += 1;
                                }
                                let (n, examined, nonempty) = self.mem.count_right(&j, key, &token);
                                self.stats.opp_tokens_left += examined;
                                if let Some(p) = &mut self.profile {
                                    p.record_scan(join as usize, examined);
                                }
                                if nonempty {
                                    self.stats.opp_nonempty_left += 1;
                                }
                                n
                            };
                            self.mem.insert_left(&j, key, token.clone(), n);
                            if n == 0 {
                                push_succs(&mut self.agenda, &j.succs, &token, Sign::Plus);
                            }
                        }
                        Sign::Minus => {
                            let r = self.mem.remove_left(&j, key, &token);
                            self.stats.same_tokens_left += r.examined;
                            self.stats.same_searches_left += 1;
                            if let Some(neg_count) = r.entry {
                                if neg_count == 0 {
                                    push_succs(&mut self.agenda, &j.succs, &token, Sign::Minus);
                                }
                            }
                        }
                    }
                }
            }
            Task::Right { join, sign, wme } => {
                self.stats.activations += 1;
                self.stats.join_activations += 1;
                if let Some(p) = &mut self.profile {
                    p.record_activation(join as usize);
                }
                let unlink = self.net.options.unlinking;
                let j = self.net.join(join).clone();
                let key = self.mem.right_key(&j, &wme);
                // Unlinking gate, mirrored: an empty left memory means no
                // token can pair with (or be count-adjusted by) this WME.
                let opp_empty = self.mem.left_count(&j) == 0;
                if !j.negated {
                    match sign {
                        Sign::Plus => self.mem.insert_right(&j, key, wme.clone()),
                        Sign::Minus => {
                            let r = self.mem.remove_right(&j, key, &wme);
                            self.stats.same_tokens_right += r.examined;
                            self.stats.same_searches_right += 1;
                            debug_assert!(r.entry.is_some(), "sequential delete must find its wme");
                        }
                    }
                    if unlink && opp_empty {
                        self.stats.null_skipped += 1;
                    } else {
                        if opp_empty {
                            self.stats.null_activations += 1;
                        }
                        let scan = self.mem.scan_left(&j, key, &wme, &mut self.scratch_tokens);
                        self.stats.opp_tokens_right += scan.examined;
                        if let Some(p) = &mut self.profile {
                            p.record_scan(join as usize, scan.examined);
                        }
                        if scan.nonempty {
                            self.stats.opp_nonempty_right += 1;
                        }
                        for t in self.scratch_tokens.drain(..) {
                            push_succs(&mut self.agenda, &j.succs, &t.extended(wme.clone()), sign);
                        }
                    }
                } else {
                    match sign {
                        Sign::Plus => {
                            self.mem.insert_right(&j, key, wme.clone());
                            if unlink && opp_empty {
                                self.stats.null_skipped += 1;
                            } else {
                                if opp_empty {
                                    self.stats.null_activations += 1;
                                }
                                let scan = self.mem.adjust_left_counts(
                                    &j,
                                    key,
                                    &wme,
                                    1,
                                    &mut self.scratch_tokens,
                                );
                                self.stats.opp_tokens_right += scan.examined;
                                if let Some(p) = &mut self.profile {
                                    p.record_scan(join as usize, scan.examined);
                                }
                                if scan.nonempty {
                                    self.stats.opp_nonempty_right += 1;
                                }
                                for t in self.scratch_tokens.drain(..) {
                                    // 0→1: those tokens just lost their support.
                                    push_succs(&mut self.agenda, &j.succs, &t, Sign::Minus);
                                }
                            }
                        }
                        Sign::Minus => {
                            let r = self.mem.remove_right(&j, key, &wme);
                            self.stats.same_tokens_right += r.examined;
                            self.stats.same_searches_right += 1;
                            if unlink && opp_empty {
                                self.stats.null_skipped += 1;
                            } else {
                                if opp_empty {
                                    self.stats.null_activations += 1;
                                }
                                let scan = self.mem.adjust_left_counts(
                                    &j,
                                    key,
                                    &wme,
                                    -1,
                                    &mut self.scratch_tokens,
                                );
                                self.stats.opp_tokens_right += scan.examined;
                                if let Some(p) = &mut self.profile {
                                    p.record_scan(join as usize, scan.examined);
                                }
                                if scan.nonempty {
                                    self.stats.opp_nonempty_right += 1;
                                }
                                for t in self.scratch_tokens.drain(..) {
                                    // 1→0: those tokens regained satisfaction.
                                    push_succs(&mut self.agenda, &j.succs, &t, Sign::Plus);
                                }
                            }
                        }
                    }
                }
            }
            Task::Terminal { prod, sign, token } => {
                self.stats.activations += 1;
                self.stats.cs_changes += 1;
                let inst = Instantiation {
                    prod,
                    wmes: token.wme_vec(),
                };
                self.out.push(match sign {
                    Sign::Plus => CsChange::Insert(inst),
                    Sign::Minus => CsChange::Remove(inst),
                });
            }
        }
    }

    fn drain(&mut self) {
        while let Some(t) = self.agenda.pop() {
            self.run_task(t);
        }
    }

    /// Direct access to the network (tests, tooling).
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Total memory entries (invariant checks in tests).
    pub fn memory_entries(&self) -> usize {
        self.mem.total_entries()
    }
}

impl<M: TokenMem + Send> Matcher for SeqMatcher<M> {
    fn submit(&mut self, batch: &ChangeBatch) {
        // Pairs already annihilated inside the batch never reach the
        // network; account for them like the parallel matcher does.
        self.stats.conjugate_pairs += batch.annihilated();
        for (class, group) in batch.groups() {
            // One grouped constant-test task per class (§3.1): the
            // pattern chain for the class is resolved once per *group*,
            // then every change in the group is tested against it.
            self.stats.alpha_activations += 1;
            self.stats.wme_changes += group.len() as u64;
            let pats: Vec<_> = self.net.patterns_for_class(class).to_vec();
            for change in group {
                let wme = &change.wme;
                for &pid in &pats {
                    let pat = self.net.pattern(pid);
                    if !pat.tests.iter().all(|t| t.passes(wme)) {
                        continue;
                    }
                    let succs: Vec<AlphaSucc> = pat.succs.clone();
                    for succ in succs {
                        match succ {
                            AlphaSucc::JoinLeft(j) => self.agenda.push(Task::Left {
                                join: j,
                                sign: change.sign,
                                token: Token::single(wme.clone()),
                            }),
                            AlphaSucc::JoinRight(j) => self.agenda.push(Task::Right {
                                join: j,
                                sign: change.sign,
                                wme: wme.clone(),
                            }),
                            AlphaSucc::Terminal(p) => self.agenda.push(Task::Terminal {
                                prod: p,
                                sign: change.sign,
                                token: Token::single(wme.clone()),
                            }),
                        }
                    }
                }
                // Each change's beta cascade completes before the next
                // change's begins: the sequential memories rely on the
                // one-change-at-a-time discipline (no conjugate-pair
                // parking here, unlike the parallel matcher).
                self.drain();
            }
        }
    }

    fn quiesce(&mut self) -> QuiesceReport {
        debug_assert!(self.agenda.is_empty());
        if let Some(p) = &mut self.profile {
            p.flush();
        }
        QuiesceReport {
            cs_changes: std::mem::take(&mut self.out),
            stats_delta: self.delta.take(self.stats),
            phase: None,
        }
    }

    fn stats(&self) -> MatchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
        self.delta.reset();
    }

    fn name(&self) -> &'static str {
        self.mem.kind_name()
    }

    fn enable_obs(&mut self, _registry: &Arc<obs::Registry>) {
        if self.profile.is_none() {
            self.profile = Some(BufferedProfile::new(self.net.n_joins()));
        }
    }

    fn node_profile(&self) -> Option<Arc<obs::NodeProfile>> {
        self.profile.as_ref().map(|p| p.shared.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{Program, Sign, Value, Wme, WmeChange};

    fn net_of(src: &str) -> (Program, Arc<Network>) {
        let prog = Program::from_source(src).unwrap();
        let net = Arc::new(Network::compile(&prog).unwrap());
        (prog, net)
    }

    fn wme(prog: &mut Program, class: &str, vals: Vec<Value>, tag: u64) -> WmeRef {
        let c = prog.symbols.intern(class);
        Wme::new(c, vals, tag)
    }

    fn add(m: &mut dyn Matcher, w: WmeRef) {
        m.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: w,
        }));
    }

    fn del(m: &mut dyn Matcher, w: WmeRef) {
        m.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Minus,
            wme: w,
        }));
    }

    fn both(src: &str) -> (Program, Arc<Network>, Vec<Box<dyn Matcher>>) {
        let (prog, net) = net_of(src);
        let ms: Vec<Box<dyn Matcher>> = vec![
            boxed_vs1(net.clone()),
            boxed_vs2(net.clone(), HashMemConfig { buckets: 16 }),
        ];
        (prog, net, ms)
    }

    #[test]
    fn two_ce_join_fires() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <v>) --> (halt))");
        for mut m in ms {
            let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
            add(m.as_mut(), wa.clone());
            assert!(m.quiesce().cs_changes.is_empty(), "no match with one wme");
            add(m.as_mut(), wb.clone());
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1);
            match &cs[0] {
                CsChange::Insert(inst) => {
                    assert_eq!(inst.wmes.len(), 2);
                    assert_eq!(inst.wmes[0].timetag, 1);
                    assert_eq!(inst.wmes[1].timetag, 2);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn right_then_left_order_also_fires() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <v>) --> (halt))");
        for mut m in ms {
            let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
            add(m.as_mut(), wb);
            add(m.as_mut(), wa);
            assert_eq!(m.quiesce().cs_changes.len(), 1);
        }
    }

    #[test]
    fn delete_retracts_instantiation() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <v>) --> (halt))");
        for mut m in ms {
            let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
            add(m.as_mut(), wa.clone());
            add(m.as_mut(), wb.clone());
            m.quiesce();
            del(m.as_mut(), wa);
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1);
            assert!(matches!(cs[0], CsChange::Remove(_)));
        }
    }

    #[test]
    fn negated_ce_blocks_and_unblocks() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) - (b ^y <v>) --> (halt))");
        for mut m in ms {
            let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
            add(m.as_mut(), wa.clone());
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1, "fires while no blocker exists");
            assert!(matches!(cs[0], CsChange::Insert(_)));

            add(m.as_mut(), wb.clone());
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1, "blocker retracts it");
            assert!(matches!(cs[0], CsChange::Remove(_)));

            del(m.as_mut(), wb);
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1, "removing blocker re-fires");
            assert!(matches!(cs[0], CsChange::Insert(_)));
        }
    }

    #[test]
    fn blocker_added_first() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) - (b ^y <v>) --> (halt))");
        for mut m in ms {
            let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
            add(m.as_mut(), wb);
            add(m.as_mut(), wa);
            assert!(m.quiesce().cs_changes.is_empty(), "blocked from the start");
        }
    }

    #[test]
    fn three_ce_chain() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <v> ^z <w>) (c ^u <w>) --> (halt))");
        for mut m in ms {
            add(m.as_mut(), wme(&mut prog, "a", vec![Value::Int(1)], 1));
            add(
                m.as_mut(),
                wme(&mut prog, "b", vec![Value::Int(1), Value::Int(9)], 2),
            );
            add(m.as_mut(), wme(&mut prog, "c", vec![Value::Int(9)], 3));
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1);
            match &cs[0] {
                CsChange::Insert(i) => assert_eq!(i.wmes.len(), 3),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn cross_product_counts() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <w>) --> (halt))");
        for mut m in ms {
            for i in 0..3 {
                add(
                    m.as_mut(),
                    wme(&mut prog, "a", vec![Value::Int(i)], i as u64 + 1),
                );
            }
            for i in 0..4 {
                add(
                    m.as_mut(),
                    wme(&mut prog, "b", vec![Value::Int(i)], i as u64 + 10),
                );
            }
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 12, "3x4 cross product");
        }
    }

    #[test]
    fn modify_as_delete_add() {
        let (mut prog, _net, ms) = both("(p q (a ^x 1) --> (halt))");
        for mut m in ms {
            let w1 = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            add(m.as_mut(), w1.clone());
            assert_eq!(m.quiesce().cs_changes.len(), 1);
            // modify: delete then add with new timetag and value 2.
            del(m.as_mut(), w1);
            let w2 = wme(&mut prog, "a", vec![Value::Int(2)], 2);
            add(m.as_mut(), w2);
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1);
            assert!(matches!(cs[0], CsChange::Remove(_)));
        }
    }

    #[test]
    fn stats_are_recorded() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <v>) --> (halt))");
        for mut m in ms {
            add(m.as_mut(), wme(&mut prog, "a", vec![Value::Int(1)], 1));
            add(m.as_mut(), wme(&mut prog, "b", vec![Value::Int(1)], 2));
            m.quiesce();
            let s = m.stats();
            assert_eq!(s.wme_changes, 2);
            assert!(s.activations >= 2);
            assert_eq!(s.cs_changes, 1);
            assert_eq!(s.opp_nonempty_right, 1);
        }
    }

    #[test]
    fn vs1_examines_more_than_vs2() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let mut m1 = SeqMatcher::vs1(net.clone());
        let mut m2 = SeqMatcher::vs2(net.clone(), HashMemConfig { buckets: 64 });
        for i in 0..20i64 {
            let wb = wme(&mut prog, "b", vec![Value::Int(i)], i as u64 + 1);
            m1.submit(&ChangeBatch::single(WmeChange {
                sign: Sign::Plus,
                wme: wb.clone(),
            }));
            m2.submit(&ChangeBatch::single(WmeChange {
                sign: Sign::Plus,
                wme: wb,
            }));
        }
        let wa = wme(&mut prog, "a", vec![Value::Int(5)], 100);
        m1.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: wa.clone(),
        }));
        m2.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: wa,
        }));
        assert_eq!(m1.quiesce().cs_changes.len(), 1);
        assert_eq!(m2.quiesce().cs_changes.len(), 1);
        assert!(m1.stats().opp_tokens_left > m2.stats().opp_tokens_left * 3);
    }

    /// Unlinking gate lifecycle: a join whose opposite memory is empty
    /// skips its scans (unlinked), starts scanning again the moment the
    /// memory becomes non-empty (relinked), and survives a conjugate
    /// add/delete pair that empties the memory again — producing exactly
    /// the CS changes of an unlinking-off matcher throughout.
    #[test]
    fn unlinking_gate_relinks_after_conjugate_add_delete() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let prog = Program::from_source(src).unwrap();
        let on = Arc::new(
            Network::compile_with(
                &prog,
                crate::network::NetworkOptions {
                    sharing: false,
                    unlinking: true,
                },
            )
            .unwrap(),
        );
        let off = Arc::new(Network::compile(&prog).unwrap());
        let mut prog = prog;
        let mut m_on = SeqMatcher::vs2(on, HashMemConfig { buckets: 16 });
        let mut m_off = SeqMatcher::vs2(off, HashMemConfig { buckets: 16 });

        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
        let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
        let wb2 = wme(&mut prog, "b", vec![Value::Int(1)], 3);

        let step = |m_on: &mut SeqMatcher<HashMem>,
                    m_off: &mut SeqMatcher<HashMem>,
                    sign: Sign,
                    w: &WmeRef,
                    label: &str| {
            for m in [&mut *m_on, &mut *m_off] {
                m.submit(&ChangeBatch::single(WmeChange {
                    sign,
                    wme: w.clone(),
                }));
            }
            let a = format!("{:?}", m_on.quiesce().cs_changes);
            let b = format!("{:?}", m_off.quiesce().cs_changes);
            assert_eq!(a, b, "CS divergence at step {label}");
        };

        // Left memory empty: the right activation for wa's join is gated.
        step(&mut m_on, &mut m_off, Sign::Plus, &wb, "add b (unlinked)");
        assert_eq!(m_on.stats().null_skipped, 1);
        assert_eq!(m_on.stats().null_activations, 0);
        // Non-empty right memory: the gate must relink and find the pair.
        step(&mut m_on, &mut m_off, Sign::Plus, &wa, "add a (relinked)");
        assert_eq!(m_on.stats().null_skipped, 1, "relinked scan performed");
        // Conjugate pair through the (now populated) join.
        step(&mut m_on, &mut m_off, Sign::Plus, &wb2, "conjugate add");
        step(&mut m_on, &mut m_off, Sign::Minus, &wb2, "conjugate delete");
        // Empty the left memory again; b's retract is gated once more.
        step(&mut m_on, &mut m_off, Sign::Minus, &wa, "remove a");
        step(
            &mut m_on,
            &mut m_off,
            Sign::Minus,
            &wb,
            "remove b (unlinked)",
        );
        assert!(m_on.stats().null_skipped > 1);
        assert_eq!(
            m_on.stats().null_activations,
            0,
            "unlinking leaves no null activation performed"
        );
        assert_eq!(m_off.stats().null_skipped, 0);
        assert!(m_off.stats().null_activations > 0);
        assert_eq!(m_on.memory_entries(), 0);
        assert_eq!(m_off.memory_entries(), 0);
    }

    #[test]
    fn duplicate_value_wmes_are_distinct() {
        let (mut prog, _net, ms) = both("(p q (a ^x <v>) (b ^y <v>) --> (halt))");
        for mut m in ms {
            let wa1 = wme(&mut prog, "a", vec![Value::Int(1)], 1);
            let wa2 = wme(&mut prog, "a", vec![Value::Int(1)], 2);
            let wb = wme(&mut prog, "b", vec![Value::Int(1)], 3);
            add(m.as_mut(), wa1.clone());
            add(m.as_mut(), wa2);
            add(m.as_mut(), wb);
            assert_eq!(m.quiesce().cs_changes.len(), 2);
            del(m.as_mut(), wa1);
            let cs = m.quiesce().cs_changes;
            assert_eq!(cs.len(), 1, "only the instantiation with wa1 retracts");
        }
    }
}
