//! Token memories: per-join linear lists (*vs1*) and the two global hash
//! tables (*vs2*).
//!
//! The matcher sees one interface, [`TokenMem`]; the two implementations
//! reproduce the paper's uniprocessor versions:
//!
//! * [`ListMem`] — vs1: every join keeps its left tokens and right WMEs in
//!   plain vectors, "just as uniprocessor lisp implementations do". Every
//!   scan examines the entire opposite memory; every delete searches the
//!   entire same memory.
//! * [`HashMem`] — vs2: two global hash tables hold all left tokens and all
//!   right WMEs for the whole network. The key covers the join id and the
//!   values under the join's equality tests, so a scan only examines the
//!   entries of one bucket (a "line"). Joins without equality tests (the
//!   cross-product case) hash on the join id alone and degenerate to the
//!   list behaviour — the Tourney pathology.
//!
//! Hot-path contract: the caller computes the activation's bucket key once
//! (via [`TokenMem::left_key`]/[`TokenMem::right_key`]) and threads it
//! through every operation of that activation, so vs2 hashes once per
//! activation instead of once per operation. Scans append matches into a
//! caller-owned scratch buffer instead of allocating a fresh `Vec`, so a
//! steady-state node activation performs no heap allocation in the memory
//! layer. Every operation still reports how many tokens it *examined*, the
//! raw data for Tables 4-2 and 4-3.

use crate::network::JoinNode;
use crate::token::Token;
use ops5::{Wme, WmeRef};

/// Which memory implementation a matcher uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// vs1 — per-join linear lists.
    List,
    /// vs2 — global left/right hash tables.
    Hash(HashMemConfig),
}

/// Configuration for the global hash tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashMemConfig {
    /// Bucket count per table; rounded up to a power of two.
    pub buckets: usize,
}

impl Default for HashMemConfig {
    fn default() -> Self {
        // "Two large hash tables which hold all the tokens for the entire
        // network": with hundreds of rules the tables hold tens of
        // thousands of entries, and bucket sharing between joins costs
        // skip-scans, so size generously.
        HashMemConfig { buckets: 16384 }
    }
}

/// Work counters of a scan of the opposite memory (matches go into the
/// caller's scratch buffer).
#[derive(Debug, Clone, Copy)]
pub struct ScanStats {
    /// Tokens examined in the opposite memory.
    pub examined: u64,
    /// Whether the opposite memory contained any candidate for this join.
    pub nonempty: bool,
}

/// Result of a delete search in the same memory.
pub struct Removed<T> {
    pub entry: Option<T>,
    /// Tokens examined before the target was found.
    pub examined: u64,
}

/// Storage interface shared by vs1 and vs2.
///
/// `key` arguments are the activation's bucket key, computed once via
/// [`TokenMem::left_key`] (left activations) or [`TokenMem::right_key`]
/// (right activations) and reused for the removes, inserts, and scans of
/// that activation. [`ListMem`] has no buckets and returns 0.
pub trait TokenMem {
    /// The canonical matcher-variant name this memory kind implements
    /// ("vs1" for linear lists, "vs2" for the hashed lines). Surfaced as
    /// `SeqMatcher::name()` so every matcher kind reports a distinct name.
    fn kind_name(&self) -> &'static str;

    /// Bucket key for a token entering this join's left memory.
    fn left_key(&self, j: &JoinNode, token: &Token) -> u64;

    /// Bucket key for a WME entering this join's right memory.
    fn right_key(&self, j: &JoinNode, wme: &Wme) -> u64;

    /// Insert a token into the join's left memory. `neg_count` is the
    /// matching-WME counter for not-nodes (0 for positive joins).
    fn insert_left(&mut self, j: &JoinNode, key: u64, token: Token, neg_count: u32);

    /// Remove a token (by WME identity) from the left memory, returning its
    /// stored `neg_count`.
    fn remove_left(&mut self, j: &JoinNode, key: u64, token: &Token) -> Removed<u32>;

    fn insert_right(&mut self, j: &JoinNode, key: u64, wme: WmeRef);

    fn remove_right(&mut self, j: &JoinNode, key: u64, wme: &Wme) -> Removed<()>;

    /// Right-memory WMEs pairing with `token` under the join tests,
    /// appended to `out` (cleared first).
    fn scan_right(&self, j: &JoinNode, key: u64, token: &Token, out: &mut Vec<WmeRef>)
        -> ScanStats;

    /// Left-memory tokens pairing with `wme` under the join tests
    /// (positive joins), appended to `out` (cleared first).
    fn scan_left(&self, j: &JoinNode, key: u64, wme: &Wme, out: &mut Vec<Token>) -> ScanStats;

    /// Not-node right activation: bump every matching left entry's counter
    /// by `delta` (+1/-1) and append the tokens whose counter crossed the
    /// 0 boundary (0→1 on insert, 1→0 on delete) to `out` (cleared first).
    fn adjust_left_counts(
        &mut self,
        j: &JoinNode,
        key: u64,
        wme: &Wme,
        delta: i32,
        out: &mut Vec<Token>,
    ) -> ScanStats;

    /// Not-node left activation: count matching right WMEs.
    fn count_right(&self, j: &JoinNode, key: u64, token: &Token) -> (u32, u64, bool);

    /// Entries stored network-wide in the join's left memory — the
    /// emptiness gate for right-activation unlinking. 0 means any left
    /// scan of this join is a null activation.
    fn left_count(&self, j: &JoinNode) -> u32;

    /// Entries stored network-wide in the join's right memory — the
    /// emptiness gate for left-activation unlinking.
    fn right_count(&self, j: &JoinNode) -> u32;

    /// Total stored entries (diagnostics / invariant checks).
    fn total_entries(&self) -> usize;
}

// ---------------------------------------------------------------- vs1: lists

struct ListLeftEntry {
    token: Token,
    neg_count: u32,
}

/// vs1 memories: one vector pair per join.
pub struct ListMem {
    left: Vec<Vec<ListLeftEntry>>,
    right: Vec<Vec<WmeRef>>,
}

impl ListMem {
    pub fn new(n_joins: usize) -> ListMem {
        ListMem {
            left: (0..n_joins).map(|_| Vec::new()).collect(),
            right: (0..n_joins).map(|_| Vec::new()).collect(),
        }
    }
}

impl TokenMem for ListMem {
    fn kind_name(&self) -> &'static str {
        "vs1"
    }

    fn left_key(&self, _j: &JoinNode, _token: &Token) -> u64 {
        0
    }

    fn right_key(&self, _j: &JoinNode, _wme: &Wme) -> u64 {
        0
    }

    fn insert_left(&mut self, j: &JoinNode, _key: u64, token: Token, neg_count: u32) {
        self.left[j.id as usize].push(ListLeftEntry { token, neg_count });
    }

    fn remove_left(&mut self, j: &JoinNode, _key: u64, token: &Token) -> Removed<u32> {
        let mem = &mut self.left[j.id as usize];
        for (i, e) in mem.iter().enumerate() {
            if e.token.same_wmes(token) {
                let e = mem.swap_remove(i);
                return Removed {
                    entry: Some(e.neg_count),
                    examined: (i + 1) as u64,
                };
            }
        }
        Removed {
            entry: None,
            examined: mem.len() as u64,
        }
    }

    fn insert_right(&mut self, j: &JoinNode, _key: u64, wme: WmeRef) {
        self.right[j.id as usize].push(wme);
    }

    fn remove_right(&mut self, j: &JoinNode, _key: u64, wme: &Wme) -> Removed<()> {
        let mem = &mut self.right[j.id as usize];
        for (i, w) in mem.iter().enumerate() {
            if w.timetag == wme.timetag {
                mem.swap_remove(i);
                return Removed {
                    entry: Some(()),
                    examined: (i + 1) as u64,
                };
            }
        }
        Removed {
            entry: None,
            examined: mem.len() as u64,
        }
    }

    fn scan_right(
        &self,
        j: &JoinNode,
        _key: u64,
        token: &Token,
        out: &mut Vec<WmeRef>,
    ) -> ScanStats {
        out.clear();
        let mem = &self.right[j.id as usize];
        let ops = j.resolve_left(token);
        for w in mem {
            if j.passes_resolved(&ops, token, w) {
                out.push(w.clone());
            }
        }
        ScanStats {
            examined: mem.len() as u64,
            nonempty: !mem.is_empty(),
        }
    }

    fn scan_left(&self, j: &JoinNode, _key: u64, wme: &Wme, out: &mut Vec<Token>) -> ScanStats {
        out.clear();
        let mem = &self.left[j.id as usize];
        for e in mem {
            if j.passes(&e.token, wme) {
                out.push(e.token.clone());
            }
        }
        ScanStats {
            examined: mem.len() as u64,
            nonempty: !mem.is_empty(),
        }
    }

    fn adjust_left_counts(
        &mut self,
        j: &JoinNode,
        _key: u64,
        wme: &Wme,
        delta: i32,
        out: &mut Vec<Token>,
    ) -> ScanStats {
        out.clear();
        let mem = &mut self.left[j.id as usize];
        for e in mem.iter_mut() {
            if j.passes(&e.token, wme) {
                if delta > 0 {
                    e.neg_count += 1;
                    if e.neg_count == 1 {
                        out.push(e.token.clone());
                    }
                } else {
                    debug_assert!(e.neg_count > 0, "not-node counter underflow");
                    e.neg_count -= 1;
                    if e.neg_count == 0 {
                        out.push(e.token.clone());
                    }
                }
            }
        }
        ScanStats {
            examined: mem.len() as u64,
            nonempty: !mem.is_empty(),
        }
    }

    fn count_right(&self, j: &JoinNode, _key: u64, token: &Token) -> (u32, u64, bool) {
        let mem = &self.right[j.id as usize];
        let ops = j.resolve_left(token);
        let n = mem
            .iter()
            .filter(|w| j.passes_resolved(&ops, token, w))
            .count() as u32;
        (n, mem.len() as u64, !mem.is_empty())
    }

    fn left_count(&self, j: &JoinNode) -> u32 {
        self.left[j.id as usize].len() as u32
    }

    fn right_count(&self, j: &JoinNode) -> u32 {
        self.right[j.id as usize].len() as u32
    }

    fn total_entries(&self) -> usize {
        self.left.iter().map(Vec::len).sum::<usize>()
            + self.right.iter().map(Vec::len).sum::<usize>()
    }
}

// ----------------------------------------------------------- vs2: hash lines

struct HashLeftEntry {
    join: u32,
    key: u64,
    token: Token,
    neg_count: u32,
}

struct HashRightEntry {
    join: u32,
    key: u64,
    wme: WmeRef,
}

/// vs2 memories: the two global hash tables of §3.2.
///
/// A "line" is the pair of same-index buckets of the left and right tables;
/// any single node activation touches exactly one line. The bucket index of
/// an entry is `key & mask`, where the key hashes the join id and the values
/// covered by the join's equality tests. Each entry stores its key, so
/// probes compare one cached word before touching token identity.
pub struct HashMem {
    left: Vec<Vec<HashLeftEntry>>,
    right: Vec<Vec<HashRightEntry>>,
    mask: u64,
    /// Per-join entry counts (indexed by join id, grown on demand): the
    /// buckets interleave joins, so per-join emptiness must be maintained,
    /// not derived.
    left_counts: Vec<u32>,
    right_counts: Vec<u32>,
}

#[inline]
fn bump(counts: &mut Vec<u32>, join: u32, delta: i32) {
    let idx = join as usize;
    if counts.len() <= idx {
        counts.resize(idx + 1, 0);
    }
    let c = &mut counts[idx];
    if delta > 0 {
        *c += 1;
    } else {
        debug_assert!(*c > 0, "memory count underflow for join {join}");
        *c -= 1;
    }
}

impl HashMem {
    pub fn new(cfg: HashMemConfig) -> HashMem {
        let n = cfg.buckets.next_power_of_two().max(2);
        HashMem {
            left: (0..n).map(|_| Vec::new()).collect(),
            right: (0..n).map(|_| Vec::new()).collect(),
            mask: (n - 1) as u64,
            left_counts: Vec::new(),
            right_counts: Vec::new(),
        }
    }

    /// Line index for a key — exposed so the parallel matcher and the
    /// Multimax simulator use identical line geometry.
    #[inline]
    pub fn line_of(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    pub fn n_lines(&self) -> usize {
        self.left.len()
    }
}

impl TokenMem for HashMem {
    fn kind_name(&self) -> &'static str {
        "vs2"
    }

    fn left_key(&self, j: &JoinNode, token: &Token) -> u64 {
        j.left_key(token)
    }

    fn right_key(&self, j: &JoinNode, wme: &Wme) -> u64 {
        j.right_key(wme)
    }

    fn insert_left(&mut self, j: &JoinNode, key: u64, token: Token, neg_count: u32) {
        let b = self.line_of(key);
        self.left[b].push(HashLeftEntry {
            join: j.id,
            key,
            token,
            neg_count,
        });
        bump(&mut self.left_counts, j.id, 1);
    }

    fn remove_left(&mut self, j: &JoinNode, key: u64, token: &Token) -> Removed<u32> {
        let b = self.line_of(key);
        let mem = &mut self.left[b];
        let mut examined = 0u64;
        for i in 0..mem.len() {
            let e = &mem[i];
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && e.token.same_wmes(token) {
                let e = mem.swap_remove(i);
                bump(&mut self.left_counts, j.id, -1);
                return Removed {
                    entry: Some(e.neg_count),
                    examined,
                };
            }
        }
        Removed {
            entry: None,
            examined,
        }
    }

    fn insert_right(&mut self, j: &JoinNode, key: u64, wme: WmeRef) {
        let b = self.line_of(key);
        self.right[b].push(HashRightEntry {
            join: j.id,
            key,
            wme,
        });
        bump(&mut self.right_counts, j.id, 1);
    }

    fn remove_right(&mut self, j: &JoinNode, key: u64, wme: &Wme) -> Removed<()> {
        let b = self.line_of(key);
        let mem = &mut self.right[b];
        let mut examined = 0u64;
        for i in 0..mem.len() {
            let e = &mem[i];
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && e.wme.timetag == wme.timetag {
                mem.swap_remove(i);
                bump(&mut self.right_counts, j.id, -1);
                return Removed {
                    entry: Some(()),
                    examined,
                };
            }
        }
        Removed {
            entry: None,
            examined,
        }
    }

    fn scan_right(
        &self,
        j: &JoinNode,
        key: u64,
        token: &Token,
        out: &mut Vec<WmeRef>,
    ) -> ScanStats {
        out.clear();
        let mem = &self.right[self.line_of(key)];
        let ops = j.resolve_left(token);
        let mut examined = 0u64;
        for e in mem {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes_resolved(&ops, token, &e.wme) {
                out.push(e.wme.clone());
            }
        }
        ScanStats {
            examined,
            nonempty: examined > 0,
        }
    }

    fn scan_left(&self, j: &JoinNode, key: u64, wme: &Wme, out: &mut Vec<Token>) -> ScanStats {
        out.clear();
        let mem = &self.left[self.line_of(key)];
        let mut examined = 0u64;
        for e in mem {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes(&e.token, wme) {
                out.push(e.token.clone());
            }
        }
        ScanStats {
            examined,
            nonempty: examined > 0,
        }
    }

    fn adjust_left_counts(
        &mut self,
        j: &JoinNode,
        key: u64,
        wme: &Wme,
        delta: i32,
        out: &mut Vec<Token>,
    ) -> ScanStats {
        out.clear();
        let b = self.line_of(key);
        let mem = &mut self.left[b];
        let mut examined = 0u64;
        for e in mem.iter_mut() {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes(&e.token, wme) {
                if delta > 0 {
                    e.neg_count += 1;
                    if e.neg_count == 1 {
                        out.push(e.token.clone());
                    }
                } else {
                    debug_assert!(e.neg_count > 0, "not-node counter underflow");
                    e.neg_count -= 1;
                    if e.neg_count == 0 {
                        out.push(e.token.clone());
                    }
                }
            }
        }
        ScanStats {
            examined,
            nonempty: examined > 0,
        }
    }

    fn count_right(&self, j: &JoinNode, key: u64, token: &Token) -> (u32, u64, bool) {
        let mem = &self.right[self.line_of(key)];
        let ops = j.resolve_left(token);
        let mut n = 0u32;
        let mut examined = 0u64;
        for e in mem {
            if e.join != j.id {
                continue;
            }
            examined += 1;
            if e.key == key && j.passes_resolved(&ops, token, &e.wme) {
                n += 1;
            }
        }
        (n, examined, examined > 0)
    }

    fn left_count(&self, j: &JoinNode) -> u32 {
        self.left_counts.get(j.id as usize).copied().unwrap_or(0)
    }

    fn right_count(&self, j: &JoinNode) -> u32 {
        self.right_counts.get(j.id as usize).copied().unwrap_or(0)
    }

    fn total_entries(&self) -> usize {
        self.left.iter().map(Vec::len).sum::<usize>()
            + self.right.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use ops5::{Program, Value, Wme};

    fn setup() -> (Program, Network) {
        let prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        (prog, net)
    }

    fn run_common(mem: &mut dyn TokenMem) {
        let (mut prog, net) = setup();
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let j = net.join(0).clone();

        let wa = Wme::new(ca, vec![Value::Int(1)], 1);
        let wb1 = Wme::new(cb, vec![Value::Int(1)], 2);
        let wb2 = Wme::new(cb, vec![Value::Int(2)], 3);
        let tok = Token::single(wa);

        let lk = mem.left_key(&j, &tok);
        mem.insert_left(&j, lk, tok.clone(), 0);
        mem.insert_right(&j, mem.right_key(&j, &wb1), wb1.clone());
        mem.insert_right(&j, mem.right_key(&j, &wb2), wb2.clone());

        // Left scan finds only the matching wme.
        let mut wmes = Vec::new();
        let s = mem.scan_right(&j, lk, &tok, &mut wmes);
        assert_eq!(wmes.len(), 1);
        assert_eq!(wmes[0].timetag, 2);
        assert!(s.nonempty);

        // Right scan from the matching wme finds the token.
        let mut toks = Vec::new();
        mem.scan_left(&j, mem.right_key(&j, &wb1), &wb1, &mut toks);
        assert_eq!(toks.len(), 1);
        // Right scan from the non-matching wme finds nothing.
        mem.scan_left(&j, mem.right_key(&j, &wb2), &wb2, &mut toks);
        assert_eq!(toks.len(), 0);

        // Delete the token; second delete fails.
        let r = mem.remove_left(&j, lk, &tok);
        assert_eq!(r.entry, Some(0));
        let r = mem.remove_left(&j, lk, &tok);
        assert!(r.entry.is_none());

        // Delete a right wme.
        let r = mem.remove_right(&j, mem.right_key(&j, &wb2), &wb2);
        assert!(r.entry.is_some());
        assert_eq!(mem.total_entries(), 1);
    }

    #[test]
    fn list_mem_basics() {
        let (_, net) = setup();
        let mut mem = ListMem::new(net.n_joins());
        run_common(&mut mem);
    }

    #[test]
    fn hash_mem_basics() {
        let mut mem = HashMem::new(HashMemConfig { buckets: 8 });
        run_common(&mut mem);
    }

    #[test]
    fn hash_mem_examines_fewer_tokens() {
        let (mut prog, net) = setup();
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let j = net.join(0).clone();

        let mut list = ListMem::new(net.n_joins());
        let mut hash = HashMem::new(HashMemConfig { buckets: 256 });

        // 100 right wmes with distinct join values.
        for i in 0..100 {
            let w = Wme::new(cb, vec![Value::Int(i)], 10 + i as u64);
            list.insert_right(&j, list.right_key(&j, &w), w.clone());
            hash.insert_right(&j, hash.right_key(&j, &w), w);
        }
        let tok = Token::single(Wme::new(ca, vec![Value::Int(5)], 1));
        let mut out = Vec::new();
        let sl = list.scan_right(&j, list.left_key(&j, &tok), &tok, &mut out);
        assert_eq!(out.len(), 1);
        let sh = hash.scan_right(&j, hash.left_key(&j, &tok), &tok, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(sl.examined, 100, "vs1 examines the whole opposite memory");
        assert!(
            sh.examined < 10,
            "vs2 examines only one line (got {})",
            sh.examined
        );
    }

    #[test]
    fn neg_count_transitions() {
        // Not-node counters: insert two matching right wmes, remove them.
        let (mut prog, _) = setup();
        // Build a negated join by hand: reuse join 0's tests but negated.
        let prog2 = Program::from_source("(p q (a ^x <v>) - (b ^y <v>) --> (halt))").unwrap();
        let net2 = Network::compile(&prog2).unwrap();
        let j = net2.join(0).clone();
        assert!(j.negated);

        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let mut mem = HashMem::new(HashMemConfig { buckets: 8 });
        let tok = Token::single(Wme::new(ca, vec![Value::Int(1)], 1));
        mem.insert_left(&j, mem.left_key(&j, &tok), tok.clone(), 0);

        let wb = Wme::new(cb, vec![Value::Int(1)], 2);
        let wb2 = Wme::new(cb, vec![Value::Int(1)], 3);
        let kb = mem.right_key(&j, &wb);
        let kb2 = mem.right_key(&j, &wb2);

        let mut crossed = Vec::new();
        // 0 -> 1 crossing reported once.
        mem.adjust_left_counts(&j, kb, &wb, 1, &mut crossed);
        assert_eq!(crossed.len(), 1);
        // 1 -> 2: no crossing.
        mem.adjust_left_counts(&j, kb2, &wb2, 1, &mut crossed);
        assert_eq!(crossed.len(), 0);
        // 2 -> 1: no crossing.
        mem.adjust_left_counts(&j, kb2, &wb2, -1, &mut crossed);
        assert_eq!(crossed.len(), 0);
        // 1 -> 0: crossing.
        mem.adjust_left_counts(&j, kb, &wb, -1, &mut crossed);
        assert_eq!(crossed.len(), 1);
    }

    #[test]
    fn per_join_counts_track_inserts_and_removes() {
        let (mut prog, net) = setup();
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let j = net.join(0).clone();
        for mem in [
            Box::new(ListMem::new(net.n_joins())) as Box<dyn TokenMem>,
            Box::new(HashMem::new(HashMemConfig { buckets: 8 })),
        ]
        .iter_mut()
        {
            assert_eq!(mem.left_count(&j), 0);
            assert_eq!(mem.right_count(&j), 0);
            let tok = Token::single(Wme::new(ca, vec![Value::Int(1)], 1));
            let lk = mem.left_key(&j, &tok);
            mem.insert_left(&j, lk, tok.clone(), 0);
            assert_eq!(mem.left_count(&j), 1);
            let wb = Wme::new(cb, vec![Value::Int(1)], 2);
            let rk = mem.right_key(&j, &wb);
            mem.insert_right(&j, rk, wb.clone());
            mem.insert_right(&j, rk, wb.clone());
            assert_eq!(mem.right_count(&j), 2);
            mem.remove_right(&j, rk, &wb);
            assert_eq!(mem.right_count(&j), 1);
            mem.remove_left(&j, lk, &tok);
            assert_eq!(mem.left_count(&j), 0);
            // A failed remove must not disturb the count.
            mem.remove_left(&j, lk, &tok);
            assert_eq!(mem.left_count(&j), 0);
        }
    }

    #[test]
    fn cross_product_join_shares_one_line() {
        // No eq tests: every token of the join lands in the same line.
        let prog = Program::from_source("(p q (a ^x <v>) (b ^y <w>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let j = net.join(0).clone();
        let mut prog = prog;
        let cb = prog.symbols.intern("b");
        let mut mem = HashMem::new(HashMemConfig { buckets: 256 });
        for i in 0..50 {
            let w = Wme::new(cb, vec![Value::Int(i)], i as u64 + 1);
            mem.insert_right(&j, mem.right_key(&j, &w), w);
        }
        let ca = prog.symbols.intern("a");
        let tok = Token::single(Wme::new(ca, vec![Value::Int(0)], 100));
        let mut out = Vec::new();
        let s = mem.scan_right(&j, mem.left_key(&j, &tok), &tok, &mut out);
        assert_eq!(out.len(), 50, "cross-product matches everything");
        assert_eq!(
            s.examined, 50,
            "and examines everything — the Tourney pathology"
        );
    }
}
