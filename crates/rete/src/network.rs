//! Network types and the LHS → network compiler.
//!
//! The compiled network has two layers, matching §2.2:
//!
//! * the **alpha network**: per-class lists of *alpha patterns*, each a flat
//!   array of constant/intra-element tests with pre-resolved field indices.
//!   Identical patterns are shared across condition elements and productions
//!   (the constant-test-node sharing visible in Figure 2-2);
//! * the **beta network**: one chain of coalesced memory/two-input
//!   [`JoinNode`]s per production (memory nodes are folded into the join
//!   below them, §3.1, and are not shared across productions — paper
//!   footnote 6). Negated condition elements compile to not-nodes, which are
//!   join nodes with a per-left-token match counter.
//!
//! With [`NetworkOptions::sharing`] enabled (off by default — the paper's
//! configuration keeps the chains linear), identical join-chain *prefixes*
//! are deduped across productions exactly like alpha patterns, turning the
//! beta layer into a DAG of multi-successor joins;
//! [`NetworkOptions::unlinking`] additionally lets the matchers skip null
//! activations (two-input activations whose opposite memory is empty).
//!
//! All variable occurrences are resolved at compile time into either
//! intra-element field comparisons (alpha) or inter-element [`JoinTest`]s
//! (beta); the equality subset of the join tests is extracted into
//! [`EqSpec`]s that drive the token hash tables of §3.2.

use crate::fxhash::{self, FxHashMap};
use crate::token::Token;
use ops5::ast::{AttrTest, TestAtom};
use ops5::{Ops5Error, Pred, ProdId, Program, SymbolId, Value, Wme};

pub type JoinId = u32;
pub type AlphaPatternId = u32;

/// One constant-test-node test, pre-compiled to a field index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AlphaTest {
    pub field: u16,
    pub kind: AlphaTestKind,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AlphaTestKind {
    /// `field PRED constant`
    Pred(Pred, Value),
    /// `field ∈ { v1, v2, ... }` (OPS5 `<< ... >>`)
    Disj(Box<[Value]>),
    /// Intra-element variable consistency: `field PRED field2` on the same
    /// WME (e.g. `(c ^a <x> ^b <x>)`).
    FieldCmp(Pred, u16),
}

impl AlphaTest {
    #[inline]
    pub fn passes(&self, wme: &Wme) -> bool {
        let v = wme.field(self.field);
        match &self.kind {
            AlphaTestKind::Pred(p, r) => p.eval(v, *r),
            AlphaTestKind::Disj(vs) => vs.contains(&v),
            AlphaTestKind::FieldCmp(p, f2) => p.eval(v, wme.field(*f2)),
        }
    }
}

/// Where a passing WME goes from an alpha pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaSucc {
    /// Becomes a 1-WME token entering the left memory of this join (the
    /// production's first condition element).
    JoinLeft(JoinId),
    /// Enters the right memory of this join (condition elements 2..n).
    JoinRight(JoinId),
    /// Single-CE production: straight to the conflict set.
    Terminal(ProdId),
}

/// A shared constant-test chain endpoint.
#[derive(Debug, Clone)]
pub struct AlphaPattern {
    pub id: AlphaPatternId,
    pub class: SymbolId,
    pub tests: Box<[AlphaTest]>,
    pub succs: Vec<AlphaSucc>,
}

/// An inter-element test: `wme.field(right_field) PRED token[left_ce].field(left_field)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinTest {
    pub pred: Pred,
    /// Index into the left token's WME list (positive CEs only).
    pub left_ce: u16,
    pub left_field: u16,
    pub right_field: u16,
}

/// The equality subset of a join's tests, used to compute hash-table keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqSpec {
    pub left_ce: u16,
    pub left_field: u16,
    pub right_field: u16,
}

/// Successor of a join node. In the paper-faithful configuration every join
/// has exactly one successor (chains are linear — no beta sharing); with
/// [`NetworkOptions::sharing`] a join may feed several downstream joins
/// and/or terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Succ {
    Join(JoinId),
    Terminal(ProdId),
}

/// A coalesced memory/two-input node (or not-node when `negated`).
#[derive(Debug, Clone)]
pub struct JoinNode {
    pub id: JoinId,
    /// The production that first created this join. With sharing enabled a
    /// join can serve several productions — diagnostics only.
    pub prod: ProdId,
    /// Source CE index (0-based over all CEs) — diagnostics only.
    pub ce_index: u16,
    pub negated: bool,
    /// Length of tokens arriving on the left input.
    pub left_len: u16,
    pub tests: Box<[JoinTest]>,
    pub eq_specs: Box<[EqSpec]>,
    pub succs: Vec<Succ>,
}

#[inline]
fn hash_value(seed: u64, v: Value) -> u64 {
    match v {
        Value::Sym(s) => fxhash::mix(fxhash::mix(seed, 0), s.0 as u64),
        Value::Int(i) => fxhash::mix(fxhash::mix(seed, 1), i as u64),
        Value::Float(f) => fxhash::mix(fxhash::mix(seed, 2), f.to_bits()),
    }
}

/// Join-test left operands capacity for the stack-resolved fast path.
pub const MAX_RESOLVED_TESTS: usize = 8;

/// The left token's join-test operands, resolved once per left activation.
///
/// A left activation compares one token against every candidate WME in the
/// opposite line; resolving `token[left_ce].field(left_field)` once turns
/// the per-candidate work into flat field-vs-value compares instead of
/// repeated token-chain walks. Held entirely on the stack.
pub enum LeftOperands {
    Inline {
        vals: [Value; MAX_RESOLVED_TESTS],
        len: u8,
    },
    /// More tests than the inline capacity (vanishingly rare): fall back to
    /// per-candidate [`JoinNode::passes`].
    Overflow,
}

impl JoinNode {
    /// Do all inter-element tests pass for this (token, wme) pair?
    #[inline]
    pub fn passes(&self, token: &Token, wme: &Wme) -> bool {
        self.tests.iter().all(|t| {
            t.pred.eval(
                wme.field(t.right_field),
                token.value(t.left_ce, t.left_field),
            )
        })
    }

    /// Resolve the left operands of all join tests against `token`.
    #[inline]
    pub fn resolve_left(&self, token: &Token) -> LeftOperands {
        if self.tests.len() > MAX_RESOLVED_TESTS {
            return LeftOperands::Overflow;
        }
        let mut vals = [Value::Int(0); MAX_RESOLVED_TESTS];
        for (v, t) in vals.iter_mut().zip(self.tests.iter()) {
            *v = token.value(t.left_ce, t.left_field);
        }
        LeftOperands::Inline {
            vals,
            len: self.tests.len() as u8,
        }
    }

    /// [`JoinNode::passes`] against pre-resolved left operands.
    #[inline]
    pub fn passes_resolved(&self, ops: &LeftOperands, token: &Token, wme: &Wme) -> bool {
        match ops {
            LeftOperands::Inline { vals, .. } => self
                .tests
                .iter()
                .zip(vals.iter())
                .all(|(t, lv)| t.pred.eval(wme.field(t.right_field), *lv)),
            LeftOperands::Overflow => self.passes(token, wme),
        }
    }

    /// Hash key for a token entering this join's **left** memory.
    ///
    /// Covers the join id and the left-side values of every equality test,
    /// so that candidate (token, wme) pairs land in the same hash line —
    /// §3.2: the hash function takes into account "the values in the token
    /// which will have equality tests applied at the two-input node" and
    /// "the unique identifier of the two-input node".
    #[inline]
    pub fn left_key(&self, token: &Token) -> u64 {
        let mut h = fxhash::mix(0, self.id as u64);
        for s in self.eq_specs.iter() {
            h = hash_value(h, token.value(s.left_ce, s.left_field));
        }
        h
    }

    /// Hash key for a WME entering this join's **right** memory. Equal to
    /// `left_key` of any token it can pair with.
    #[inline]
    pub fn right_key(&self, wme: &Wme) -> u64 {
        let mut h = fxhash::mix(0, self.id as u64);
        for s in self.eq_specs.iter() {
            h = hash_value(h, wme.field(s.right_field));
        }
        h
    }

    /// Length of tokens this join emits.
    #[inline]
    pub fn out_len(&self) -> u16 {
        self.left_len + if self.negated { 0 } else { 1 }
    }
}

/// Compile/runtime options for the match network.
///
/// Both default to **off**: the paper keeps one linear, unshared join chain
/// per production (§3.1, footnote 6) and performs every activation, so the
/// table-reproduction paths must run with this configuration. The
/// extensions are opt-in:
///
/// * `sharing` — dedup identical join-chain *prefixes* across productions
///   (same left input, same right alpha pattern, same tests, same sign),
///   the way alpha patterns are already deduped. Joins become
///   multi-successor nodes and the beta layer turns into a DAG.
/// * `unlinking` — matchers skip the opposite-memory scan of a two-input
///   activation when that memory is globally empty (a *null activation*),
///   the effect of Doorenbos-style left/right unlinking expressed as an
///   emptiness gate rather than physical successor-list surgery (which the
///   parallel matcher could not do safely under per-line locks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkOptions {
    pub sharing: bool,
    pub unlinking: bool,
}

/// Node and sharing counts for a compiled network (CLI `summary` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkSummary {
    pub classes: usize,
    pub alpha_patterns: usize,
    pub joins: usize,
    /// Join constructions that reused an existing join (0 with sharing off).
    pub shared_prefixes: usize,
    /// Coalesced token memories: one left + one right memory per join.
    pub memory_nodes: usize,
    pub terminals: usize,
}

impl std::fmt::Display for NetworkSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network: {} classes, {} alpha patterns, {} joins ({} shared prefixes), {} memory nodes, {} terminals",
            self.classes,
            self.alpha_patterns,
            self.joins,
            self.shared_prefixes,
            self.memory_nodes,
            self.terminals
        )
    }
}

/// The compiled match network.
#[derive(Debug, Clone)]
pub struct Network {
    pub patterns: Vec<AlphaPattern>,
    by_class: FxHashMap<SymbolId, Vec<AlphaPatternId>>,
    pub joins: Vec<JoinNode>,
    /// Positive-CE count per production (instantiation length).
    pub prod_sizes: Vec<u16>,
    /// Production names (for traces and dot output).
    pub prod_names: Vec<String>,
    /// The options this network was compiled with; matchers read the
    /// `unlinking` toggle from here at run time.
    pub options: NetworkOptions,
    /// How many join constructions were satisfied by an existing join.
    pub shared_prefixes: usize,
}

impl Network {
    /// Alpha patterns whose class matches the WME's class.
    #[inline]
    pub fn patterns_for_class(&self, class: SymbolId) -> &[AlphaPatternId] {
        self.by_class.get(&class).map_or(&[], |v| v.as_slice())
    }

    #[inline]
    pub fn pattern(&self, id: AlphaPatternId) -> &AlphaPattern {
        &self.patterns[id as usize]
    }

    #[inline]
    pub fn join(&self, id: JoinId) -> &JoinNode {
        &self.joins[id as usize]
    }

    pub fn n_joins(&self) -> usize {
        self.joins.len()
    }

    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Node counts for diagnostics and the CLI's load-path report.
    pub fn summary(&self) -> NetworkSummary {
        NetworkSummary {
            classes: self.by_class.len(),
            alpha_patterns: self.patterns.len(),
            joins: self.joins.len(),
            shared_prefixes: self.shared_prefixes,
            memory_nodes: 2 * self.joins.len(),
            terminals: self.prod_sizes.len(),
        }
    }

    /// Checks the network's structural invariants, returning a description
    /// of every violation (empty = valid). Used by debug assertions in
    /// `compile` and by tests over the workload generators.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let mut terminal_seen = vec![0u32; self.prod_sizes.len()];
        for pat in &self.patterns {
            for succ in &pat.succs {
                match *succ {
                    AlphaSucc::JoinLeft(j) => match self.joins.get(j as usize) {
                        None => errs.push(format!("alpha {} -> missing join {j}", pat.id)),
                        Some(join) if join.left_len != 1 => errs.push(format!(
                            "alpha {} feeds left of join {j} with left_len {}",
                            pat.id, join.left_len
                        )),
                        _ => {}
                    },
                    AlphaSucc::JoinRight(j) => {
                        if self.joins.get(j as usize).is_none() {
                            errs.push(format!("alpha {} -> missing join {j}", pat.id));
                        }
                    }
                    AlphaSucc::Terminal(p) => match self.prod_sizes.get(p.index()) {
                        None => errs.push(format!("alpha {} -> missing prod {p:?}", pat.id)),
                        Some(&sz) => {
                            terminal_seen[p.index()] += 1;
                            if sz != 1 {
                                errs.push(format!(
                                    "alpha-terminal prod {p:?} should have 1 positive CE, has {sz}"
                                ));
                            }
                        }
                    },
                }
            }
        }
        for j in &self.joins {
            for t in j.tests.iter() {
                if t.left_ce >= j.left_len {
                    errs.push(format!(
                        "join {}: test references token position {} but left_len is {}",
                        j.id, t.left_ce, j.left_len
                    ));
                }
            }
            if j.succs.is_empty() {
                errs.push(format!("join {} has no successors", j.id));
            }
            if !self.options.sharing && j.succs.len() > 1 {
                errs.push(format!(
                    "join {} has {} successors but sharing is off",
                    j.id,
                    j.succs.len()
                ));
            }
            for succ in &j.succs {
                match *succ {
                    Succ::Join(n) => match self.joins.get(n as usize) {
                        None => errs.push(format!("join {} -> missing join {n}", j.id)),
                        Some(next) => {
                            if n <= j.id {
                                errs.push(format!("join {} -> non-forward successor {n}", j.id));
                            }
                            if next.left_len != j.out_len() {
                                errs.push(format!(
                                    "join {} emits len {} but join {n} expects left_len {}",
                                    j.id,
                                    j.out_len(),
                                    next.left_len
                                ));
                            }
                            if !self.options.sharing && next.prod != j.prod {
                                errs.push(format!(
                                    "join {} (prod {:?}) chains into join {n} (prod {:?})",
                                    j.id, j.prod, next.prod
                                ));
                            }
                        }
                    },
                    Succ::Terminal(p) => {
                        if !self.options.sharing && p != j.prod {
                            errs.push(format!("join {} terminates foreign prod {p:?}", j.id));
                        }
                        match self.prod_sizes.get(p.index()) {
                            None => errs.push(format!("join {} -> missing prod {p:?}", j.id)),
                            Some(&sz) => {
                                terminal_seen[p.index()] += 1;
                                if sz != j.out_len() {
                                    errs.push(format!(
                                        "prod {p:?} instantiation length {} but terminal join {} emits {}",
                                        sz,
                                        j.id,
                                        j.out_len()
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        for (i, &n) in terminal_seen.iter().enumerate() {
            if n != 1 {
                errs.push(format!("prod {i} has {n} terminal feeds (expected 1)"));
            }
        }
        errs
    }

    /// Compiles a program's productions into a network with the
    /// paper-faithful default options (no sharing, no unlinking).
    pub fn compile(prog: &Program) -> Result<Network, Ops5Error> {
        Network::compile_with(prog, NetworkOptions::default())
    }

    /// Compiles a program's productions into a network.
    pub fn compile_with(prog: &Program, options: NetworkOptions) -> Result<Network, Ops5Error> {
        let mut net = Network {
            patterns: Vec::new(),
            by_class: FxHashMap::default(),
            joins: Vec::new(),
            prod_sizes: Vec::with_capacity(prog.productions.len()),
            prod_names: Vec::with_capacity(prog.productions.len()),
            options,
            shared_prefixes: 0,
        };
        // Dedup map for alpha patterns: (class, tests) → id.
        let mut alpha_dedup: FxHashMap<(SymbolId, Vec<AlphaTest>), AlphaPatternId> =
            FxHashMap::default();
        // Dedup map for join-chain prefixes (only consulted with sharing on).
        let mut join_dedup: FxHashMap<JoinKey, JoinId> = FxHashMap::default();

        for (pidx, prod) in prog.productions.iter().enumerate() {
            let prod_id = ProdId(pidx as u32);
            net.prod_names
                .push(prog.symbols.name(prod.name).to_string());
            net.prod_sizes.push(prod.positive_ces() as u16);
            net.compile_production(prog, prod_id, &mut alpha_dedup, &mut join_dedup)?;
        }
        debug_assert!(
            net.validate().is_empty(),
            "invalid network: {:?}",
            net.validate()
        );
        Ok(net)
    }

    fn intern_pattern(
        &mut self,
        dedup: &mut FxHashMap<(SymbolId, Vec<AlphaTest>), AlphaPatternId>,
        class: SymbolId,
        tests: Vec<AlphaTest>,
    ) -> AlphaPatternId {
        if let Some(&id) = dedup.get(&(class, tests.clone())) {
            return id;
        }
        let id = self.patterns.len() as AlphaPatternId;
        self.patterns.push(AlphaPattern {
            id,
            class,
            tests: tests.clone().into_boxed_slice(),
            succs: Vec::new(),
        });
        self.by_class.entry(class).or_default().push(id);
        dedup.insert((class, tests), id);
        id
    }

    fn compile_production(
        &mut self,
        prog: &Program,
        prod_id: ProdId,
        alpha_dedup: &mut FxHashMap<(SymbolId, Vec<AlphaTest>), AlphaPatternId>,
        join_dedup: &mut FxHashMap<JoinKey, JoinId>,
    ) -> Result<(), Ops5Error> {
        let prod = prog.production(prod_id);
        // Global variable bindings: var → (positive CE position, field).
        let mut global: FxHashMap<SymbolId, (u16, u16)> = FxHashMap::default();
        let mut pos_count: u16 = 0;

        // The pending link from the previous element to the next node.
        enum Prev {
            /// First CE's alpha pattern — its successor not yet decided.
            Alpha(AlphaPatternId),
            Join(JoinId),
        }
        let mut prev: Option<Prev> = None;

        for (ce_idx, ce) in prod.lhs.iter().enumerate() {
            let mut alpha_tests: Vec<AlphaTest> = Vec::new();
            let mut join_tests: Vec<JoinTest> = Vec::new();

            // Pass 1: local Eq first-occurrences (var → field).
            let mut local: FxHashMap<SymbolId, u16> = FxHashMap::default();
            for (field, test) in &ce.tests {
                if let AttrTest::Conj(ts) = test {
                    for vt in ts {
                        if let TestAtom::Var(v) = vt.atom {
                            if vt.pred.is_eq() {
                                local.entry(v).or_insert(*field);
                            }
                        }
                    }
                }
            }

            // Pass 2: emit tests.
            for (field, test) in &ce.tests {
                match test {
                    AttrTest::Disj(vs) => alpha_tests.push(AlphaTest {
                        field: *field,
                        kind: AlphaTestKind::Disj(vs.clone().into_boxed_slice()),
                    }),
                    AttrTest::Conj(ts) => {
                        for vt in ts {
                            match vt.atom {
                                TestAtom::Const(val) => alpha_tests.push(AlphaTest {
                                    field: *field,
                                    kind: AlphaTestKind::Pred(vt.pred, val),
                                }),
                                TestAtom::Var(v) => {
                                    if vt.pred.is_eq() {
                                        let first = local[&v];
                                        if *field != first {
                                            // Later occurrence in the same CE.
                                            alpha_tests.push(AlphaTest {
                                                field: *field,
                                                kind: AlphaTestKind::FieldCmp(Pred::Eq, first),
                                            });
                                        } else if let Some(&(pce, pf)) = global.get(&v) {
                                            // Bound in an earlier CE: join.
                                            join_tests.push(JoinTest {
                                                pred: Pred::Eq,
                                                left_ce: pce,
                                                left_field: pf,
                                                right_field: *field,
                                            });
                                        } else if !ce.negated {
                                            global.insert(v, (pos_count, *field));
                                        }
                                        // First occurrence in a negated CE
                                        // with no earlier binding: a local
                                        // wildcard — no test at all.
                                    } else {
                                        // Non-Eq predicate against a variable.
                                        let local_first = local.get(&v).copied();
                                        if let Some(first) = local_first {
                                            alpha_tests.push(AlphaTest {
                                                field: *field,
                                                kind: AlphaTestKind::FieldCmp(vt.pred, first),
                                            });
                                        } else if let Some(&(pce, pf)) = global.get(&v) {
                                            join_tests.push(JoinTest {
                                                pred: vt.pred,
                                                left_ce: pce,
                                                left_field: pf,
                                                right_field: *field,
                                            });
                                        } else {
                                            return Err(Ops5Error::Semantic(format!(
                                                "production {}: predicate on unbound variable <{}>",
                                                prog.symbols.name(prod.name),
                                                prog.symbols.name(v)
                                            )));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }

            let pat = self.intern_pattern(alpha_dedup, ce.class, alpha_tests);

            match prev.take() {
                None => {
                    // First CE: its matches become 1-WME tokens. Where they
                    // go is decided when we see the next element (or the end
                    // of the LHS).
                    debug_assert!(!ce.negated, "parser rejects negated first CE");
                    pos_count += 1;
                    prev = Some(Prev::Alpha(pat));
                }
                Some(p) => {
                    let left = match p {
                        Prev::Alpha(a) => LeftSrc::Alpha(a),
                        Prev::Join(j) => LeftSrc::Join(j),
                    };
                    let key = JoinKey {
                        left,
                        right: pat,
                        negated: ce.negated,
                        tests: join_tests.clone(),
                    };
                    let reused = if self.options.sharing {
                        join_dedup.get(&key).copied()
                    } else {
                        None
                    };
                    let join_id = match reused {
                        Some(j) => {
                            // Identical prefix already compiled: the shared
                            // join's left input, right alpha link, tests and
                            // (therefore) left_len all match by key equality.
                            // Nothing to link — just continue the chain here.
                            self.shared_prefixes += 1;
                            j
                        }
                        None => {
                            let join_id = self.joins.len() as JoinId;
                            let eq_specs: Vec<EqSpec> = join_tests
                                .iter()
                                .filter(|t| t.pred.is_eq())
                                .map(|t| EqSpec {
                                    left_ce: t.left_ce,
                                    left_field: t.left_field,
                                    right_field: t.right_field,
                                })
                                .collect();
                            let node = JoinNode {
                                id: join_id,
                                prod: prod_id,
                                ce_index: ce_idx as u16,
                                negated: ce.negated,
                                left_len: pos_count,
                                tests: join_tests.into_boxed_slice(),
                                eq_specs: eq_specs.into_boxed_slice(),
                                // Filled once the next element is seen.
                                succs: Vec::new(),
                            };
                            self.joins.push(node);
                            // Link predecessor's output to this join's left input.
                            match p {
                                Prev::Alpha(a) => self.patterns[a as usize]
                                    .succs
                                    .push(AlphaSucc::JoinLeft(join_id)),
                                Prev::Join(j) => {
                                    self.joins[j as usize].succs.push(Succ::Join(join_id))
                                }
                            }
                            // This CE's alpha feeds the join's right input.
                            self.patterns[pat as usize]
                                .succs
                                .push(AlphaSucc::JoinRight(join_id));
                            if self.options.sharing {
                                join_dedup.insert(key, join_id);
                            }
                            join_id
                        }
                    };
                    if !ce.negated {
                        pos_count += 1;
                    }
                    prev = Some(Prev::Join(join_id));
                }
            }
        }

        match prev {
            Some(Prev::Alpha(a)) => {
                // Single-CE production.
                self.patterns[a as usize]
                    .succs
                    .push(AlphaSucc::Terminal(prod_id));
            }
            Some(Prev::Join(j)) => {
                self.joins[j as usize].succs.push(Succ::Terminal(prod_id));
            }
            None => unreachable!("parser rejects empty LHS"),
        }
        Ok(())
    }
}

/// What feeds a join's left input — the discriminator of the beta-prefix
/// dedup key. Equal sources see byte-identical left token streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LeftSrc {
    Alpha(AlphaPatternId),
    Join(JoinId),
}

/// Beta-prefix dedup key: two join constructions may share one node iff
/// they have the same left input, the same right alpha pattern (alpha ids
/// are already deduped, so id equality is pattern equality), the same sign,
/// and the same test list. `left_len` is implied by `left`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JoinKey {
    left: LeftSrc,
    right: AlphaPatternId,
    negated: bool,
    tests: Vec<JoinTest>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::Program;

    fn fig22() -> (Program, Network) {
        let prog = Program::from_source(
            "(p p1 (C1 ^attr1 <x> ^attr2 12)
                   (C2 ^attr1 15 ^attr2 <x>)
                 - (C3 ^attr1 <x>)
               -->
               (remove 2))
             (p p2 (C2 ^attr1 15 ^attr2 <y>)
                   (C4 ^attr1 <y>)
               -->
               (modify 1 ^attr1 12))",
        )
        .unwrap();
        let net = Network::compile(&prog).unwrap();
        (prog, net)
    }

    #[test]
    fn figure_2_2_shares_constant_tests() {
        let (_prog, net) = fig22();
        // Patterns: C1(attr2=12), C2(attr1=15), C3(no tests), C4(no tests).
        // The C2 pattern is shared between p1 (right input of join 1) and p2
        // (first CE).
        assert_eq!(net.n_patterns(), 4, "C2 pattern must be shared");
        // Joins: p1 has 2 (C2 join + negated C3 join), p2 has 1.
        assert_eq!(net.n_joins(), 3);
    }

    #[test]
    fn figure_2_2_join_structure() {
        let (_prog, net) = fig22();
        let j0 = net.join(0); // p1's C2 join
        assert!(!j0.negated);
        assert_eq!(j0.left_len, 1);
        assert_eq!(j0.tests.len(), 1);
        assert_eq!(j0.eq_specs.len(), 1);
        assert_eq!(j0.succs, vec![Succ::Join(1)]);
        let j1 = net.join(1); // p1's negated C3 node
        assert!(j1.negated);
        assert_eq!(j1.left_len, 2);
        assert_eq!(j1.out_len(), 2);
        assert_eq!(j1.succs, vec![Succ::Terminal(ProdId(0))]);
        let j2 = net.join(2); // p2's C4 join
        assert_eq!(j2.succs, vec![Succ::Terminal(ProdId(1))]);
    }

    #[test]
    fn alpha_tests_compile_constants() {
        let prog = Program::from_source("(p q (a ^x 5 ^y <v> ^z <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let pat = net.pattern(0);
        // One constant test (x=5) and one FieldCmp (z == y-binding field).
        assert_eq!(pat.tests.len(), 2);
        assert!(matches!(
            pat.tests[0].kind,
            AlphaTestKind::Pred(Pred::Eq, Value::Int(5))
        ));
        assert!(matches!(
            pat.tests[1].kind,
            AlphaTestKind::FieldCmp(Pred::Eq, _)
        ));
    }

    #[test]
    fn intra_element_fieldcmp_passes() {
        let mut prog = Program::from_source("(p q (a ^x <v> ^y <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let c = prog.symbols.intern("a");
        let w_eq = ops5::Wme::new(c, vec![Value::Int(3), Value::Int(3)], 1);
        let w_ne = ops5::Wme::new(c, vec![Value::Int(3), Value::Int(4)], 2);
        let pat = net.pattern(0);
        assert!(pat.tests.iter().all(|t| t.passes(&w_eq)));
        assert!(!pat.tests.iter().all(|t| t.passes(&w_ne)));
    }

    #[test]
    fn join_keys_agree_for_matching_pairs() {
        let mut prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("b");
        let wa = ops5::Wme::new(ca, vec![Value::Int(7)], 1);
        let wb = ops5::Wme::new(cb, vec![Value::Int(7)], 2);
        let wb2 = ops5::Wme::new(cb, vec![Value::Int(8)], 3);
        let j = net.join(0);
        let tok = Token::single(wa);
        assert_eq!(j.left_key(&tok), j.right_key(&wb));
        assert_ne!(j.left_key(&tok), j.right_key(&wb2));
        assert!(j.passes(&tok, &wb));
        assert!(!j.passes(&tok, &wb2));
    }

    #[test]
    fn cross_product_join_has_no_eq_specs() {
        // The Tourney pathology: CEs with no common variables.
        let prog = Program::from_source("(p q (a ^x <v>) (b ^y <w>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let j = net.join(0);
        assert!(j.eq_specs.is_empty());
        assert!(j.tests.is_empty());
    }

    #[test]
    fn single_ce_production_goes_to_terminal() {
        let prog = Program::from_source("(p q (a ^x 1) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        assert_eq!(net.n_joins(), 0);
        assert_eq!(net.pattern(0).succs, vec![AlphaSucc::Terminal(ProdId(0))]);
    }

    #[test]
    fn non_eq_cross_ce_predicate_becomes_join_test() {
        let prog = Program::from_source("(p q (a ^x <v>) (b ^y > <v>) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let j = net.join(0);
        assert_eq!(j.tests.len(), 1);
        assert_eq!(j.tests[0].pred, Pred::Gt);
        assert!(j.eq_specs.is_empty(), "non-eq tests cannot be hashed");
    }

    #[test]
    fn predicate_on_never_bound_variable_errors() {
        let prog = Program::from_source("(p q (a ^x > <nope>) --> (halt))").unwrap();
        assert!(Network::compile(&prog).is_err());
    }

    #[test]
    fn negated_ce_variables_do_not_bind_globally() {
        // <w> first occurs in the negated CE; using it in a later CE must
        // fail at compile time (no binding).
        let prog =
            Program::from_source("(p q (a ^x <v>) - (b ^y <w>) (c ^z > <w>) --> (halt))").unwrap();
        assert!(Network::compile(&prog).is_err());
    }

    #[test]
    fn validate_accepts_compiled_networks() {
        let prog = Program::from_source(
            "(p p1 (C1 ^attr1 <x> ^attr2 12)
                   (C2 ^attr1 15 ^attr2 <x>)
                 - (C3 ^attr1 <x>)
               --> (remove 2))
             (p p2 (C2 ^attr1 15 ^attr2 <y>) (C4 ^attr1 <y>) --> (modify 1 ^attr1 12))
             (p p3 (C1 ^attr1 1) --> (halt))",
        )
        .unwrap();
        let net = Network::compile(&prog).unwrap();
        assert!(net.validate().is_empty());
    }

    #[test]
    fn validate_detects_corruption() {
        let prog = Program::from_source("(p q (a ^x <v>) (b ^y <v>) --> (halt))").unwrap();
        let mut net = Network::compile(&prog).unwrap();
        // Corrupt the chain: point the join at a foreign production.
        net.joins[0].succs = vec![Succ::Terminal(ProdId(7))];
        assert!(!net.validate().is_empty());
    }

    /// Two productions with a common two-CE prefix: with sharing the first
    /// join is compiled once and grows two successors.
    const SHARED_PREFIX_SRC: &str = "(p p1 (a ^x <v>) (b ^y <v>) (c ^z <v>) --> (halt))
         (p p2 (a ^x <v>) (b ^y <v>) (d ^w <v>) --> (halt))";

    #[test]
    fn sharing_dedups_common_join_prefix() {
        let prog = Program::from_source(SHARED_PREFIX_SRC).unwrap();
        let off = Network::compile(&prog).unwrap();
        assert_eq!(off.n_joins(), 4);
        assert_eq!(off.shared_prefixes, 0);
        let on = Network::compile_with(
            &prog,
            NetworkOptions {
                sharing: true,
                unlinking: false,
            },
        )
        .unwrap();
        assert_eq!(on.n_joins(), 3, "the (a,b) join must be shared");
        assert_eq!(on.shared_prefixes, 1);
        assert!(on.validate().is_empty());
        // The shared join fans out to both productions' second joins.
        let j0 = on.join(0);
        assert_eq!(j0.succs.len(), 2);
        assert!(j0.succs.iter().all(|s| matches!(s, Succ::Join(_))));
        assert_eq!(on.summary().shared_prefixes, 1);
    }

    #[test]
    fn sharing_respects_test_differences() {
        // Same alpha patterns, different join predicate: no sharing.
        let prog = Program::from_source(
            "(p p1 (a ^x <v>) (b ^y <v>) --> (halt))
             (p p2 (a ^x <v>) (b ^y > <v>) --> (halt))",
        )
        .unwrap();
        let on = Network::compile_with(
            &prog,
            NetworkOptions {
                sharing: true,
                unlinking: false,
            },
        )
        .unwrap();
        assert_eq!(on.n_joins(), 2);
        assert_eq!(on.shared_prefixes, 0);
    }

    #[test]
    fn sharing_respects_negation_sign() {
        let prog = Program::from_source(
            "(p p1 (a ^x <v>) (b ^y <v>) --> (halt))
             (p p2 (a ^x <v>) - (b ^y <v>) --> (halt))",
        )
        .unwrap();
        let on = Network::compile_with(
            &prog,
            NetworkOptions {
                sharing: true,
                unlinking: false,
            },
        )
        .unwrap();
        assert_eq!(
            on.n_joins(),
            2,
            "a negated join cannot share with a positive one"
        );
        assert_eq!(on.shared_prefixes, 0);
    }

    #[test]
    fn identical_lhs_productions_share_whole_chain() {
        let prog = Program::from_source(
            "(p p1 (a ^x <v>) (b ^y <v>) --> (halt))
             (p p2 (a ^x <v>) (b ^y <v>) --> (remove 1))",
        )
        .unwrap();
        let on = Network::compile_with(
            &prog,
            NetworkOptions {
                sharing: true,
                unlinking: false,
            },
        )
        .unwrap();
        assert_eq!(on.n_joins(), 1);
        let j = on.join(0);
        assert_eq!(
            j.succs,
            vec![Succ::Terminal(ProdId(0)), Succ::Terminal(ProdId(1))]
        );
        assert!(on.validate().is_empty());
    }

    #[test]
    fn class_dispatch() {
        let mut prog = Program::from_source("(p q (a ^x 1) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let ca = prog.symbols.intern("a");
        let cb = prog.symbols.intern("zz");
        assert_eq!(net.patterns_for_class(ca).len(), 1);
        assert_eq!(net.patterns_for_class(cb).len(), 0);
    }
}
