//! Network rendering — regenerates the paper's Figure 2-2.
//!
//! Two outputs: Graphviz `dot` source, and a compact text listing for
//! terminals. Both show the shared constant-test layer, the coalesced
//! memory/two-input nodes, and the terminal nodes.

use crate::network::{AlphaSucc, AlphaTestKind, Network, Succ};
use ops5::{Pred, SymbolTable, Value};

fn pred_str(p: Pred) -> &'static str {
    match p {
        Pred::Eq => "=",
        Pred::Ne => "<>",
        Pred::Lt => "<",
        Pred::Le => "<=",
        Pred::Gt => ">",
        Pred::Ge => ">=",
        Pred::SameType => "<=>",
    }
}

fn val_str(v: Value, syms: &SymbolTable) -> String {
    format!("{}", v.display(syms))
}

/// Graphviz rendering of the network.
pub fn to_dot(net: &Network, syms: &SymbolTable) -> String {
    let mut s = String::new();
    s.push_str("digraph rete {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n");
    s.push_str("  root [shape=circle label=\"root\"];\n");
    for pat in &net.patterns {
        let mut label = format!("class={}", syms.name(pat.class));
        for t in pat.tests.iter() {
            match &t.kind {
                AlphaTestKind::Pred(p, v) => label.push_str(&format!(
                    "\\nf{}{}{}",
                    t.field,
                    pred_str(*p),
                    val_str(*v, syms)
                )),
                AlphaTestKind::Disj(vs) => {
                    let alts: Vec<String> = vs.iter().map(|v| val_str(*v, syms)).collect();
                    label.push_str(&format!("\\nf{}∈{{{}}}", t.field, alts.join(",")));
                }
                AlphaTestKind::FieldCmp(p, f2) => {
                    label.push_str(&format!("\\nf{}{}f{}", t.field, pred_str(*p), f2))
                }
            }
        }
        s.push_str(&format!(
            "  a{} [shape=box label=\"{}\"];\n  root -> a{};\n",
            pat.id, label, pat.id
        ));
    }
    for j in &net.joins {
        let kind = if j.negated { "not-node" } else { "mem/two-inp" };
        let mut label = format!("{} #{}", kind, j.id);
        for t in j.tests.iter() {
            label.push_str(&format!(
                "\\nR.f{} {} L[{}].f{}",
                t.right_field,
                pred_str(t.pred),
                t.left_ce,
                t.left_field
            ));
        }
        s.push_str(&format!(
            "  j{} [shape=ellipse label=\"{}\"];\n",
            j.id, label
        ));
    }
    for (i, name) in net.prod_names.iter().enumerate() {
        s.push_str(&format!("  t{i} [shape=doubleoctagon label=\"{name}\"];\n"));
    }
    for pat in &net.patterns {
        for succ in &pat.succs {
            match succ {
                AlphaSucc::JoinLeft(j) => {
                    s.push_str(&format!("  a{} -> j{} [label=\"L\"];\n", pat.id, j))
                }
                AlphaSucc::JoinRight(j) => {
                    s.push_str(&format!("  a{} -> j{} [label=\"R\"];\n", pat.id, j))
                }
                AlphaSucc::Terminal(p) => s.push_str(&format!("  a{} -> t{};\n", pat.id, p.0)),
            }
        }
    }
    for j in &net.joins {
        // A shared join renders once; each successor gets its own edge.
        for succ in &j.succs {
            match *succ {
                Succ::Join(n) => s.push_str(&format!("  j{} -> j{} [label=\"L\"];\n", j.id, n)),
                Succ::Terminal(p) => s.push_str(&format!("  j{} -> t{};\n", j.id, p.0)),
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Compact text summary: one line per node, indented by layer.
pub fn to_text(net: &Network, syms: &SymbolTable) -> String {
    let mut s = String::new();
    s.push_str("root\n");
    for pat in &net.patterns {
        s.push_str(&format!(
            "  const-test a{}: class={} ({} tests) -> {:?}\n",
            pat.id,
            syms.name(pat.class),
            pat.tests.len(),
            pat.succs
        ));
    }
    for j in &net.joins {
        s.push_str(&format!(
            "    {} j{}: prod={} left_len={} tests={} eq={} -> {:?}\n",
            if j.negated { "not " } else { "join" },
            j.id,
            net.prod_names[j.prod.index()],
            j.left_len,
            j.tests.len(),
            j.eq_specs.len(),
            j.succs
        ));
    }
    for name in &net.prod_names {
        s.push_str(&format!("      terminal: {name}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use ops5::Program;

    #[test]
    fn figure_2_2_dot_output() {
        let prog = Program::from_source(
            "(p p1 (C1 ^attr1 <x> ^attr2 12)
                   (C2 ^attr1 15 ^attr2 <x>)
                 - (C3 ^attr1 <x>)
               --> (remove 2))
             (p p2 (C2 ^attr1 15 ^attr2 <y>)
                   (C4 ^attr1 <y>)
               --> (modify 1 ^attr1 12))",
        )
        .unwrap();
        let net = Network::compile(&prog).unwrap();
        let dot = to_dot(&net, &prog.symbols);
        assert!(dot.contains("digraph rete"));
        assert!(dot.contains("class=C2"));
        assert!(dot.contains("not-node"));
        assert!(dot.contains("p1"));
        assert!(dot.contains("p2"));
        // Shared C2 pattern: exactly one node bearing its label.
        assert_eq!(dot.matches("class=C2").count(), 1);

        let txt = to_text(&net, &prog.symbols);
        assert!(txt.contains("root"));
        assert!(txt.contains("terminal: p1"));
    }

    #[test]
    fn single_ce_production_renders_direct_terminal_edge() {
        let prog = Program::from_source("(p solo (a ^x 1) --> (halt))").unwrap();
        let net = Network::compile(&prog).unwrap();
        let dot = to_dot(&net, &prog.symbols);
        assert!(
            dot.contains("a0 -> t0"),
            "alpha connects straight to terminal: {dot}"
        );
        assert!(!dot.contains("j0"), "no joins for a single-CE production");
    }

    #[test]
    fn disjunction_and_fieldcmp_render() {
        let prog = Program::from_source(
            "(p q (a ^x << red green >> ^y <v> ^z <v>) (b ^w > <v>) --> (halt))",
        )
        .unwrap();
        let net = Network::compile(&prog).unwrap();
        let dot = to_dot(&net, &prog.symbols);
        assert!(dot.contains("∈{red,green}"), "{dot}");
        assert!(
            dot.contains("f2=f1") || dot.contains("f2=f"),
            "fieldcmp rendered: {dot}"
        );
        assert!(dot.contains(" > "), "join predicate rendered: {dot}");
    }

    #[test]
    fn shared_join_renders_once_with_multiple_successor_edges() {
        use crate::network::NetworkOptions;
        let prog = Program::from_source(
            "(p p1 (a ^x <v>) (b ^y <v>) (c ^z <v>) --> (halt))
             (p p2 (a ^x <v>) (b ^y <v>) (d ^w <v>) --> (halt))",
        )
        .unwrap();
        let net = Network::compile_with(
            &prog,
            NetworkOptions {
                sharing: true,
                unlinking: false,
            },
        )
        .unwrap();
        let dot = to_dot(&net, &prog.symbols);
        // One shared (a,b) join node, drawn once...
        assert_eq!(dot.matches("j0 [shape=ellipse").count(), 1);
        // ...with one left edge to each downstream join.
        assert!(dot.contains("j0 -> j1 [label=\"L\"];"));
        assert!(dot.contains("j0 -> j2 [label=\"L\"];"));
        let txt = to_text(&net, &prog.symbols);
        assert!(txt.contains("-> [Join(1), Join(2)]"), "{txt}");
    }

    #[test]
    fn dot_output_is_deterministic() {
        let src = "(p a (x ^k 1) (y ^k 2) --> (halt)) (p b (x ^k 1) --> (halt))";
        let p1 = Program::from_source(src).unwrap();
        let p2 = Program::from_source(src).unwrap();
        let d1 = to_dot(&Network::compile(&p1).unwrap(), &p1.symbols);
        let d2 = to_dot(&Network::compile(&p2).unwrap(), &p2.symbols);
        assert_eq!(d1, d2);
    }
}
