//! The columnar collection-oriented matcher — *col*.
//!
//! The paper's matchers (and `seq`/`psm` here) are tuple-at-a-time Rete:
//! every WME change walks the network one token at a time, paying pointer
//! chases and per-activation bookkeeping per tuple. `ColMatcher` processes
//! the same [`ChangeBatch`] groups set-at-a-time instead, the Hiperfact
//! "Rete as in-memory fact tables" framing:
//!
//! * **Columnar memories.** Each join's left and right memory is a private
//!   power-of-two table of *lines* in struct-of-arrays layout: one
//!   `Vec<Value>` column per join test holding the operand that side
//!   contributes, plus one [`Row`] array carrying the per-entry header
//!   (join key, identity tag, not-node counter, liveness) together with
//!   the token/WME handle — merged into a single array so an insert, the
//!   dominant operation on null-heavy workloads, touches one allocation.
//!   Entries land on the line their join-test key hashes to; a scan is a
//!   tight loop over the dense row array that evaluates value columns
//!   only on key match — no token-chain walks per candidate and no
//!   per-key map probes. A line splits (the table doubles) when its live
//!   population exceeds [`LINE_TARGET`] *and* it holds more than one
//!   distinct key (doubling cannot shorten a single-key line; tracked
//!   O(1) via `key0`/`mixed`), so scans stay short as memories grow.
//! * **Set-at-a-time sweep.** A submit walks the batch pattern-major: per
//!   (class, pattern) it computes the passing change subset once, then
//!   feeds it to each successor. Right-side successors run *eagerly* —
//!   maintain the right memory and scan the left line in place — which is
//!   sound because left memories are only mutated afterwards, so eager
//!   right deltas see exactly the pre-batch left state the sequential
//!   two-pass order requires; a group-level `left_live == 0` check
//!   retires the dominant null case for a whole passing set at once.
//!   Left-side deltas (alpha tokens and join emissions) are queued per
//!   join and the join is flagged in a bitset worklist; a single
//!   ascending sweep then drains each flagged join's deltas against the
//!   settled post-batch right memory (the compiler guarantees successors
//!   are forward, so emissions only mark bits ahead of the cursor). Every
//!   (left, right) pair is counted exactly once, and downstream joins
//!   receive their deltas before the sweep reaches them.
//! * **Tombstone deletes + inline compaction.** Deletes mark the liveness
//!   flag and compact the line in place once tombstones reach
//!   [`COMPACT_TOMBSTONE_RATIO`] of its entries, so columns stay dense
//!   without per-delete `swap_remove` churn in every parallel column.
//!
//! The observable contract is the per-cycle conflict-set key history: the
//! differential suite holds it byte-identical to vs2 across the corpus.
//! Within one batch the net-delta emission is equivalent to the
//! per-change cascade because conjugate-pair annihilation makes WME
//! re-entry impossible, so the support of any instantiation changes
//! monotonically inside a batch.

use crate::network::{AlphaSucc, JoinNode, Network, Succ, MAX_RESOLVED_TESTS};
use crate::token::Token;
use ops5::{
    ChangeBatch, CsChange, Instantiation, MatchStats, Matcher, QuiesceReport, Sign,
    StatsDeltaTracker, Value, WmeChange, WmeRef,
};
use std::sync::Arc;

/// A line compacts in place once `dead / len` reaches this ratio, so the
/// tombstone ratio observed at quiescence is always strictly below it.
pub const COMPACT_TOMBSTONE_RATIO: f64 = 0.5;

/// A line splits (the side's table doubles) once its live population
/// exceeds this, keeping bucket scans short as memories grow.
pub const LINE_TARGET: usize = 8;

/// Per-entry row header: bookkeeping plus the handle, one slot per row of
/// a line. Kept in a single array so an insert — the dominant operation on
/// joins whose scans are mostly null — touches one allocation, not two.
struct Row<H> {
    /// The join-test key the entry's values hash to (scan filter).
    key: u64,
    /// Identity: WME timetag (right) or token identity hash (left).
    tag: u64,
    /// Not-node match counter (left memories of negated joins; kept in
    /// every line so compaction is uniform).
    neg: u32,
    alive: bool,
    /// The stored entry: token (left) or WME (right).
    handle: H,
}

/// One hash line of a columnar memory: parallel arrays, one slot per entry.
struct Bucket<H> {
    /// One column per join test: the operand this side contributes.
    cols: Box<[Vec<Value>]>,
    rows: Vec<Row<H>>,
    dead: usize,
    /// Key of the line's first entry, and whether any later entry carried
    /// a different key. Doubling the table cannot shorten a line whose
    /// entries all share one key (they rehash together), so only mixed
    /// lines trigger growth — an O(1) check per insert. `mixed` is
    /// conservative: compaction never clears it, redistribution recomputes
    /// it per destination line.
    key0: u64,
    mixed: bool,
}

impl<H> Bucket<H> {
    fn new(ncols: usize) -> Bucket<H> {
        Bucket {
            cols: (0..ncols).map(|_| Vec::new()).collect(),
            rows: Vec::new(),
            dead: 0,
            key0: 0,
            mixed: false,
        }
    }

    /// Update the split heuristic for an entry about to be pushed.
    #[inline]
    fn note_key(&mut self, key: u64) {
        if self.rows.is_empty() {
            self.key0 = key;
            self.mixed = false;
        } else if !self.mixed && key != self.key0 {
            self.mixed = true;
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    fn live(&self) -> usize {
        self.rows.len() - self.dead
    }

    /// Tombstone entry `i` and compact if the dead ratio hit the threshold.
    fn tombstone(&mut self, i: usize) {
        debug_assert!(self.rows[i].alive);
        self.rows[i].alive = false;
        self.dead += 1;
        if self.dead * 2 >= self.len() {
            self.compact();
        }
    }

    /// Drop tombstoned rows from every parallel column, in place.
    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.len() {
            if self.rows[r].alive {
                if w != r {
                    self.rows.swap(w, r);
                    for c in self.cols.iter_mut() {
                        c[w] = c[r];
                    }
                }
                w += 1;
            }
        }
        self.rows.truncate(w);
        for c in self.cols.iter_mut() {
            c.truncate(w);
        }
        self.dead = 0;
    }
}

/// One side (left or right) of one join's memory: a power-of-two line
/// table indexed by the low bits of the join-test key. Starts empty,
/// materializes one line on first insert, and doubles whenever the line an
/// insert landed on exceeds [`LINE_TARGET`] live entries — small memories
/// stay a single dense line, large ones keep scans bounded.
struct SideMem<H> {
    lines: Vec<Bucket<H>>,
    ncols: usize,
}

impl<H> SideMem<H> {
    fn new(ncols: usize) -> SideMem<H> {
        SideMem {
            lines: Vec::new(),
            ncols,
        }
    }

    #[inline]
    fn idx(&self, key: u64) -> usize {
        (key as usize) & (self.lines.len() - 1)
    }

    /// The line `key` hashes to, if the table is materialized.
    #[inline]
    fn line(&self, key: u64) -> Option<&Bucket<H>> {
        if self.lines.is_empty() {
            None
        } else {
            let i = self.idx(key);
            Some(&self.lines[i])
        }
    }

    #[inline]
    fn line_mut(&mut self, key: u64) -> Option<&mut Bucket<H>> {
        if self.lines.is_empty() {
            None
        } else {
            let i = self.idx(key);
            Some(&mut self.lines[i])
        }
    }

    /// The line an insert for `key` goes to, materializing the table.
    #[inline]
    fn line_for_insert(&mut self, key: u64) -> &mut Bucket<H> {
        if self.lines.is_empty() {
            self.lines.push(Bucket::new(self.ncols));
        }
        let i = self.idx(key);
        &mut self.lines[i]
    }

    /// Double the line count, redistributing live entries by key.
    fn grow(&mut self) {
        let n = self.lines.len() * 2;
        let ncols = self.ncols;
        let mut next: Vec<Bucket<H>> = (0..n).map(|_| Bucket::new(ncols)).collect();
        for b in std::mem::take(&mut self.lines) {
            let Bucket { cols, rows, .. } = b;
            for (i, r) in rows.into_iter().enumerate() {
                if !r.alive {
                    continue;
                }
                let t = &mut next[(r.key as usize) & (n - 1)];
                t.note_key(r.key);
                for (k, c) in cols.iter().enumerate() {
                    t.cols[k].push(c[i]);
                }
                t.rows.push(r);
            }
        }
        self.lines = next;
    }
}

type LeftMem = SideMem<Token>;
type RightMem = SideMem<WmeRef>;

/// Locally-buffered per-join profile (same rationale as the sequential
/// matcher's: plain increments on the hot path, one atomic fold per
/// quiesce).
struct BufferedProfile {
    shared: Arc<obs::NodeProfile>,
    acts: Vec<u64>,
    scans: Vec<u64>,
}

impl BufferedProfile {
    fn new(n_joins: usize) -> BufferedProfile {
        BufferedProfile {
            shared: Arc::new(obs::NodeProfile::new(n_joins)),
            acts: vec![0; n_joins],
            scans: vec![0; n_joins],
        }
    }

    fn flush(&mut self) {
        for (join, n) in self.acts.iter_mut().enumerate() {
            if *n != 0 {
                self.shared.record_activations(join, *n);
                *n = 0;
            }
        }
        for (join, n) in self.scans.iter_mut().enumerate() {
            if *n != 0 {
                self.shared.record_scan(join, *n);
                *n = 0;
            }
        }
    }
}

/// Locally-buffered bucket scan-length histogram, folded into the shared
/// `col_bucket_scan_len` instrument at quiesce.
struct ScanHist {
    shared: Arc<obs::Histogram>,
    counts: [u64; obs::N_BUCKETS],
    sums: [u64; obs::N_BUCKETS],
}

impl ScanHist {
    #[inline]
    fn record(&mut self, v: u64) {
        let b = obs::bucket_index(v);
        self.counts[b] += 1;
        self.sums[b] += v;
    }

    /// Record `n` identical observations at once (group-level fast paths).
    #[inline]
    fn record_n(&mut self, v: u64, n: u64) {
        let b = obs::bucket_index(v);
        self.counts[b] += n;
        self.sums[b] += v * n;
    }

    fn flush(&mut self) {
        for b in 0..obs::N_BUCKETS {
            if self.counts[b] != 0 {
                self.shared.record_bucketed(b, self.counts[b], self.sums[b]);
                self.counts[b] = 0;
                self.sums[b] = 0;
            }
        }
    }
}

/// The columnar set-at-a-time matcher.
pub struct ColMatcher {
    net: Arc<Network>,
    left: Vec<LeftMem>,
    right: Vec<RightMem>,
    /// Per-join live entry counts (the unlinking emptiness gates).
    left_live: Vec<u32>,
    right_live: Vec<u32>,
    /// Signed per-join left-input deltas for the current sweep: alpha-
    /// produced 1-WME tokens and upstream join emissions, in emission
    /// order. Right (alpha) deltas are not queued — they are processed
    /// eagerly during the alpha walk, which sees the identical pre-batch
    /// left memories pass 1 requires.
    left_deltas: Vec<Vec<(Sign, Token)>>,
    /// Worklist of joins with pending deltas: one bit per join id. The
    /// sweep walks it ascending via `trailing_zeros`, which is correct
    /// because emissions only travel forward (the compiler's topological
    /// id order) — a processed join can only set bits ahead of the
    /// cursor. Submits never pay for the hundreds of joins a small batch
    /// doesn't touch, and marking is a branch-free word OR.
    dirty: Vec<u64>,
    out: Vec<CsChange>,
    stats: MatchStats,
    delta: StatsDeltaTracker,
    profile: Option<BufferedProfile>,
    scan_hist: Option<ScanHist>,
}

/// Flag join `j` as having pending deltas.
#[inline]
fn mark(dirty: &mut [u64], j: u32) {
    dirty[(j >> 6) as usize] |= 1u64 << (j & 63);
}

/// Fan a join emission out to its successors: downstream joins get a left
/// delta, terminals get a conflict-set change. Free function so scans can
/// emit while borrowing a line from a disjoint field.
fn emit(
    succs: &[Succ],
    sign: Sign,
    token: &Token,
    left_deltas: &mut [Vec<(Sign, Token)>],
    dirty: &mut [u64],
    out: &mut Vec<CsChange>,
    stats: &mut MatchStats,
) {
    for succ in succs {
        match *succ {
            Succ::Join(j2) => {
                left_deltas[j2 as usize].push((sign, token.clone()));
                mark(dirty, j2);
            }
            Succ::Terminal(p) => {
                stats.activations += 1;
                stats.cs_changes += 1;
                let inst = Instantiation {
                    prod: p,
                    wmes: token.wme_vec(),
                };
                out.push(match sign {
                    Sign::Plus => CsChange::Insert(inst),
                    Sign::Minus => CsChange::Remove(inst),
                });
            }
        }
    }
}

/// The delta's join-test operands, resolved once before the line scan.
enum Resolved {
    Inline([Value; MAX_RESOLVED_TESTS]),
    /// More tests than the inline capacity: per-candidate fallback.
    Overflow,
}

#[inline]
fn resolve_right(j: &JoinNode, wme: &WmeRef) -> Resolved {
    if j.tests.len() > MAX_RESOLVED_TESTS {
        return Resolved::Overflow;
    }
    let mut vals = [Value::Int(0); MAX_RESOLVED_TESTS];
    for (v, t) in vals.iter_mut().zip(j.tests.iter()) {
        *v = wme.field(t.right_field);
    }
    Resolved::Inline(vals)
}

#[inline]
fn resolve_left(j: &JoinNode, token: &Token) -> Resolved {
    if j.tests.len() > MAX_RESOLVED_TESTS {
        return Resolved::Overflow;
    }
    let mut vals = [Value::Int(0); MAX_RESOLVED_TESTS];
    for (v, t) in vals.iter_mut().zip(j.tests.iter()) {
        *v = token.value(t.left_ce, t.left_field);
    }
    Resolved::Inline(vals)
}

/// Do all tests pass for entry `i` of a left line against a right delta?
/// Column values are the token-side operands; `rvals` the WME side.
#[inline]
fn left_entry_passes(j: &JoinNode, b: &Bucket<Token>, i: usize, r: &Resolved, w: &WmeRef) -> bool {
    match r {
        Resolved::Inline(rvals) => j
            .tests
            .iter()
            .zip(rvals.iter())
            .enumerate()
            .all(|(k, (t, rv))| t.pred.eval(*rv, b.cols[k][i])),
        Resolved::Overflow => j.passes(&b.rows[i].handle, w),
    }
}

/// Do all tests pass for entry `i` of a right line against a left delta?
/// Column values are the WME-side operands; `lvals` the token side.
#[inline]
fn right_entry_passes(
    j: &JoinNode,
    b: &Bucket<WmeRef>,
    i: usize,
    r: &Resolved,
    token: &Token,
) -> bool {
    match r {
        Resolved::Inline(lvals) => j
            .tests
            .iter()
            .zip(lvals.iter())
            .enumerate()
            .all(|(k, (t, lv))| t.pred.eval(b.cols[k][i], *lv)),
        Resolved::Overflow => j.passes(token, &b.rows[i].handle),
    }
}

fn insert_left_entry(mem: &mut LeftMem, j: &JoinNode, key: u64, token: Token, neg: u32) {
    let b = mem.line_for_insert(key);
    b.note_key(key);
    for (k, t) in j.tests.iter().enumerate() {
        b.cols[k].push(token.value(t.left_ce, t.left_field));
    }
    b.rows.push(Row {
        key,
        tag: token.identity_hash(),
        neg,
        alive: true,
        handle: token,
    });
    if b.live() > LINE_TARGET && b.mixed {
        mem.grow();
    }
}

/// Tombstone the entry whose identity matches `token`; returns its stored
/// neg count and the live entries examined.
fn remove_left_entry(mem: &mut LeftMem, key: u64, token: &Token) -> (Option<u32>, u64) {
    let mut examined = 0u64;
    if let Some(b) = mem.line_mut(key) {
        let tag = token.identity_hash();
        for i in 0..b.len() {
            let m = &b.rows[i];
            if !m.alive {
                continue;
            }
            examined += 1;
            if m.key == key && m.tag == tag && m.handle.same_wmes(token) {
                let neg = m.neg;
                b.tombstone(i);
                return (Some(neg), examined);
            }
        }
    }
    (None, examined)
}

fn insert_right_entry(mem: &mut RightMem, j: &JoinNode, key: u64, wme: WmeRef) {
    let b = mem.line_for_insert(key);
    b.note_key(key);
    for (k, t) in j.tests.iter().enumerate() {
        b.cols[k].push(wme.field(t.right_field));
    }
    b.rows.push(Row {
        key,
        tag: wme.timetag,
        neg: 0,
        alive: true,
        handle: wme,
    });
    if b.live() > LINE_TARGET && b.mixed {
        mem.grow();
    }
}

fn remove_right_entry(mem: &mut RightMem, key: u64, timetag: u64) -> (bool, u64) {
    let mut examined = 0u64;
    if let Some(b) = mem.line_mut(key) {
        // Scan newest-first: working-memory churn removes recent insertions
        // far more often than old ones, and rows append in arrival order, so
        // the target is usually within a step or two of the end.
        for i in (0..b.len()).rev() {
            let m = &b.rows[i];
            if !m.alive {
                continue;
            }
            examined += 1;
            // Timetags are unique, so the tag alone is the identity.
            if m.tag == timetag {
                b.tombstone(i);
                return (true, examined);
            }
        }
    }
    (false, examined)
}

impl ColMatcher {
    pub fn new(net: Arc<Network>) -> ColMatcher {
        let n = net.n_joins();
        let ncols = |jid: usize| net.join(jid as u32).tests.len();
        ColMatcher {
            left: (0..n).map(|j| SideMem::new(ncols(j))).collect(),
            right: (0..n).map(|j| SideMem::new(ncols(j))).collect(),
            left_live: vec![0; n],
            right_live: vec![0; n],
            left_deltas: (0..n).map(|_| Vec::new()).collect(),
            dirty: vec![0u64; n.div_ceil(64)],
            out: Vec::new(),
            stats: MatchStats::default(),
            delta: StatsDeltaTracker::default(),
            profile: None,
            scan_hist: None,
            net,
        }
    }

    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Live entries stored across all memories (invariant checks in tests).
    pub fn memory_entries(&self) -> usize {
        self.left
            .iter()
            .flat_map(|m| m.lines.iter())
            .map(Bucket::live)
            .sum::<usize>()
            + self
                .right
                .iter()
                .flat_map(|m| m.lines.iter())
                .map(Bucket::live)
                .sum::<usize>()
    }

    /// The worst tombstone ratio across all lines. The compaction policy
    /// keeps this strictly below [`COMPACT_TOMBSTONE_RATIO`] after every
    /// operation; the compaction proptest asserts it at quiescence.
    pub fn max_tombstone_ratio(&self) -> f64 {
        let mut max = 0.0f64;
        for b in self.left.iter().flat_map(|m| m.lines.iter()) {
            if b.len() > 0 {
                max = max.max(b.dead as f64 / b.len() as f64);
            }
        }
        for b in self.right.iter().flat_map(|m| m.lines.iter()) {
            if b.len() > 0 {
                max = max.max(b.dead as f64 / b.len() as f64);
            }
        }
        max
    }

    /// Pass 1 for a whole passing set against one join. The left memory —
    /// and with it `left_live` — is frozen for the entire alpha walk, so
    /// one emptiness check covers the whole set: the overwhelmingly common
    /// all-null case maintains the right memory in a tight loop and folds
    /// the per-activation bookkeeping into single adds.
    fn right_group(&mut self, j: &JoinNode, unlink: bool, group: &[WmeChange], passing: &[u32]) {
        let jid = j.id as usize;
        let n = passing.len() as u64;
        if self.left_live[jid] == 0 {
            self.stats.activations += n;
            self.stats.join_activations += n;
            if let Some(p) = &mut self.profile {
                p.acts[jid] += n;
            }
            let mem = &mut self.right[jid];
            for &ci in passing {
                let change = &group[ci as usize];
                let key = j.right_key(&change.wme);
                match change.sign {
                    Sign::Plus => {
                        insert_right_entry(mem, j, key, change.wme.clone());
                        self.right_live[jid] += 1;
                    }
                    Sign::Minus => {
                        let (found, examined) = remove_right_entry(mem, key, change.wme.timetag);
                        self.stats.same_tokens_right += examined;
                        self.stats.same_searches_right += 1;
                        debug_assert!(found, "col delete must find its wme");
                        self.right_live[jid] -= 1;
                    }
                }
            }
            if unlink {
                self.stats.null_skipped += n;
            } else {
                self.stats.null_activations += n;
                if let Some(h) = &mut self.scan_hist {
                    h.record_n(0, n);
                }
            }
            return;
        }
        for &ci in passing {
            let change = &group[ci as usize];
            self.right_delta(j, unlink, change.sign, &change.wme);
        }
    }

    /// Pass 1 of the two-pass split: one right (alpha) delta against the
    /// pre-batch left memory. Called eagerly from the alpha walk — left
    /// memories are only mutated by the pass-2 sweep, which runs after the
    /// whole alpha walk, so the left memory seen here *is* the pre-batch
    /// one. Together with pass 2 (left deltas against the post-batch right
    /// memory) every (left, right) pair is counted exactly once: a pair
    /// where both sides changed this batch is seen only by pass 2, a pair
    /// whose right side was deleted only by pass 1.
    fn right_delta(&mut self, j: &JoinNode, unlink: bool, sign: Sign, w: &WmeRef) {
        let jid = j.id as usize;
        {
            self.stats.activations += 1;
            self.stats.join_activations += 1;
            if let Some(p) = &mut self.profile {
                p.acts[jid] += 1;
            }
            let key = j.right_key(w);
            let opp_live = self.left_live[jid];
            if !j.negated {
                match sign {
                    Sign::Plus => {
                        insert_right_entry(&mut self.right[jid], j, key, w.clone());
                        self.right_live[jid] += 1;
                    }
                    Sign::Minus => {
                        let (found, examined) =
                            remove_right_entry(&mut self.right[jid], key, w.timetag);
                        self.stats.same_tokens_right += examined;
                        self.stats.same_searches_right += 1;
                        debug_assert!(found, "col delete must find its wme");
                        self.right_live[jid] -= 1;
                    }
                }
                if unlink && opp_live == 0 {
                    self.stats.null_skipped += 1;
                    return;
                }
                if opp_live == 0 {
                    // Null fast path: zero live entries opposite means any
                    // line scan would examine nothing — record the empty
                    // scan and skip the memory access.
                    self.stats.null_activations += 1;
                    if let Some(h) = &mut self.scan_hist {
                        h.record(0);
                    }
                    return;
                }
                let mut examined = 0u64;
                if let Some(b) = self.left[jid].line(key) {
                    let r = resolve_right(j, w);
                    for i in 0..b.len() {
                        let m = &b.rows[i];
                        if !m.alive {
                            continue;
                        }
                        examined += 1;
                        if m.key == key && left_entry_passes(j, b, i, &r, w) {
                            emit(
                                &j.succs,
                                sign,
                                &b.rows[i].handle.extended(w.clone()),
                                &mut self.left_deltas,
                                &mut self.dirty,
                                &mut self.out,
                                &mut self.stats,
                            );
                        }
                    }
                }
                self.stats.opp_tokens_right += examined;
                if examined > 0 {
                    self.stats.opp_nonempty_right += 1;
                }
                if let Some(p) = &mut self.profile {
                    p.scans[jid] += examined;
                }
                if let Some(h) = &mut self.scan_hist {
                    h.record(examined);
                }
            } else {
                // Not-node blocker delta: adjust the frozen left entry
                // set's counters, emitting each 0-boundary crossing.
                match sign {
                    Sign::Plus => {
                        insert_right_entry(&mut self.right[jid], j, key, w.clone());
                        self.right_live[jid] += 1;
                    }
                    Sign::Minus => {
                        let (found, examined) =
                            remove_right_entry(&mut self.right[jid], key, w.timetag);
                        self.stats.same_tokens_right += examined;
                        self.stats.same_searches_right += 1;
                        debug_assert!(found, "col delete must find its blocker");
                        self.right_live[jid] -= 1;
                    }
                }
                if unlink && opp_live == 0 {
                    self.stats.null_skipped += 1;
                    return;
                }
                if opp_live == 0 {
                    // Null fast path: zero live entries opposite means any
                    // line scan would examine nothing — record the empty
                    // scan and skip the memory access.
                    self.stats.null_activations += 1;
                    if let Some(h) = &mut self.scan_hist {
                        h.record(0);
                    }
                    return;
                }
                let mut examined = 0u64;
                if let Some(b) = self.left[jid].line_mut(key) {
                    let r = resolve_right(j, w);
                    for i in 0..b.len() {
                        let m = &b.rows[i];
                        if !m.alive {
                            continue;
                        }
                        examined += 1;
                        if m.key != key || !left_entry_passes(j, b, i, &r, w) {
                            continue;
                        }
                        match sign {
                            Sign::Plus => {
                                b.rows[i].neg += 1;
                                if b.rows[i].neg == 1 {
                                    emit(
                                        &j.succs,
                                        Sign::Minus,
                                        &b.rows[i].handle,
                                        &mut self.left_deltas,
                                        &mut self.dirty,
                                        &mut self.out,
                                        &mut self.stats,
                                    );
                                }
                            }
                            Sign::Minus => {
                                debug_assert!(b.rows[i].neg > 0, "not-node counter underflow");
                                b.rows[i].neg -= 1;
                                if b.rows[i].neg == 0 {
                                    emit(
                                        &j.succs,
                                        Sign::Plus,
                                        &b.rows[i].handle,
                                        &mut self.left_deltas,
                                        &mut self.dirty,
                                        &mut self.out,
                                        &mut self.stats,
                                    );
                                }
                            }
                        }
                    }
                }
                self.stats.opp_tokens_right += examined;
                if examined > 0 {
                    self.stats.opp_nonempty_right += 1;
                }
                if let Some(p) = &mut self.profile {
                    p.scans[jid] += examined;
                }
                if let Some(h) = &mut self.scan_hist {
                    h.record(examined);
                }
            }
        }
    }

    /// Pass 2 of the two-pass split: the join's accumulated left deltas
    /// (alpha 1-WME tokens and upstream emissions), in emission order,
    /// against the post-batch (settled) right memory.
    fn process_join(&mut self, net: &Network, jid: usize) {
        let j = net.join(jid as u32);
        let unlink = net.options.unlinking;
        let mut ldeltas = std::mem::take(&mut self.left_deltas[jid]);
        // The sweep never mutates right memories, so the opposite-side live
        // count is invariant across every delta queued for this join.
        let opp_live = self.right_live[jid];
        let n = ldeltas.len() as u64;
        self.stats.activations += n;
        self.stats.join_activations += n;
        if let Some(p) = &mut self.profile {
            p.acts[jid] += n;
        }
        for (sign, t) in ldeltas.drain(..) {
            let key = j.left_key(&t);
            if !j.negated {
                match sign {
                    Sign::Plus => {
                        insert_left_entry(&mut self.left[jid], j, key, t.clone(), 0);
                        self.left_live[jid] += 1;
                    }
                    Sign::Minus => {
                        let (found, examined) = remove_left_entry(&mut self.left[jid], key, &t);
                        self.stats.same_tokens_left += examined;
                        self.stats.same_searches_left += 1;
                        debug_assert!(found.is_some(), "col delete must find its token");
                        self.left_live[jid] -= 1;
                    }
                }
                if unlink && opp_live == 0 {
                    self.stats.null_skipped += 1;
                    continue;
                }
                if opp_live == 0 {
                    // Null fast path: zero live entries opposite means any
                    // line scan would examine nothing — record the empty
                    // scan and skip the memory access.
                    self.stats.null_activations += 1;
                    if let Some(h) = &mut self.scan_hist {
                        h.record(0);
                    }
                    continue;
                }
                let mut examined = 0u64;
                if let Some(b) = self.right[jid].line(key) {
                    let r = resolve_left(j, &t);
                    for i in 0..b.len() {
                        let m = &b.rows[i];
                        if !m.alive {
                            continue;
                        }
                        examined += 1;
                        if m.key == key && right_entry_passes(j, b, i, &r, &t) {
                            emit(
                                &j.succs,
                                sign,
                                &t.extended(b.rows[i].handle.clone()),
                                &mut self.left_deltas,
                                &mut self.dirty,
                                &mut self.out,
                                &mut self.stats,
                            );
                        }
                    }
                }
                self.stats.opp_tokens_left += examined;
                if examined > 0 {
                    self.stats.opp_nonempty_left += 1;
                }
                if let Some(p) = &mut self.profile {
                    p.scans[jid] += examined;
                }
                if let Some(h) = &mut self.scan_hist {
                    h.record(examined);
                }
            } else {
                match sign {
                    Sign::Plus => {
                        // Count blockers in the settled right memory; the
                        // token joins with its final count directly.
                        let n = if unlink && opp_live == 0 {
                            self.stats.null_skipped += 1;
                            0
                        } else if opp_live == 0 {
                            // Null fast path, same as the positive joins.
                            self.stats.null_activations += 1;
                            if let Some(h) = &mut self.scan_hist {
                                h.record(0);
                            }
                            0
                        } else {
                            let mut n = 0u32;
                            let mut examined = 0u64;
                            if let Some(b) = self.right[jid].line(key) {
                                let r = resolve_left(j, &t);
                                for i in 0..b.len() {
                                    let m = &b.rows[i];
                                    if !m.alive {
                                        continue;
                                    }
                                    examined += 1;
                                    if m.key == key && right_entry_passes(j, b, i, &r, &t) {
                                        n += 1;
                                    }
                                }
                            }
                            self.stats.opp_tokens_left += examined;
                            if examined > 0 {
                                self.stats.opp_nonempty_left += 1;
                            }
                            if let Some(p) = &mut self.profile {
                                p.scans[jid] += examined;
                            }
                            if let Some(h) = &mut self.scan_hist {
                                h.record(examined);
                            }
                            n
                        };
                        insert_left_entry(&mut self.left[jid], j, key, t.clone(), n);
                        self.left_live[jid] += 1;
                        if n == 0 {
                            emit(
                                &j.succs,
                                Sign::Plus,
                                &t,
                                &mut self.left_deltas,
                                &mut self.dirty,
                                &mut self.out,
                                &mut self.stats,
                            );
                        }
                    }
                    Sign::Minus => {
                        let (neg, examined) = remove_left_entry(&mut self.left[jid], key, &t);
                        self.stats.same_tokens_left += examined;
                        self.stats.same_searches_left += 1;
                        self.left_live[jid] -= 1;
                        match neg {
                            Some(0) => emit(
                                &j.succs,
                                Sign::Minus,
                                &t,
                                &mut self.left_deltas,
                                &mut self.dirty,
                                &mut self.out,
                                &mut self.stats,
                            ),
                            Some(_) => {}
                            None => debug_assert!(false, "col delete must find its token"),
                        }
                    }
                }
            }
        }
        self.left_deltas[jid] = ldeltas;
    }
}

impl Matcher for ColMatcher {
    fn submit(&mut self, batch: &ChangeBatch) {
        self.stats.conjugate_pairs += batch.annihilated();
        let net = self.net.clone();
        let unlink = net.options.unlinking;
        // Alpha network, whole batch, pattern-major: the group's passing
        // changes are resolved once per pattern, then each successor
        // consumes the whole set while its join state is cache-hot. Right
        // deltas run pass 1 in place (left memories stay untouched until
        // the sweep); left deltas and emissions queue on their join for
        // the pass-2 sweep. Per-join delta order stays submission order —
        // only interleaving across joins changes, which folding cannot
        // observe.
        let mut passing: Vec<u32> = Vec::new();
        let mut singles: Vec<Option<Token>> = Vec::new();
        for (class, group) in batch.groups() {
            self.stats.alpha_activations += 1;
            self.stats.wme_changes += group.len() as u64;
            let pats = net.patterns_for_class(class);
            if pats.is_empty() {
                continue;
            }
            // One 1-WME token per change, shared across every first join
            // it feeds (token clones are `Arc` bumps).
            singles.clear();
            singles.resize(group.len(), None);
            for &pid in pats {
                let pat = net.pattern(pid);
                passing.clear();
                for (ci, change) in group.iter().enumerate() {
                    if pat.tests.iter().all(|t| t.passes(&change.wme)) {
                        passing.push(ci as u32);
                    }
                }
                if passing.is_empty() {
                    continue;
                }
                for succ in &pat.succs {
                    match *succ {
                        AlphaSucc::JoinLeft(j) => {
                            for &ci in &passing {
                                let change = &group[ci as usize];
                                let t = singles[ci as usize]
                                    .get_or_insert_with(|| Token::single(change.wme.clone()))
                                    .clone();
                                self.left_deltas[j as usize].push((change.sign, t));
                            }
                            mark(&mut self.dirty, j);
                        }
                        AlphaSucc::JoinRight(j) => {
                            self.right_group(net.join(j), unlink, group, &passing);
                        }
                        AlphaSucc::Terminal(p) => {
                            for &ci in &passing {
                                let change = &group[ci as usize];
                                self.stats.activations += 1;
                                self.stats.cs_changes += 1;
                                let inst = Instantiation {
                                    prod: p,
                                    wmes: vec![change.wme.clone()],
                                };
                                self.out.push(match change.sign {
                                    Sign::Plus => CsChange::Insert(inst),
                                    Sign::Minus => CsChange::Remove(inst),
                                });
                            }
                        }
                    }
                }
            }
        }
        // One forward sweep over the dirty joins in ascending id order
        // (topological, so every join's delta set is complete when the
        // sweep reaches it; emissions only set bits ahead of the cursor,
        // so re-reading the current word after a join picks them up).
        let mut wi = 0;
        while wi < self.dirty.len() {
            let word = self.dirty[wi];
            if word == 0 {
                wi += 1;
                continue;
            }
            let bit = word.trailing_zeros() as usize;
            self.dirty[wi] &= !(1u64 << bit);
            self.process_join(&net, wi * 64 + bit);
        }
        debug_assert!(self.left_deltas.iter().all(Vec::is_empty));
    }

    fn quiesce(&mut self) -> QuiesceReport {
        debug_assert!(self.left_deltas.iter().all(Vec::is_empty));
        if let Some(p) = &mut self.profile {
            p.flush();
        }
        if let Some(h) = &mut self.scan_hist {
            h.flush();
        }
        QuiesceReport {
            cs_changes: std::mem::take(&mut self.out),
            stats_delta: self.delta.take(self.stats),
            phase: None,
        }
    }

    fn stats(&self) -> MatchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
        self.delta.reset();
    }

    fn name(&self) -> &'static str {
        "col"
    }

    fn enable_obs(&mut self, registry: &Arc<obs::Registry>) {
        if self.profile.is_none() {
            self.profile = Some(BufferedProfile::new(self.net.n_joins()));
        }
        if self.scan_hist.is_none() {
            self.scan_hist = Some(ScanHist {
                shared: registry.histogram("col_bucket_scan_len", vec![]),
                counts: [0; obs::N_BUCKETS],
                sums: [0; obs::N_BUCKETS],
            });
        }
    }

    fn node_profile(&self) -> Option<Arc<obs::NodeProfile>> {
        self.profile.as_ref().map(|p| p.shared.clone())
    }
}

/// Factory helper returning a boxed matcher (table-driven harnesses).
pub fn boxed_col(net: Arc<Network>) -> Box<dyn Matcher> {
    Box::new(ColMatcher::new(net))
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::boxed_vs2;
    use ops5::{Program, Sign, Value, Wme, WmeChange};

    fn net_of(src: &str) -> (Program, Arc<Network>) {
        let prog = Program::from_source(src).unwrap();
        let net = Arc::new(Network::compile(&prog).unwrap());
        (prog, net)
    }

    fn wme(prog: &mut Program, class: &str, vals: Vec<Value>, tag: u64) -> WmeRef {
        let c = prog.symbols.intern(class);
        Wme::new(c, vals, tag)
    }

    fn change(sign: Sign, wme: WmeRef) -> WmeChange {
        WmeChange { sign, wme }
    }

    /// Sorted conflict-set keys after folding one quiesce's deltas, for
    /// col-vs-vs2 equivalence checks.
    fn fold_keys(
        state: &mut std::collections::BTreeSet<(u32, Vec<u64>)>,
        cs: Vec<CsChange>,
    ) -> Vec<(u32, Vec<u64>)> {
        for c in cs {
            match c {
                CsChange::Insert(i) => {
                    let (p, tags) = i.key();
                    state.insert((p.0, tags));
                }
                CsChange::Remove(i) => {
                    let (p, tags) = i.key();
                    state.remove(&(p.0, tags));
                }
            }
        }
        state.iter().cloned().collect()
    }

    /// Drive col and vs2 through the same per-cycle batches and assert the
    /// folded conflict sets agree after every quiesce.
    fn assert_agrees(src: &str, cycles: &[Vec<WmeChange>]) {
        let (_prog, net) = net_of(src);
        let mut col = ColMatcher::new(net.clone());
        let mut vs2 = boxed_vs2(net, crate::memory::HashMemConfig { buckets: 16 });
        let mut col_state = std::collections::BTreeSet::new();
        let mut vs2_state = std::collections::BTreeSet::new();
        for (i, cycle) in cycles.iter().enumerate() {
            let batch: ChangeBatch = cycle.iter().cloned().collect();
            col.submit(&batch);
            vs2.submit(&batch);
            let a = fold_keys(&mut col_state, col.quiesce().cs_changes);
            let b = fold_keys(&mut vs2_state, vs2.quiesce().cs_changes);
            assert_eq!(a, b, "cycle {i} diverged");
        }
        assert!(col.max_tombstone_ratio() < COMPACT_TOMBSTONE_RATIO);
    }

    #[test]
    fn two_ce_join_fires_batched() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, _net) = net_of(src);
        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
        let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
        assert_agrees(
            src,
            &[
                vec![
                    change(Sign::Plus, wa.clone()),
                    change(Sign::Plus, wb.clone()),
                ],
                vec![change(Sign::Minus, wa)],
                vec![change(Sign::Minus, wb)],
            ],
        );
    }

    #[test]
    fn cross_product_and_deletes() {
        let src = "(p q (a ^x <v>) (b ^y <w>) --> (halt))";
        let (mut prog, _net) = net_of(src);
        let mut cycles = Vec::new();
        let mut adds = Vec::new();
        for i in 0..3 {
            adds.push(change(
                Sign::Plus,
                wme(&mut prog, "a", vec![Value::Int(i)], i as u64 + 1),
            ));
        }
        for i in 0..4 {
            adds.push(change(
                Sign::Plus,
                wme(&mut prog, "b", vec![Value::Int(i)], i as u64 + 10),
            ));
        }
        cycles.push(adds);
        cycles.push(vec![change(
            Sign::Minus,
            wme(&mut prog, "a", vec![Value::Int(0)], 1),
        )]);
        assert_agrees(src, &cycles);
    }

    #[test]
    fn negated_ce_blocks_and_unblocks_batched() {
        let src = "(p q (a ^x <v>) - (b ^y <v>) --> (halt))";
        let (mut prog, _net) = net_of(src);
        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
        let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
        let wb2 = wme(&mut prog, "b", vec![Value::Int(1)], 3);
        assert_agrees(
            src,
            &[
                vec![change(Sign::Plus, wa.clone())],
                vec![
                    change(Sign::Plus, wb.clone()),
                    change(Sign::Plus, wb2.clone()),
                ],
                vec![change(Sign::Minus, wb)],
                vec![change(Sign::Minus, wb2)],
                vec![change(Sign::Minus, wa)],
            ],
        );
    }

    #[test]
    fn blocker_and_token_in_one_batch() {
        let src = "(p q (a ^x <v>) - (b ^y <v>) --> (halt))";
        let (mut prog, _net) = net_of(src);
        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
        let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
        assert_agrees(
            src,
            &[
                vec![
                    change(Sign::Plus, wa.clone()),
                    change(Sign::Plus, wb.clone()),
                ],
                vec![change(Sign::Minus, wb)],
                vec![change(Sign::Minus, wa)],
            ],
        );
    }

    #[test]
    fn three_ce_chain_mixed_batches() {
        let src = "(p q (a ^x <v>) (b ^y <v> ^z <w>) (c ^u <w>) --> (halt))";
        let (mut prog, _net) = net_of(src);
        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
        let wb = wme(&mut prog, "b", vec![Value::Int(1), Value::Int(9)], 2);
        let wc = wme(&mut prog, "c", vec![Value::Int(9)], 3);
        assert_agrees(
            src,
            &[
                vec![
                    change(Sign::Plus, wc.clone()),
                    change(Sign::Plus, wb.clone()),
                    change(Sign::Plus, wa.clone()),
                ],
                vec![change(Sign::Minus, wb.clone())],
                vec![change(Sign::Plus, wb)],
                vec![change(Sign::Minus, wa), change(Sign::Minus, wc)],
            ],
        );
    }

    #[test]
    fn double_delete_of_a_pair_emits_once() {
        // Both sides of a matched pair deleted in one batch: the Remove
        // must be emitted exactly once (pass 1 sees it, pass 2 must not).
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 1);
        let wb = wme(&mut prog, "b", vec![Value::Int(1)], 2);
        let mut m = ColMatcher::new(net);
        let b: ChangeBatch = [
            change(Sign::Plus, wa.clone()),
            change(Sign::Plus, wb.clone()),
        ]
        .into_iter()
        .collect();
        m.submit(&b);
        assert_eq!(m.quiesce().cs_changes.len(), 1);
        let b: ChangeBatch = [change(Sign::Minus, wa), change(Sign::Minus, wb)]
            .into_iter()
            .collect();
        m.submit(&b);
        let cs = m.quiesce().cs_changes;
        assert_eq!(cs.len(), 1, "exactly one Remove: {cs:?}");
        assert!(matches!(cs[0], CsChange::Remove(_)));
        assert_eq!(m.memory_entries(), 0);
    }

    #[test]
    fn compaction_keeps_ratio_below_threshold() {
        let src = "(p q (a ^x <v>) (b ^y <w>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let mut m = ColMatcher::new(net);
        // Fill one cross-product bucket, then delete most of it.
        let mut adds = ChangeBatch::new();
        for i in 0..32 {
            adds.push(change(
                Sign::Plus,
                wme(&mut prog, "b", vec![Value::Int(i)], i as u64 + 1),
            ));
        }
        m.submit(&adds);
        m.quiesce();
        for i in 0..30 {
            let b = ChangeBatch::single(change(
                Sign::Minus,
                wme(&mut prog, "b", vec![Value::Int(i)], i as u64 + 1),
            ));
            m.submit(&b);
            assert!(
                m.max_tombstone_ratio() < COMPACT_TOMBSTONE_RATIO,
                "ratio {} after delete {i}",
                m.max_tombstone_ratio()
            );
        }
        m.quiesce();
        assert_eq!(m.memory_entries(), 2);
    }

    #[test]
    fn unlinking_gate_skips_null_scans() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let prog = Program::from_source(src).unwrap();
        let net = Arc::new(
            Network::compile_with(
                &prog,
                crate::network::NetworkOptions {
                    sharing: false,
                    unlinking: true,
                },
            )
            .unwrap(),
        );
        let mut prog = prog;
        let mut m = ColMatcher::new(net);
        let wb = wme(&mut prog, "b", vec![Value::Int(1)], 1);
        m.submit(&ChangeBatch::single(change(Sign::Plus, wb)));
        m.quiesce();
        assert_eq!(m.stats().null_skipped, 1);
        assert_eq!(m.stats().null_activations, 0);
        let wa = wme(&mut prog, "a", vec![Value::Int(1)], 2);
        m.submit(&ChangeBatch::single(change(Sign::Plus, wa)));
        let cs = m.quiesce().cs_changes;
        assert_eq!(cs.len(), 1, "relinked scan finds the pair");
    }

    #[test]
    fn obs_profile_reconciles_with_stats() {
        let src = "(p q (a ^x <v>) (b ^y <v>) --> (halt))";
        let (mut prog, net) = net_of(src);
        let mut m = ColMatcher::new(net);
        let reg = Arc::new(obs::Registry::new());
        m.enable_obs(&reg);
        let mut b = ChangeBatch::new();
        for i in 0..8 {
            b.push(change(
                Sign::Plus,
                wme(&mut prog, "a", vec![Value::Int(i % 3)], i as u64 + 1),
            ));
            b.push(change(
                Sign::Plus,
                wme(&mut prog, "b", vec![Value::Int(i % 3)], i as u64 + 100),
            ));
        }
        m.submit(&b);
        m.quiesce();
        let p = m.node_profile().unwrap();
        let s = m.stats();
        assert_eq!(p.total_activations(), s.join_activations);
        assert_eq!(p.total_scanned(), s.opp_tokens_left + s.opp_tokens_right);
        let snap = reg.snapshot();
        let (_, hist) = snap
            .histograms()
            .find(|(n, _)| *n == "col_bucket_scan_len")
            .expect("histogram registered");
        hist.validate().unwrap();
        assert!(hist.count > 0);
    }
}
