//! # rete — the compiled Rete match network
//!
//! This crate is the Rust analogue of the paper's "compile the Rete network
//! directly into machine code": the network is compiled from production LHSs
//! into flat, index-addressed instruction arrays (constant tests with
//! pre-resolved field indices, join tests with pre-computed token positions,
//! pre-extracted equality specs for hashing) that the matchers execute with
//! static dispatch and no per-node interpretation. The deliberately
//! *interpretive* counterpart lives in the `lispsim` crate.
//!
//! Contents:
//!
//! * [`network`] — network types and the LHS → network compiler. Constant-test
//!   nodes are shared across productions (the paper's Figure 2-2 sharing);
//!   memory nodes are coalesced into the two-input nodes below them (§3.1)
//!   and are *not* shared between productions (paper footnote 6: sharing is
//!   impossible in the parallel implementation).
//! * [`memory`] — token memories: per-join linear lists (*vs1*) and the two
//!   global hash tables holding all left/right tokens for the whole network
//!   (*vs2*, §3.2), organised in "lines" (pairs of same-index buckets).
//! * [`seq`] — the sequential matcher over either memory kind, instrumented
//!   with the Table 4-1/4-2/4-3 statistics.
//! * [`colmatch`] — the columnar set-at-a-time matcher (*col*): per-join
//!   value-bucketed struct-of-arrays memories scanned a whole batch at a
//!   time, with tombstone deletes and inline compaction.
//! * [`dot`] — Graphviz/ASCII rendering of the network (Figure 2-2).

pub mod colmatch;
pub mod dot;
pub mod fxhash;
pub mod memory;
pub mod network;
pub mod seq;
pub mod token;

pub use colmatch::ColMatcher;
pub use memory::{HashMemConfig, MemoryKind};
pub use network::{
    AlphaPatternId, AlphaSucc, EqSpec, JoinId, JoinNode, JoinTest, Network, NetworkOptions,
    NetworkSummary, Succ,
};
pub use seq::SeqMatcher;
pub use token::Token;
