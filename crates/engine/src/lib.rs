//! # engine — the OPS5 recognize-act interpreter
//!
//! This crate is the paper's *control process* (§3.1): everything except the
//! match. It owns working memory, performs conflict resolution (OPS5 LEX and
//! MEA strategies), compiles production right-hand sides to threaded code
//! (§3.3) and interprets them, and drives a pluggable
//! [`ops5::Matcher`] through the recognize-act cycle:
//!
//! 1. **Match** — delegated to the matcher. Each firing's WME changes go
//!    out as one [`ops5::ChangeBatch`]: a `modify`'s delete/add conjugate
//!    pair annihilates inside the batch, and the matcher sees the surviving
//!    changes grouped by class so it amortises per-change dispatch.
//! 2. **Conflict resolution** — pick the dominant unfired instantiation.
//! 3. **Act** — interpret the winner's threaded RHS code.
//!
//! Construct engines with [`EngineBuilder`]; it selects between all four of
//! the paper's match engines (vs1, vs2, the lisp baseline, PSM-E) plus the
//! trace recorder.

pub mod act;
pub mod builder;
pub mod cr;
pub mod cs;
pub mod interp;
pub mod rhs;
pub mod state;
pub mod wm;

pub use act::{ActStats, ActStrategy};
pub use builder::{EngineBuilder, MatcherKind};
pub use cr::order_dominates;
pub use cs::ConflictSet;
pub use interp::{Engine, EngineLimits, RunResult, StopReason};
pub use rhs::{Instr, RhsProgram};
pub use state::{program_fingerprint, ChangeLog, LogRecord, SnapVal, SnapWme, Snapshot};
pub use wm::WorkingMemory;
