//! # engine — the OPS5 recognize-act interpreter
//!
//! This crate is the paper's *control process* (§3.1): everything except the
//! match. It owns working memory, performs conflict resolution (OPS5 LEX and
//! MEA strategies), compiles production right-hand sides to threaded code
//! (§3.3) and interprets them, and drives a pluggable
//! [`ops5::Matcher`] through the recognize-act cycle:
//!
//! 1. **Match** — delegated to the matcher. WME changes are *pipelined*:
//!    each change is submitted the moment RHS evaluation computes it, so a
//!    parallel matcher overlaps match with RHS evaluation exactly as in the
//!    paper.
//! 2. **Conflict resolution** — pick the dominant unfired instantiation.
//! 3. **Act** — interpret the winner's threaded RHS code.

pub mod cr;
pub mod cs;
pub mod interp;
pub mod rhs;
pub mod wm;

pub use cr::order_dominates;
pub use cs::ConflictSet;
pub use interp::{Engine, RunResult, StopReason};
pub use rhs::{Instr, RhsProgram};
pub use wm::WorkingMemory;
