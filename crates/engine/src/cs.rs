//! The conflict set: satisfied instantiations plus refraction state.

use ops5::{CsChange, Instantiation, ProdId};
use std::collections::HashMap;

/// Key identifying an instantiation: production + matched timetags.
type InstKey = (ProdId, Vec<u64>);

struct Entry {
    inst: Instantiation,
    fired: bool,
}

/// The conflict set.
///
/// Entries carry a `fired` flag implementing OPS5 refraction: an
/// instantiation fires at most once while it remains continuously in the
/// conflict set; if the match phase retracts it and later re-derives it, it
/// becomes eligible again.
#[derive(Default)]
pub struct ConflictSet {
    entries: HashMap<InstKey, Entry>,
}

impl ConflictSet {
    pub fn new() -> Self {
        ConflictSet {
            entries: HashMap::new(),
        }
    }

    /// Applies one match-phase delta.
    pub fn apply(&mut self, change: CsChange) {
        match change {
            CsChange::Insert(inst) => {
                let key = inst.key();
                // Re-inserting an identical live instantiation is a matcher
                // bug in the sequential engines; the parallel matcher never
                // emits it either (conjugate pairs are annihilated before
                // the terminal). Last write wins, fired state resets.
                self.entries.insert(key, Entry { inst, fired: false });
            }
            CsChange::Remove(inst) => {
                self.entries.remove(&inst.key());
            }
        }
    }

    pub fn apply_all(&mut self, changes: impl IntoIterator<Item = CsChange>) {
        for c in changes {
            self.apply(c);
        }
    }

    /// All unfired instantiations (candidates for conflict resolution).
    pub fn candidates(&self) -> impl Iterator<Item = &Instantiation> {
        self.entries.values().filter(|e| !e.fired).map(|e| &e.inst)
    }

    /// Marks an instantiation fired (refraction).
    pub fn mark_fired(&mut self, inst: &Instantiation) {
        if let Some(e) = self.entries.get_mut(&inst.key()) {
            e.fired = true;
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys of entries that have fired (refraction state), sorted — the
    /// durable slice of the conflict set a snapshot must carry.
    pub fn fired_keys(&self) -> Vec<InstKey> {
        let mut v: Vec<InstKey> = self
            .entries
            .iter()
            .filter(|(_, e)| e.fired)
            .map(|(k, _)| k.clone())
            .collect();
        v.sort();
        v
    }

    /// Marks the entry with this key fired (snapshot restore); `false` if
    /// no such instantiation is present.
    pub fn mark_fired_key(&mut self, key: &InstKey) -> bool {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.fired = true;
                true
            }
            None => false,
        }
    }

    /// Deterministic dump for differential tests: sorted instantiation keys.
    pub fn sorted_keys(&self) -> Vec<InstKey> {
        let mut v: Vec<InstKey> = self.entries.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{SymbolId, Value, Wme};

    fn inst(prod: u32, tags: &[u64]) -> Instantiation {
        Instantiation {
            prod: ProdId(prod),
            wmes: tags
                .iter()
                .map(|&t| Wme::new(SymbolId(1), vec![Value::Int(t as i64)], t))
                .collect(),
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut cs = ConflictSet::new();
        cs.apply(CsChange::Insert(inst(0, &[1, 2])));
        assert_eq!(cs.len(), 1);
        cs.apply(CsChange::Remove(inst(0, &[1, 2])));
        assert!(cs.is_empty());
    }

    #[test]
    fn refraction() {
        let mut cs = ConflictSet::new();
        let i = inst(0, &[1]);
        cs.apply(CsChange::Insert(i.clone()));
        assert_eq!(cs.candidates().count(), 1);
        cs.mark_fired(&i);
        assert_eq!(
            cs.candidates().count(),
            0,
            "fired instantiation not a candidate"
        );
        assert_eq!(cs.len(), 1, "but it remains in the set");
        // Retraction and re-derivation resets refraction.
        cs.apply(CsChange::Remove(i.clone()));
        cs.apply(CsChange::Insert(i));
        assert_eq!(cs.candidates().count(), 1);
    }

    #[test]
    fn distinct_productions_same_tags() {
        let mut cs = ConflictSet::new();
        cs.apply(CsChange::Insert(inst(0, &[1])));
        cs.apply(CsChange::Insert(inst(1, &[1])));
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn sorted_keys_deterministic() {
        let mut cs = ConflictSet::new();
        cs.apply(CsChange::Insert(inst(1, &[3])));
        cs.apply(CsChange::Insert(inst(0, &[9])));
        let keys = cs.sorted_keys();
        assert_eq!(keys[0].0, ProdId(0));
        assert_eq!(keys[1].0, ProdId(1));
    }
}
