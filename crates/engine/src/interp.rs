//! The recognize-act interpreter — the paper's control process.

use crate::act::{self, ActStats, ActStrategy};
use crate::cr;
use crate::cs::ConflictSet;
use crate::rhs::{self, RhsEffect, RhsProgram};
use crate::wm::WorkingMemory;
use ops5::{
    ActFootprints, ChangeBatch, Instantiation, Matcher, Ops5Error, PhaseNanos, ProdId, Program,
    Result, Sign, SymbolId, Value, WmeChange, WmeRef,
};
use rete::network::Network;
use std::sync::Arc;
use std::time::Instant;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` action executed.
    Halt,
    /// No satisfied, unfired production remained.
    Quiescent,
    /// The caller's cycle limit was reached.
    CycleLimit,
    /// The engine's lifetime cycle budget ([`EngineLimits::max_cycles`])
    /// was exhausted.
    Budget,
}

/// Resource limits enforced by the engine, for hosts that multiplex many
/// engines (the serve layer's per-session limits).
///
/// Both limits default to unlimited. `max_wm` bounds the number of live
/// WMEs accepted through the checked ingestion paths ([`Engine::make_wme`],
/// [`Engine::stage`]); RHS-produced elements are not limited, so a firing
/// never fails halfway. `max_cycles` is a lifetime budget across all runs:
/// once `cycles()` reaches it, [`Engine::run`] stops with
/// [`StopReason::Budget`] and [`Engine::step`] refuses to fire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineLimits {
    /// Maximum live WMEs accepted through checked ingestion.
    pub max_wm: Option<usize>,
    /// Lifetime recognize-act cycle budget.
    pub max_cycles: Option<u64>,
}

/// Summary of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    pub cycles: u64,
    pub reason: StopReason,
}

/// The OPS5 interpreter: working memory + conflict set + a match engine.
pub struct Engine {
    pub prog: Program,
    net: Arc<Network>,
    pub(crate) matcher: Box<dyn Matcher>,
    pub(crate) wm: WorkingMemory,
    pub(crate) cs: ConflictSet,
    rhs: Vec<RhsProgram>,
    pub(crate) halted: bool,
    pub(crate) cycles: u64,
    pub(crate) fired_log: Vec<(ProdId, Vec<u64>)>,
    pub(crate) output: Vec<String>,
    pub(crate) line: String,
    /// Echo `write` output to stdout as it is produced.
    pub echo_writes: bool,
    /// Keep the per-cycle fired log (disable for long benchmark runs).
    pub keep_fired_log: bool,
    /// Resource limits (see [`EngineLimits`]); unlimited by default.
    pub limits: EngineLimits,
    /// Changes staged by [`stage`](Self::stage)/[`stage_retract`]
    /// (Self::stage_retract) awaiting the next flush.
    pub(crate) staged: ChangeBatch,
    /// The durability change log (see [`crate::state`]); `None` (the
    /// default) costs one branch per mutation and zero allocation.
    pub(crate) journal: Option<crate::state::ChangeLog>,
    /// Observability instruments; `None` (the default) costs one branch per
    /// step and zero allocation.
    obs: Option<EngineObs>,
    /// Act-phase strategy (see [`ActStrategy`]); `Serial` by default.
    act: ActStrategy,
    /// Always-on act-phase counters (see [`ActStats`]).
    act_stats: ActStats,
    /// Static act footprints, computed lazily on the first switch to
    /// [`ActStrategy::Parallel`].
    footprints: Option<Arc<ActFootprints>>,
}

/// The engine's slice of the observability layer: a per-engine registry
/// (also handed to the matcher) plus per-cycle phase-latency histograms.
struct EngineObs {
    registry: Arc<obs::Registry>,
    match_ns: Arc<obs::Histogram>,
    resolve_ns: Arc<obs::Histogram>,
    act_ns: Arc<obs::Histogram>,
    firings: Arc<obs::Counter>,
    /// Firings per act group (parallel act; serial records nothing).
    act_group_size: Arc<obs::Histogram>,
    /// Group extensions refused by the interference checks.
    act_rejects: Arc<obs::Counter>,
    last_phase: Option<PhaseNanos>,
}

impl EngineObs {
    fn observe(&mut self, p: PhaseNanos) {
        self.match_ns.record(p.match_ns);
        self.resolve_ns.record(p.resolve_ns);
        self.act_ns.record(p.act_ns);
        self.last_phase = Some(p);
    }
}

impl Engine {
    /// The one low-level constructor: compile the network with explicit
    /// options, install the matcher the factory builds. Crate-internal —
    /// every caller goes through [`crate::builder::EngineBuilder`], the
    /// single public construction path (its `custom_matcher` hook covers
    /// matchers this crate does not know about).
    pub(crate) fn with_matcher(
        prog: Program,
        options: rete::NetworkOptions,
        make_matcher: impl FnOnce(Arc<Network>) -> Box<dyn Matcher>,
    ) -> Result<Engine> {
        let net = Arc::new(Network::compile_with(&prog, options)?);
        let classes = prog.classes.clone();
        let mut rhs = Vec::with_capacity(prog.productions.len());
        for p in &prog.productions {
            rhs.push(rhs::compile_rhs(p, &prog.symbols, |c| classes.arity(c))?);
        }
        Ok(Engine {
            matcher: make_matcher(net.clone()),
            net,
            prog,
            wm: WorkingMemory::new(),
            cs: ConflictSet::new(),
            rhs,
            halted: false,
            cycles: 0,
            fired_log: Vec::new(),
            output: Vec::new(),
            line: String::new(),
            echo_writes: false,
            keep_fired_log: true,
            limits: EngineLimits::default(),
            staged: ChangeBatch::new(),
            journal: None,
            obs: None,
            act: ActStrategy::Serial,
            act_stats: ActStats::default(),
            footprints: None,
        })
    }

    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Turn on the observability layer: creates this engine's metrics
    /// registry, hands it to the matcher (which starts per-node profiling),
    /// and begins recording per-cycle phase latencies. Idempotent; a
    /// disabled [`obs::ObsConfig`] is a no-op, keeping the zero-overhead
    /// default path.
    pub fn enable_obs(&mut self, cfg: obs::ObsConfig) {
        if !cfg.enabled || self.obs.is_some() {
            return;
        }
        let registry = Arc::new(obs::Registry::new());
        self.matcher.enable_obs(&registry);
        self.obs = Some(EngineObs {
            match_ns: registry.histogram("engine_match_ns", vec![]),
            resolve_ns: registry.histogram("engine_resolve_ns", vec![]),
            act_ns: registry.histogram("engine_act_ns", vec![]),
            firings: registry.counter("engine_firings_total", vec![]),
            act_group_size: registry.histogram("engine_act_group_size", vec![]),
            act_rejects: registry.counter("act_interference_rejects", vec![]),
            registry,
            last_phase: None,
        });
    }

    /// The engine's metrics registry, if observability is enabled.
    pub fn obs_registry(&self) -> Option<&Arc<obs::Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// The matcher's per-join-node activation/scan profile, if profiling.
    pub fn node_profile(&self) -> Option<Arc<obs::NodeProfile>> {
        self.matcher.node_profile()
    }

    /// Phase timings of the most recent [`step`](Self::step), if profiling.
    pub fn last_phase(&self) -> Option<PhaseNanos> {
        self.obs.as_ref().and_then(|o| o.last_phase)
    }

    pub fn matcher(&self) -> &dyn Matcher {
        self.matcher.as_ref()
    }

    pub fn match_stats(&self) -> ops5::MatchStats {
        self.matcher.stats()
    }

    pub fn reset_match_stats(&mut self) {
        self.matcher.reset_stats();
    }

    pub fn wm(&self) -> &WorkingMemory {
        &self.wm
    }

    pub fn conflict_set(&self) -> &ConflictSet {
        &self.cs
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The act-phase strategy this engine runs with.
    pub fn act_strategy(&self) -> ActStrategy {
        self.act
    }

    /// Switches the act-phase strategy. Safe at any point between runs —
    /// `Parallel` is serial-equivalent by construction, so mixing
    /// strategies over an engine's lifetime changes nothing observable.
    pub fn set_act_strategy(&mut self, act: ActStrategy) {
        if matches!(act, ActStrategy::Parallel { .. }) && self.footprints.is_none() {
            self.footprints = Some(Arc::new(ActFootprints::new(&self.prog)));
        }
        self.act = act;
    }

    /// Always-on act-phase counters.
    pub fn act_stats(&self) -> ActStats {
        self.act_stats
    }

    pub fn fired_log(&self) -> &[(ProdId, Vec<u64>)] {
        &self.fired_log
    }

    /// Captured `write` output, one string per line.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Interns a symbol and wraps it as a value.
    pub fn sym(&mut self, name: &str) -> Value {
        Value::Sym(self.prog.symbols.intern(name))
    }

    fn check_wm_limit(&self) -> Result<()> {
        if let Some(max) = self.limits.max_wm {
            if self.wm.len() >= max {
                return Err(Ops5Error::Runtime(format!(
                    "working-memory limit reached ({max} elements)"
                )));
            }
        }
        Ok(())
    }

    /// Creates a WME from attribute-value pairs and feeds it to the matcher
    /// (the OPS5 `make` top-level / startup form).
    pub fn make_wme(&mut self, class: &str, sets: &[(&str, Value)]) -> Result<WmeRef> {
        self.check_wm_limit()?;
        let class_sym = self.prog.symbols.intern(class);
        let mut resolved = Vec::with_capacity(sets.len());
        for (attr, v) in sets {
            let a = self.prog.symbols.intern(attr);
            let f = self.prog.classes.resolve(class_sym, a)?;
            resolved.push((f, *v));
        }
        let arity = self.prog.classes.arity(class_sym) as usize;
        let mut fields = vec![Value::NIL; arity];
        for (f, v) in resolved {
            let f = f as usize;
            if f >= fields.len() {
                fields.resize(f + 1, Value::NIL);
            }
            fields[f] = v;
        }
        Ok(self.insert(class_sym, fields))
    }

    /// Loads the program's top-level `(make ...)` startup forms into
    /// working memory, in source order. Call once before `run`.
    pub fn load_startup(&mut self) -> Result<()> {
        let startup = self.prog.startup.clone();
        for m in &startup {
            let arity = self.prog.classes.arity(m.class) as usize;
            let mut fields = vec![Value::NIL; arity];
            for (f, v) in &m.sets {
                let f = *f as usize;
                if f >= fields.len() {
                    fields.resize(f + 1, Value::NIL);
                }
                fields[f] = *v;
            }
            self.insert(m.class, fields);
        }
        Ok(())
    }

    /// Creates a WME from pre-resolved field values.
    pub fn insert(&mut self, class: SymbolId, fields: Vec<Value>) -> WmeRef {
        let w = self.wm.make(class, fields);
        self.matcher.submit(&ChangeBatch::single(WmeChange {
            sign: Sign::Plus,
            wme: w.clone(),
        }));
        w
    }

    /// Removes a live WME.
    pub fn retract(&mut self, wme: &WmeRef) -> Result<()> {
        match self.wm.remove(wme.timetag) {
            Some(w) => {
                self.matcher.submit(&ChangeBatch::single(WmeChange {
                    sign: Sign::Minus,
                    wme: w,
                }));
                Ok(())
            }
            None => Err(Ops5Error::Runtime(format!(
                "remove of non-live wme (timetag {})",
                wme.timetag
            ))),
        }
    }

    /// Stages a WME: it enters working memory (with a timetag) immediately,
    /// but the matcher does not see it until the next flush — the serving
    /// layer's ingestion path, which coalesces a session's pending changes
    /// into one [`ChangeBatch`] per run. Checked against
    /// [`EngineLimits::max_wm`].
    pub fn stage(&mut self, class: SymbolId, fields: Vec<Value>) -> Result<WmeRef> {
        self.check_wm_limit()?;
        let w = self.wm.make(class, fields);
        self.staged.add(w.clone());
        if let Some(j) = self.journal.as_mut() {
            j.push(crate::state::LogRecord::stage_of(&w, &self.prog.symbols));
        }
        Ok(w)
    }

    /// Stages the retraction of a live WME by timetag. A retract of an
    /// element still staged annihilates inside the pending batch and the
    /// matcher never sees either change.
    pub fn stage_retract(&mut self, timetag: u64) -> Result<()> {
        match self.wm.remove(timetag) {
            Some(w) => {
                self.staged.delete(w);
                if let Some(j) = self.journal.as_mut() {
                    j.push(crate::state::LogRecord::StageRetract { tag: timetag });
                }
                Ok(())
            }
            None => Err(Ops5Error::Runtime(format!(
                "remove of non-live wme (timetag {timetag})"
            ))),
        }
    }

    /// Changes currently staged and not yet flushed to the matcher.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Ships the staged batch to the matcher (one `submit` for everything
    /// pending). Returns the number of changes submitted. Called
    /// automatically by [`step`](Self::step) and [`settle`](Self::settle).
    pub fn flush_staged(&mut self) -> usize {
        if self.staged.is_empty() {
            // An annihilated-to-empty batch still has conjugate pairs to
            // account for; drop them silently (nothing to match).
            self.staged.clear();
            return 0;
        }
        let n = self.staged.len();
        self.matcher.submit(&self.staged);
        self.staged.clear();
        n
    }

    /// Completes the match phase *without firing anything*: flushes staged
    /// changes, blocks for matcher quiescence, and folds the conflict-set
    /// deltas in. The non-blocking observation API — after `settle`,
    /// [`conflict_set`](Self::conflict_set) reflects every submitted change
    /// while working memory and the cycle count stay untouched.
    ///
    /// Returns the match statistics accumulated since the previous quiesce.
    pub fn settle(&mut self) -> ops5::MatchStats {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        self.flush_staged();
        let report = self.matcher.quiesce();
        self.cs.apply_all(report.cs_changes);
        if let (Some(t0), Some(o)) = (t0, self.obs.as_mut()) {
            o.match_ns.record(t0.elapsed().as_nanos() as u64);
        }
        report.stats_delta
    }

    /// True once the lifetime cycle budget is exhausted.
    pub fn budget_exhausted(&self) -> bool {
        self.limits.max_cycles.is_some_and(|m| self.cycles >= m)
    }

    /// Match + conflict-resolve + fire one production. Returns the fired
    /// instantiation, or `None` at quiescence (or once halted / out of
    /// cycle budget).
    pub fn step(&mut self) -> Result<Option<Instantiation>> {
        if self.halted || self.budget_exhausted() {
            return Ok(None);
        }
        // Phase clock marks (all `None` unless observability is enabled).
        let t_start = self.obs.as_ref().map(|_| Instant::now());
        self.flush_staged();
        let report = self.matcher.quiesce();
        self.cs.apply_all(report.cs_changes);
        self.act_stats.match_passes += 1;
        let t_match = t_start.map(|_| Instant::now());
        let winner = cr::select(
            self.prog.strategy,
            self.cs.candidates(),
            &self.prog.productions,
        );
        if let Some(w) = &winner {
            self.record_firing(w);
            self.act_stats.groups += 1;
        }
        let t_resolve = t_start.map(|_| Instant::now());
        let fire_result = match &winner {
            Some(w) => self.fire(w),
            None => Ok(()),
        };
        if let (Some(t0), Some(t1), Some(t2)) = (t_start, t_match, t_resolve) {
            let phase = PhaseNanos {
                match_ns: (t1 - t0).as_nanos() as u64,
                resolve_ns: (t2 - t1).as_nanos() as u64,
                act_ns: t2.elapsed().as_nanos() as u64,
            };
            if let Some(o) = self.obs.as_mut() {
                o.observe(phase);
                if winner.is_some() {
                    o.firings.inc();
                }
            }
        }
        fire_result?;
        Ok(winner)
    }

    /// Refraction-marks, counts, logs, and journals one firing — everything
    /// about a firing except its effects. Shared by the serial and grouped
    /// act paths; called in conflict-set order, so the fired log and the
    /// durability journal are identical under both.
    fn record_firing(&mut self, w: &Instantiation) {
        self.cs.mark_fired(w);
        self.cycles += 1;
        self.act_stats.fired += 1;
        if self.keep_fired_log {
            self.fired_log
                .push((w.prod, w.wmes.iter().map(|w| w.timetag).collect()));
        }
        if let Some(j) = self.journal.as_mut() {
            j.push(crate::state::LogRecord::Fire {
                prod: self.prog.prod_name(w.prod).to_string(),
                tags: w.wmes.iter().map(|w| w.timetag).collect(),
            });
        }
    }

    fn fire(&mut self, inst: &Instantiation) -> Result<()> {
        let code = self.rhs[inst.prod.index()].clone();
        let wm = &mut self.wm;
        let line = &mut self.line;
        let output = &mut self.output;
        let echo = self.echo_writes;
        let mut err: Option<Ops5Error> = None;
        // One firing ships one batch: RHS effects accumulate here and reach
        // the matcher in a single `submit`, so a `modify`'s delete/add pair
        // of an untouched WME annihilates before the network sees tokens and
        // the matcher walks each class's alpha chain once per firing.
        let mut batch = ChangeBatch::new();

        let halted = rhs::execute(&code, inst, &mut self.prog.symbols, |effect| {
            if err.is_some() {
                return;
            }
            match effect {
                RhsEffect::Make { class, fields } => {
                    let w = wm.make(class, fields);
                    batch.add(w);
                }
                RhsEffect::Remove { wme } => match wm.remove(wme.timetag) {
                    Some(w) => batch.delete(w),
                    None => {
                        err = Some(Ops5Error::Runtime(format!(
                            "RHS removed wme {} twice",
                            wme.timetag
                        )))
                    }
                },
                RhsEffect::Write(s) => {
                    if !line.is_empty() {
                        line.push(' ');
                    }
                    line.push_str(&s);
                }
                RhsEffect::Crlf => {
                    if echo {
                        println!("{line}");
                    }
                    output.push(std::mem::take(line));
                }
            }
        })?;
        // Working memory already reflects every effect executed before an
        // error, so the batch still goes out even on the error path.
        if !batch.is_empty() {
            self.matcher.submit(&batch);
            self.act_stats.act_submits += 1;
        }
        if let Some(e) = err {
            return Err(e);
        }
        if halted {
            self.halted = true;
        }
        Ok(())
    }

    /// One parallel act phase: match, select a non-interfering group of at
    /// most `cap` instantiations, evaluate their RHSes concurrently, and
    /// merge the effects in conflict-set order into a single matcher
    /// submission. Returns the number of firings (0 at quiescence).
    ///
    /// Only called from [`run`](Self::run), which has already checked the
    /// halt flag and the cycle budget and has folded both into `cap`.
    fn step_group(&mut self, cap: usize) -> Result<u64> {
        let t_start = self.obs.as_ref().map(|_| Instant::now());
        self.flush_staged();
        let report = self.matcher.quiesce();
        self.cs.apply_all(report.cs_changes);
        self.act_stats.match_passes += 1;
        let t_match = t_start.map(|_| Instant::now());

        let fps = match &self.footprints {
            Some(f) => f.clone(),
            None => {
                let f = Arc::new(ActFootprints::new(&self.prog));
                self.footprints = Some(f.clone());
                f
            }
        };
        let rejects_before = self.act_stats.interference_rejects;
        let group = act::select_group(
            self.prog.strategy,
            self.cs.candidates(),
            &self.prog.productions,
            &fps,
            cap,
            &mut self.act_stats,
        );
        let t_resolve = t_start.map(|_| Instant::now());
        let reject_delta = self.act_stats.interference_rejects - rejects_before;
        if let Some(o) = self.obs.as_mut() {
            if reject_delta > 0 {
                o.act_rejects.add(reject_delta);
            }
            if !group.is_empty() {
                o.act_group_size.record(group.len() as u64);
            }
        }

        let mut fired = 0u64;
        let mut fatal: Option<Ops5Error> = None;
        let mut batch = ChangeBatch::new();
        if !group.is_empty() {
            self.act_stats.groups += 1;
            // Pre-intern every gensym the group draws, in conflict-set
            // order, so the symbol table advances exactly as a serial run
            // would; RHS evaluation itself then only reads the table.
            let pre: Vec<Vec<SymbolId>> = group
                .iter()
                .map(|w| {
                    let n = fps.prods[w.prod.index()].gensyms;
                    (0..n).map(|_| self.prog.symbols.gensym()).collect()
                })
                .collect();
            let evals = act::eval_group(&self.rhs, &group, &pre, &self.prog.symbols);

            // Merge in conflict-set order: timetags, refraction marks, the
            // fired log, the journal, and `write` output land exactly as k
            // serial firings would — but the matcher sees one batch.
            'members: for (w, (fx, res)) in group.iter().zip(evals) {
                self.record_firing(w);
                fired += 1;
                for effect in fx {
                    match effect {
                        RhsEffect::Make { class, fields } => {
                            let made = self.wm.make(class, fields);
                            batch.add(made);
                        }
                        RhsEffect::Remove { wme } => match self.wm.remove(wme.timetag) {
                            Some(dead) => batch.delete(dead),
                            None => {
                                fatal = Some(Ops5Error::Runtime(format!(
                                    "RHS removed wme {} twice",
                                    wme.timetag
                                )));
                                break 'members;
                            }
                        },
                        RhsEffect::Write(s) => {
                            if !self.line.is_empty() {
                                self.line.push(' ');
                            }
                            self.line.push_str(&s);
                        }
                        RhsEffect::Crlf => {
                            if self.echo_writes {
                                println!("{}", self.line);
                            }
                            self.output.push(std::mem::take(&mut self.line));
                        }
                    }
                }
                match res {
                    Err(e) => {
                        fatal = Some(e);
                        break 'members;
                    }
                    Ok(true) => {
                        self.halted = true;
                        break 'members;
                    }
                    Ok(false) => {}
                }
            }
        }
        // Working memory already reflects every effect applied before an
        // error, so the batch still goes out even on the error path.
        if !batch.is_empty() {
            self.matcher.submit(&batch);
            self.act_stats.act_submits += 1;
        }
        if let (Some(t0), Some(t1), Some(t2)) = (t_start, t_match, t_resolve) {
            let phase = PhaseNanos {
                match_ns: (t1 - t0).as_nanos() as u64,
                resolve_ns: (t2 - t1).as_nanos() as u64,
                act_ns: t2.elapsed().as_nanos() as u64,
            };
            if let Some(o) = self.obs.as_mut() {
                o.observe(phase);
                if fired > 0 {
                    o.firings.add(fired);
                }
            }
        }
        if let Some(e) = fatal {
            return Err(e);
        }
        Ok(fired)
    }

    /// Runs until halt, quiescence, or the cycle limit.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult> {
        let start = self.cycles;
        loop {
            if self.halted {
                self.finish_output();
                return Ok(RunResult {
                    cycles: self.cycles - start,
                    reason: StopReason::Halt,
                });
            }
            if self.budget_exhausted() {
                self.finish_output();
                return Ok(RunResult {
                    cycles: self.cycles - start,
                    reason: StopReason::Budget,
                });
            }
            if self.cycles - start >= max_cycles {
                self.finish_output();
                return Ok(RunResult {
                    cycles: self.cycles - start,
                    reason: StopReason::CycleLimit,
                });
            }
            let fired = match self.act {
                ActStrategy::Serial => self.step()?.is_some(),
                ActStrategy::Parallel { max_group } => {
                    // A k-firing group counts as k cycles, so the group cap
                    // folds in both the caller's limit and the lifetime
                    // budget — `RUN n` stops on the same cycle and with the
                    // same reason under either strategy.
                    let mut cap = max_group.max(1) as u64;
                    cap = cap.min(max_cycles - (self.cycles - start));
                    if let Some(m) = self.limits.max_cycles {
                        cap = cap.min(m.saturating_sub(self.cycles));
                    }
                    self.step_group(cap as usize)? > 0
                }
            };
            if !fired {
                self.finish_output();
                return Ok(RunResult {
                    cycles: self.cycles - start,
                    reason: StopReason::Quiescent,
                });
            }
        }
    }

    fn finish_output(&mut self) {
        if !self.line.is_empty() {
            if self.echo_writes {
                println!("{}", self.line);
            }
            self.output.push(std::mem::take(&mut self.line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::Value;

    use crate::builder::EngineBuilder;

    fn engines(src: &str) -> Vec<Engine> {
        vec![
            EngineBuilder::from_source(src)
                .unwrap()
                .vs1()
                .build()
                .unwrap(),
            EngineBuilder::from_source(src)
                .unwrap()
                .vs2()
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn figure_2_1_scenario() {
        // The paper's sample production, end to end.
        let src = "(p find-colored-block
                     (goal ^type find-block ^color <c>)
                     (block ^id <i> ^color <c> ^selected no)
                     -->
                     (modify 2 ^selected yes))";
        for mut e in engines(src) {
            let red = e.sym("red");
            let blue = e.sym("blue");
            let no = e.sym("no");
            let fb = e.sym("find-block");
            e.make_wme("goal", &[("type", fb), ("color", red)]).unwrap();
            e.make_wme(
                "block",
                &[("id", Value::Int(1)), ("color", blue), ("selected", no)],
            )
            .unwrap();
            e.make_wme(
                "block",
                &[("id", Value::Int(2)), ("color", red), ("selected", no)],
            )
            .unwrap();
            let r = e.run(10).unwrap();
            assert_eq!(r.cycles, 1, "exactly one block matches");
            assert_eq!(r.reason, StopReason::Quiescent);
            // Block 2 is now selected=yes.
            let block = e.prog.symbols.get("block").unwrap();
            let yes = e.prog.symbols.get("yes").unwrap();
            let blocks = e.wm().of_class(block);
            let selected: Vec<_> = blocks
                .iter()
                .filter(|w| w.field(2) == Value::Sym(yes))
                .collect();
            assert_eq!(selected.len(), 1);
            assert_eq!(selected[0].field(0), Value::Int(2));
        }
    }

    #[test]
    fn startup_forms_load() {
        let src = "(literalize c n limit)
                   (make c ^n 0 ^limit 3)
                   (p count (c ^n <n> ^limit > <n>) --> (modify 1 ^n (compute <n> + 1)))
                   (p done (c ^n <n> ^limit <n>) --> (halt))";
        for mut e in engines(src) {
            e.load_startup().unwrap();
            let r = e.run(50).unwrap();
            assert_eq!(r.reason, StopReason::Halt);
            assert_eq!(r.cycles, 4);
        }
    }

    #[test]
    fn counter_loop_halts() {
        let src = "(p count
                     (counter ^n <n> ^limit <l>)
                     (counter ^n < <l>)
                     -->
                     (modify 1 ^n (compute <n> + 1)))
                   (p done
                     (counter ^n <n> ^limit <n>)
                     -->
                     (write finished <n> (crlf))
                     (halt))";
        for mut e in engines(src) {
            e.make_wme("counter", &[("n", Value::Int(0)), ("limit", Value::Int(5))])
                .unwrap();
            let r = e.run(100).unwrap();
            assert_eq!(r.reason, StopReason::Halt);
            assert_eq!(r.cycles, 6, "five increments plus the halt firing");
            assert_eq!(e.output(), &["finished 5".to_string()]);
        }
    }

    #[test]
    fn refraction_prevents_infinite_refire() {
        // A production that does not change WM fires once, not forever.
        let src = "(p noop (a ^x 1) --> (write hi (crlf)))";
        for mut e in engines(src) {
            e.make_wme("a", &[("x", Value::Int(1))]).unwrap();
            let r = e.run(50).unwrap();
            assert_eq!(r.cycles, 1);
            assert_eq!(r.reason, StopReason::Quiescent);
        }
    }

    #[test]
    fn recency_orders_firing() {
        let src = "(p rule (item ^v <v>) --> (write <v>) (remove 1))";
        for mut e in engines(src) {
            for i in 0..3 {
                e.make_wme("item", &[("v", Value::Int(i))]).unwrap();
            }
            let r = e.run(10).unwrap();
            assert_eq!(r.cycles, 3);
            // LEX recency: most recent first.
            assert_eq!(e.output(), &["2 1 0".to_string()]);
        }
    }

    #[test]
    fn cycle_limit_respected() {
        let src = "(p spin (a ^x <v>) --> (modify 1 ^x (compute <v> + 1)))";
        for mut e in engines(src) {
            e.make_wme("a", &[("x", Value::Int(0))]).unwrap();
            let r = e.run(7).unwrap();
            assert_eq!(r.reason, StopReason::CycleLimit);
            assert_eq!(r.cycles, 7);
        }
    }

    #[test]
    fn negated_ce_program() {
        // Fire only while no inhibitor exists; the firing creates the
        // inhibitor, so it fires exactly once.
        let src = "(p once (a ^x <v>) - (done ^for <v>) --> (make done ^for <v>))";
        for mut e in engines(src) {
            e.make_wme("a", &[("x", Value::Int(1))]).unwrap();
            e.make_wme("a", &[("x", Value::Int(2))]).unwrap();
            let r = e.run(10).unwrap();
            assert_eq!(r.cycles, 2, "once per distinct value");
        }
    }

    #[test]
    fn retract_api() {
        let src = "(p q (a ^x 1) --> (write fired (crlf)))";
        for mut e in engines(src) {
            let w = e.make_wme("a", &[("x", Value::Int(1))]).unwrap();
            e.retract(&w).unwrap();
            let r = e.run(10).unwrap();
            assert_eq!(r.cycles, 0, "retracted before it could fire");
            assert!(e.retract(&w).is_err(), "double retract errors");
        }
    }

    #[test]
    fn staged_changes_invisible_until_settle() {
        let src = "(p q (a ^x 1) --> (write fired (crlf)))";
        for mut e in engines(src) {
            let a = e.prog.symbols.intern("a");
            let x1 = vec![Value::Int(1)];
            e.stage(a, x1.clone()).unwrap();
            assert_eq!(e.staged_len(), 1);
            // The WME is live in WM but the conflict set is stale until a
            // settle (or step) flushes the staged batch.
            assert_eq!(e.wm().len(), 1);
            assert_eq!(e.conflict_set().len(), 0);
            e.settle();
            assert_eq!(e.staged_len(), 0);
            assert_eq!(e.conflict_set().len(), 1);
            assert_eq!(e.cycles(), 0, "settle must not fire");
            // A staged add + retract of the same element annihilates; the
            // conflict set still empties because the first add went through.
            let w = e.stage(a, x1.clone()).unwrap();
            e.stage_retract(w.timetag).unwrap();
            assert_eq!(e.staged_len(), 0);
            let r = e.run(10).unwrap();
            assert_eq!(r.cycles, 1, "only the settled element fires");
        }
    }

    #[test]
    fn wm_limit_enforced_on_checked_ingestion() {
        let src = "(p q (a ^x 1) --> (halt))";
        for mut e in engines(src) {
            e.limits.max_wm = Some(2);
            e.make_wme("a", &[("x", Value::Int(0))]).unwrap();
            let a = e.prog.symbols.intern("a");
            e.stage(a, vec![Value::Int(0)]).unwrap();
            assert!(e.make_wme("a", &[("x", Value::Int(0))]).is_err());
            assert!(e.stage(a, vec![Value::Int(0)]).is_err());
        }
    }

    #[test]
    fn cycle_budget_stops_run() {
        let src = "(p spin (a ^x <v>) --> (modify 1 ^x (compute <v> + 1)))";
        for mut e in engines(src) {
            e.limits.max_cycles = Some(3);
            e.make_wme("a", &[("x", Value::Int(0))]).unwrap();
            let r = e.run(100).unwrap();
            assert_eq!(r.reason, StopReason::Budget);
            assert_eq!(r.cycles, 3);
            assert!(e.budget_exhausted());
            assert!(e.step().unwrap().is_none(), "budget blocks further steps");
            // Raising the budget resumes the engine where it stopped.
            e.limits.max_cycles = Some(5);
            let r = e.run(100).unwrap();
            assert_eq!(r.cycles, 2);
            assert_eq!(r.reason, StopReason::Budget);
        }
    }

    #[test]
    fn mea_strategy_first_ce_recency() {
        let src = "(strategy mea)
                   (p pick (goal ^id <g>) (item ^v <v>) --> (write <g> <v>) (remove 2))";
        for mut e in engines(src) {
            e.make_wme("goal", &[("id", Value::Int(1))]).unwrap();
            e.make_wme("item", &[("v", Value::Int(10))]).unwrap();
            e.make_wme("goal", &[("id", Value::Int(2))]).unwrap();
            let r = e.run(10).unwrap();
            // MEA: goal 2 (more recent first CE) wins both firings.
            assert_eq!(r.cycles, 1);
            assert_eq!(e.output()[0], "2 10");
        }
    }
}
