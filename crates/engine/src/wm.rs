//! Working memory: the set of live WMEs plus the timetag clock.

use ops5::{SymbolId, Value, Wme, WmeRef};
use std::collections::HashMap;

/// The database of temporary assertions (§2.1).
///
/// WMEs are immutable; `modify` is performed by the interpreter as a remove
/// plus a make. The timetag counter is the OPS5 recency clock used by
/// conflict resolution.
#[derive(Default)]
pub struct WorkingMemory {
    live: HashMap<u64, WmeRef>,
    next_timetag: u64,
}

impl WorkingMemory {
    pub fn new() -> Self {
        WorkingMemory {
            live: HashMap::new(),
            next_timetag: 1,
        }
    }

    /// Creates a WME with the next timetag and registers it live.
    pub fn make(&mut self, class: SymbolId, fields: Vec<Value>) -> WmeRef {
        let tag = self.next_timetag;
        self.next_timetag += 1;
        let w = Wme::new(class, fields, tag);
        self.live.insert(tag, w.clone());
        w
    }

    /// Removes a WME by timetag; `None` if it is not live (double remove).
    pub fn remove(&mut self, timetag: u64) -> Option<WmeRef> {
        self.live.remove(&timetag)
    }

    pub fn is_live(&self, timetag: u64) -> bool {
        self.live.contains_key(&timetag)
    }

    pub fn get(&self, timetag: u64) -> Option<&WmeRef> {
        self.live.get(&timetag)
    }

    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterates live WMEs (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &WmeRef> {
        self.live.values()
    }

    /// Live WMEs of one class, sorted by timetag (deterministic dumps).
    pub fn of_class(&self, class: SymbolId) -> Vec<WmeRef> {
        let mut v: Vec<WmeRef> = self
            .live
            .values()
            .filter(|w| w.class == class)
            .cloned()
            .collect();
        v.sort_by_key(|w| w.timetag);
        v
    }

    /// Current value of the timetag clock (next tag to be assigned).
    pub fn clock(&self) -> u64 {
        self.next_timetag
    }

    /// Re-registers a WME under its recorded timetag (snapshot restore).
    /// Advances the clock past the tag; `false` if the tag is already live.
    pub fn restore_insert(&mut self, w: WmeRef) -> bool {
        if self.live.contains_key(&w.timetag) {
            return false;
        }
        self.next_timetag = self.next_timetag.max(w.timetag + 1);
        self.live.insert(w.timetag, w);
        true
    }

    /// Forces the clock forward to `clock` (snapshot restore; retracted
    /// tags must not be reissued). Never moves the clock backwards.
    pub fn set_clock(&mut self, clock: u64) {
        self.next_timetag = self.next_timetag.max(clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::SymbolTable;

    #[test]
    fn timetags_increase() {
        let mut syms = SymbolTable::new();
        let c = syms.intern("a");
        let mut wm = WorkingMemory::new();
        let w1 = wm.make(c, vec![Value::Int(1)]);
        let w2 = wm.make(c, vec![Value::Int(2)]);
        assert!(w2.timetag > w1.timetag);
        assert_eq!(wm.len(), 2);
    }

    #[test]
    fn remove_is_idempotent_failure() {
        let mut syms = SymbolTable::new();
        let c = syms.intern("a");
        let mut wm = WorkingMemory::new();
        let w = wm.make(c, vec![]);
        assert!(wm.remove(w.timetag).is_some());
        assert!(wm.remove(w.timetag).is_none());
        assert!(!wm.is_live(w.timetag));
    }

    #[test]
    fn of_class_filters_and_sorts() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let mut wm = WorkingMemory::new();
        wm.make(b, vec![]);
        wm.make(a, vec![Value::Int(2)]);
        wm.make(a, vec![Value::Int(1)]);
        let v = wm.of_class(a);
        assert_eq!(v.len(), 2);
        assert!(v[0].timetag < v[1].timetag);
    }
}
