//! RHS threaded code (§3.3).
//!
//! Production right-hand sides are compiled once, at load time, into a flat
//! vector of threaded-code instructions that a small stack machine interprets
//! at firing time. The paper compiles RHSs to threaded code rather than
//! machine code because "RHS evaluation is not a bottleneck"; we mirror the
//! design: LHS variable references are pre-resolved to (condition-element,
//! field) pairs, attribute names to field indices, `bind` variables to local
//! slots.

use ops5::ast::{Action, Production, RhsExpr, WriteItem};
use ops5::value::ArithOp;
use ops5::{Instantiation, Ops5Error, Result, SymbolId, SymbolTable, Value, WmeRef};
use rete::fxhash::FxHashMap;

/// One threaded-code instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push a constant.
    PushConst(Value),
    /// Push `instantiation.wmes[ce].field(field)` (LHS binding).
    PushBinding { ce: u16, field: u16 },
    /// Push a `bind` local.
    PushLocal(u16),
    /// Pop two, push the arithmetic result (`a op b` with `a` pushed first).
    Arith(ArithOp),
    /// Start building a fresh WME of `class` (all fields nil).
    BeginWme { class: SymbolId, arity: u16 },
    /// Start from a copy of the CE's matched WME (modify).
    BeginFromCe { ce: u16, arity: u16 },
    /// Pop one value into the WME buffer at `field`.
    SetField(u16),
    /// Emit the buffer as a `make`.
    EmitMake,
    /// Emit delete-of-old + add-of-buffer (modify ≡ delete, add).
    EmitModify { ce: u16 },
    /// Delete the CE's matched WME.
    RemoveCe { ce: u16 },
    /// Pop into a local slot.
    StoreLocal(u16),
    /// Generate a fresh symbol into a local slot (OPS5 genatom).
    GensymLocal(u16),
    /// Pop and append to the output line.
    Write,
    /// End the output line.
    WriteCrlf,
    /// Stop the interpreter after this firing.
    Halt,
}

/// Compiled RHS for one production.
#[derive(Debug, Clone, Default)]
pub struct RhsProgram {
    pub code: Vec<Instr>,
    pub n_locals: u16,
}

/// Side effects requested by an RHS execution, in order.
#[derive(Debug, Clone)]
pub enum RhsEffect {
    Make { class: SymbolId, fields: Vec<Value> },
    Remove { wme: WmeRef },
    Write(String),
    Crlf,
}

/// Where a variable's value comes from at firing time.
#[derive(Clone, Copy)]
enum Slot {
    Lhs { ce: u16, field: u16 },
    Local(u16),
}

/// Compiles a production's RHS against the LHS bindings and class layouts.
///
/// `arity_of` maps a class to its field count (fixed after parse).
pub fn compile_rhs(
    prod: &Production,
    syms: &SymbolTable,
    arity_of: impl Fn(SymbolId) -> u16,
) -> Result<RhsProgram> {
    // LHS bindings: first Eq occurrence of each variable in a positive CE —
    // must agree with the network compiler's binding rule.
    let mut slots: FxHashMap<SymbolId, Slot> = FxHashMap::default();
    {
        let mut pos: u16 = 0;
        for ce in &prod.lhs {
            if ce.negated {
                continue;
            }
            for (field, test) in &ce.tests {
                if let ops5::ast::AttrTest::Conj(ts) = test {
                    for vt in ts {
                        if let ops5::ast::TestAtom::Var(v) = vt.atom {
                            if vt.pred.is_eq() {
                                slots.entry(v).or_insert(Slot::Lhs {
                                    ce: pos,
                                    field: *field,
                                });
                            }
                        }
                    }
                }
            }
            pos += 1;
        }
    }

    let mut code = Vec::new();
    let mut n_locals: u16 = 0;

    fn compile_expr(
        e: &RhsExpr,
        slots: &FxHashMap<SymbolId, Slot>,
        syms: &SymbolTable,
        code: &mut Vec<Instr>,
    ) -> Result<()> {
        match e {
            RhsExpr::Const(v) => code.push(Instr::PushConst(*v)),
            RhsExpr::Var(v) => match slots.get(v) {
                Some(Slot::Lhs { ce, field }) => code.push(Instr::PushBinding {
                    ce: *ce,
                    field: *field,
                }),
                Some(Slot::Local(i)) => code.push(Instr::PushLocal(*i)),
                None => {
                    return Err(Ops5Error::Semantic(format!(
                        "RHS variable <{}> has no binding",
                        syms.name(*v)
                    )))
                }
            },
            RhsExpr::Arith(op, a, b) => {
                compile_expr(a, slots, syms, code)?;
                compile_expr(b, slots, syms, code)?;
                code.push(Instr::Arith(*op));
            }
        }
        Ok(())
    }

    for action in &prod.rhs {
        match action {
            Action::Make { class, sets } => {
                code.push(Instr::BeginWme {
                    class: *class,
                    arity: arity_of(*class),
                });
                for (field, e) in sets {
                    compile_expr(e, &slots, syms, &mut code)?;
                    code.push(Instr::SetField(*field));
                }
                code.push(Instr::EmitMake);
            }
            Action::Modify { ce, sets } => {
                // `ce` is the 1-based positive index from the parser.
                let ce0 = ce - 1;
                let class = prod
                    .lhs
                    .iter()
                    .filter(|c| !c.negated)
                    .nth(ce0 as usize)
                    .map(|c| c.class)
                    .ok_or_else(|| Ops5Error::Semantic("modify CE out of range".into()))?;
                code.push(Instr::BeginFromCe {
                    ce: ce0,
                    arity: arity_of(class),
                });
                for (field, e) in sets {
                    compile_expr(e, &slots, syms, &mut code)?;
                    code.push(Instr::SetField(*field));
                }
                code.push(Instr::EmitModify { ce: ce0 });
            }
            Action::Remove { ce } => code.push(Instr::RemoveCe { ce: ce - 1 }),
            Action::Write { items } => {
                for item in items {
                    match item {
                        WriteItem::Crlf => code.push(Instr::WriteCrlf),
                        WriteItem::Value(v) => {
                            let e = match v {
                                ops5::ast::RhsValue::Const(c) => RhsExpr::Const(*c),
                                ops5::ast::RhsValue::Var(v) => RhsExpr::Var(*v),
                            };
                            compile_expr(&e, &slots, syms, &mut code)?;
                            code.push(Instr::Write);
                        }
                    }
                }
            }
            Action::Bind { var, expr } => {
                let slot = n_locals;
                n_locals += 1;
                match expr {
                    Some(e) => {
                        compile_expr(e, &slots, syms, &mut code)?;
                        code.push(Instr::StoreLocal(slot));
                    }
                    None => code.push(Instr::GensymLocal(slot)),
                }
                slots.insert(*var, Slot::Local(slot));
            }
            Action::Halt => code.push(Instr::Halt),
        }
    }

    Ok(RhsProgram { code, n_locals })
}

/// Where `GensymLocal` draws fresh symbols from.
///
/// The serial act path hands the interpreter the mutable symbol table; the
/// parallel act path pre-interns every gensym a group will need (in
/// conflict-set order, so the counter advances exactly as a serial run
/// would) and evaluates RHSes against a shared immutable table.
enum GensymSource<'a> {
    Table(&'a mut SymbolTable),
    Pre {
        syms: &'a SymbolTable,
        pre: &'a [SymbolId],
        next: usize,
    },
}

impl GensymSource<'_> {
    fn next(&mut self) -> Result<SymbolId> {
        match self {
            GensymSource::Table(t) => Ok(t.gensym()),
            GensymSource::Pre { pre, next, .. } => {
                let id = pre.get(*next).copied().ok_or_else(|| {
                    Ops5Error::Runtime("pre-allocated gensym pool exhausted".into())
                })?;
                *next += 1;
                Ok(id)
            }
        }
    }

    fn syms(&self) -> &SymbolTable {
        match self {
            GensymSource::Table(t) => t,
            GensymSource::Pre { syms, .. } => syms,
        }
    }
}

/// Interprets a compiled RHS for one instantiation.
///
/// Effects are delivered to `sink` in order, which lets the engine pipeline
/// WME changes into the matcher the moment they are computed. Returns `true`
/// if a `halt` was executed.
pub fn execute(
    prog: &RhsProgram,
    inst: &Instantiation,
    syms: &mut SymbolTable,
    sink: impl FnMut(RhsEffect),
) -> Result<bool> {
    execute_core(prog, inst, &mut GensymSource::Table(syms), sink)
}

/// [`execute`] against an immutable symbol table, drawing gensyms from a
/// pre-interned pool. This variant is pure (no engine state is touched), so
/// group members can be evaluated concurrently.
pub fn execute_prealloc(
    prog: &RhsProgram,
    inst: &Instantiation,
    syms: &SymbolTable,
    gensyms: &[SymbolId],
    sink: impl FnMut(RhsEffect),
) -> Result<bool> {
    execute_core(
        prog,
        inst,
        &mut GensymSource::Pre {
            syms,
            pre: gensyms,
            next: 0,
        },
        sink,
    )
}

fn execute_core(
    prog: &RhsProgram,
    inst: &Instantiation,
    gensyms: &mut GensymSource<'_>,
    mut sink: impl FnMut(RhsEffect),
) -> Result<bool> {
    let mut stack: Vec<Value> = Vec::with_capacity(8);
    let mut locals: Vec<Value> = vec![Value::NIL; prog.n_locals as usize];
    let mut buf: Vec<Value> = Vec::new();
    let mut buf_class: SymbolId = SymbolId::NIL;
    let mut halted = false;

    for instr in &prog.code {
        match instr {
            Instr::PushConst(v) => stack.push(*v),
            Instr::PushBinding { ce, field } => {
                let w = inst
                    .wmes
                    .get(*ce as usize)
                    .ok_or_else(|| Ops5Error::Runtime("binding references missing CE".into()))?;
                stack.push(w.field(*field));
            }
            Instr::PushLocal(i) => stack.push(locals[*i as usize]),
            Instr::Arith(op) => {
                let b = stack.pop().ok_or_else(stack_underflow)?;
                let a = stack.pop().ok_or_else(stack_underflow)?;
                let r = op.eval(a, b).ok_or_else(|| {
                    Ops5Error::Runtime("compute on non-numeric operands or division by zero".into())
                })?;
                stack.push(r);
            }
            Instr::BeginWme { class, arity } => {
                buf_class = *class;
                buf.clear();
                buf.resize(*arity as usize, Value::NIL);
            }
            Instr::BeginFromCe { ce, arity } => {
                let w = inst
                    .wmes
                    .get(*ce as usize)
                    .ok_or_else(|| Ops5Error::Runtime("modify references missing CE".into()))?;
                buf_class = w.class;
                buf.clear();
                buf.extend_from_slice(&w.fields);
                buf.resize(*arity as usize, Value::NIL);
            }
            Instr::SetField(f) => {
                let v = stack.pop().ok_or_else(stack_underflow)?;
                let f = *f as usize;
                if f >= buf.len() {
                    buf.resize(f + 1, Value::NIL);
                }
                buf[f] = v;
            }
            Instr::EmitMake => {
                sink(RhsEffect::Make {
                    class: buf_class,
                    fields: std::mem::take(&mut buf),
                });
            }
            Instr::EmitModify { ce } => {
                let w = inst.wmes[*ce as usize].clone();
                sink(RhsEffect::Remove { wme: w });
                sink(RhsEffect::Make {
                    class: buf_class,
                    fields: std::mem::take(&mut buf),
                });
            }
            Instr::RemoveCe { ce } => {
                let w = inst.wmes[*ce as usize].clone();
                sink(RhsEffect::Remove { wme: w });
            }
            Instr::StoreLocal(i) => {
                let v = stack.pop().ok_or_else(stack_underflow)?;
                locals[*i as usize] = v;
            }
            Instr::GensymLocal(i) => {
                locals[*i as usize] = Value::Sym(gensyms.next()?);
            }
            Instr::Write => {
                let v = stack.pop().ok_or_else(stack_underflow)?;
                sink(RhsEffect::Write(format!("{}", v.display(gensyms.syms()))));
            }
            Instr::WriteCrlf => sink(RhsEffect::Crlf),
            Instr::Halt => halted = true,
        }
    }
    Ok(halted)
}

fn stack_underflow() -> Ops5Error {
    Ops5Error::Runtime("RHS stack underflow".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{ProdId, Program, Wme};

    fn setup(src: &str) -> (Program, RhsProgram) {
        let prog = Program::from_source(src).unwrap();
        let p = &prog.productions[0];
        let classes = prog.classes.clone();
        let rhs = compile_rhs(p, &prog.symbols, |c| classes.arity(c)).unwrap();
        (prog, rhs)
    }

    fn run(prog: &mut Program, rhs: &RhsProgram, wmes: Vec<WmeRef>) -> (Vec<RhsEffect>, bool) {
        let inst = Instantiation {
            prod: ProdId(0),
            wmes,
        };
        let mut fx = Vec::new();
        let halted = execute(rhs, &inst, &mut prog.symbols, |e| fx.push(e)).unwrap();
        (fx, halted)
    }

    #[test]
    fn make_with_binding_and_compute() {
        let (mut prog, rhs) = setup("(p q (a ^x <v>) --> (make b ^y (compute <v> + 1) ^z <v>))");
        let ca = prog.symbols.get("a").unwrap();
        let w = Wme::new(ca, vec![Value::Int(5)], 1);
        let (fx, halted) = run(&mut prog, &rhs, vec![w]);
        assert!(!halted);
        assert_eq!(fx.len(), 1);
        match &fx[0] {
            RhsEffect::Make { fields, .. } => {
                assert_eq!(fields[0], Value::Int(6));
                assert_eq!(fields[1], Value::Int(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn modify_is_remove_plus_make() {
        let (mut prog, rhs) = setup("(p q (a ^x <v>) --> (modify 1 ^x 9))");
        let ca = prog.symbols.get("a").unwrap();
        let w = Wme::new(ca, vec![Value::Int(5)], 1);
        let (fx, _) = run(&mut prog, &rhs, vec![w.clone()]);
        assert_eq!(fx.len(), 2);
        assert!(matches!(&fx[0], RhsEffect::Remove { wme } if wme.timetag == 1));
        match &fx[1] {
            RhsEffect::Make { class, fields } => {
                assert_eq!(*class, ca);
                assert_eq!(fields[0], Value::Int(9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn modify_preserves_unset_fields() {
        let (mut prog, rhs) = setup("(p q (a ^x <v> ^y <w>) --> (modify 1 ^x 9))");
        let ca = prog.symbols.get("a").unwrap();
        let w = Wme::new(ca, vec![Value::Int(5), Value::Int(7)], 1);
        let (fx, _) = run(&mut prog, &rhs, vec![w]);
        match &fx[1] {
            RhsEffect::Make { fields, .. } => {
                assert_eq!(fields[0], Value::Int(9));
                assert_eq!(fields[1], Value::Int(7), "untouched field copied");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn remove_action() {
        let (mut prog, rhs) = setup("(p q (a ^x 1) (b ^y 2) --> (remove 2))");
        let ca = prog.symbols.get("a").unwrap();
        let cb = prog.symbols.get("b").unwrap();
        let wa = Wme::new(ca, vec![Value::Int(1)], 1);
        let wb = Wme::new(cb, vec![Value::Int(2)], 2);
        let (fx, _) = run(&mut prog, &rhs, vec![wa, wb]);
        assert_eq!(fx.len(), 1);
        assert!(matches!(&fx[0], RhsEffect::Remove { wme } if wme.timetag == 2));
    }

    #[test]
    fn bind_and_gensym() {
        let (mut prog, rhs) = setup(
            "(p q (a ^x <v>) --> (bind <w> (compute <v> * 2)) (bind <g>) (make b ^y <w> ^z <g>))",
        );
        let ca = prog.symbols.get("a").unwrap();
        let w = Wme::new(ca, vec![Value::Int(3)], 1);
        let (fx, _) = run(&mut prog, &rhs, vec![w]);
        match &fx[0] {
            RhsEffect::Make { fields, .. } => {
                assert_eq!(fields[0], Value::Int(6));
                assert!(matches!(fields[1], Value::Sym(_)));
                assert!(!fields[1].is_nil());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn halt_and_write() {
        let (mut prog, rhs) = setup("(p q (a ^x <v>) --> (write done <v> (crlf)) (halt))");
        let ca = prog.symbols.get("a").unwrap();
        let w = Wme::new(ca, vec![Value::Int(5)], 1);
        let (fx, halted) = run(&mut prog, &rhs, vec![w]);
        assert!(halted);
        assert_eq!(fx.len(), 3);
        assert!(matches!(&fx[0], RhsEffect::Write(s) if s == "done"));
        assert!(matches!(&fx[1], RhsEffect::Write(s) if s == "5"));
        assert!(matches!(&fx[2], RhsEffect::Crlf));
    }

    #[test]
    fn division_by_zero_is_runtime_error() {
        let (mut prog, rhs) = setup("(p q (a ^x <v>) --> (make b ^y (compute 1 // 0)))");
        let ca = prog.symbols.get("a").unwrap();
        let w = Wme::new(ca, vec![Value::Int(5)], 1);
        let inst = Instantiation {
            prod: ProdId(0),
            wmes: vec![w],
        };
        let r = execute(&rhs, &inst, &mut prog.symbols, |_| {});
        assert!(r.is_err());
    }
}
