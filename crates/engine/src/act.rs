//! Parallel act: non-interfering multi-firing.
//!
//! The paper parallelizes match only; conflict resolution and firing stay
//! sequential. This module lifts that restriction *without changing
//! observable semantics*: each cycle it walks the conflict set in LEX/MEA
//! dominance order and greedily selects a prefix of pairwise
//! non-interfering instantiations, evaluates their (pure) RHSes
//! concurrently, and merges the emissions in conflict-set order into one
//! [`ChangeBatch`](ops5::ChangeBatch) — k firings, one match pass.
//!
//! ## Serial-equivalence rules
//!
//! A candidate `q` joins a group whose selected members are `x₁..xₙ` (all
//! dominating `q`) only if firing `x₁..xₙ` first could not have changed
//! what `q` does or whether `q` still exists:
//!
//! * **Prefix discipline** — selection walks the CS in dominance order and
//!   *stops* at the first conflicting candidate (counted in
//!   [`ActStats::interference_rejects`]). Skipping past a conflict would
//!   reorder firings relative to a serial run.
//! * **Doomed skip** — the one sound exception: if some selected `xᵢ`
//!   retracts a WME that `q` matched, serial execution would destroy `q`'s
//!   instantiation before its turn (timetags are unique, so it cannot be
//!   re-derived). `q` is skipped (counted in [`ActStats::doomed_skips`])
//!   and the walk continues.
//! * **Write/write and write/read disjointness** — `q` is a conflict if it
//!   retracts a WME any selected member matched, or if any selected
//!   member's made classes intersect `q`'s made classes or `q`'s
//!   production's LHS classes.
//! * **Fertility closure** — a *fertile* production (see
//!   [`ops5::ActFootprints`]) could spawn a new instantiation that
//!   dominates the rest of the group mid-sequence, so a fertile member
//!   always closes its group. Likewise a production containing `halt`:
//!   serial execution fires nothing after a halt.
//!
//! Members of a closed group are therefore exactly the firings a serial
//! engine would perform next, in the same order; the merge path in
//! [`Engine`](crate::Engine) replays their effects in that order, so
//! timetag and gensym assignment — and hence the firing log, working
//! memory, and durability journal — are byte-identical to `Serial`.

use crate::cr;
use crate::rhs::{self, RhsEffect, RhsProgram};
use ops5::{ActFootprints, Instantiation, Production, Result, Strategy, SymbolId, SymbolTable};

/// How the act phase fires the conflict set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActStrategy {
    /// Paper-faithful: one firing per cycle (the default).
    #[default]
    Serial,
    /// Fire up to `max_group` pairwise non-interfering instantiations per
    /// cycle, merging their effects into one batch.
    Parallel { max_group: usize },
}

impl ActStrategy {
    /// Default group cap for [`ActStrategy::parallel`] and the
    /// `OPS5_ACT=parallel` knob.
    pub const DEFAULT_MAX_GROUP: usize = 8;

    /// `Parallel` with the default group cap.
    pub fn parallel() -> ActStrategy {
        ActStrategy::Parallel {
            max_group: Self::DEFAULT_MAX_GROUP,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            ActStrategy::Serial => "serial",
            ActStrategy::Parallel { .. } => "parallel",
        }
    }

    /// Parses `serial`, `parallel`, or `parallel:<max_group>`.
    pub fn from_name(s: &str) -> Option<ActStrategy> {
        match s {
            "serial" => Some(ActStrategy::Serial),
            "parallel" => Some(ActStrategy::parallel()),
            _ => {
                let k = s.strip_prefix("parallel:")?.parse::<usize>().ok()?;
                (k >= 1).then_some(ActStrategy::Parallel { max_group: k })
            }
        }
    }
}

/// Always-on act-phase counters (plain integers — no obs layer required),
/// the deterministic perf surface for the `act_perf` gate: on a fixed
/// program, `match_passes` and `act_submits` shrink in proportion to the
/// mean group size while `fired` stays constant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActStats {
    /// Act phases that fired at least one instantiation (a serial firing
    /// counts as a group of one).
    pub groups: u64,
    /// Total instantiations fired.
    pub fired: u64,
    /// Group extensions refused because of a footprint conflict (each
    /// closes its group).
    pub interference_rejects: u64,
    /// Candidates skipped because a selected member retracts a WME they
    /// matched (serial execution would destroy them before their turn).
    pub doomed_skips: u64,
    /// RHS-effect batches submitted to the matcher.
    pub act_submits: u64,
    /// Matcher quiesce passes taken by `step`/`step_group` (excludes
    /// `settle`, which fires nothing).
    pub match_passes: u64,
}

impl ActStats {
    /// Mean firings per firing act phase.
    pub fn mean_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.fired as f64 / self.groups as f64
        }
    }
}

fn retract_tags(inst: &Instantiation, fps: &ActFootprints) -> Vec<u64> {
    fps.prods[inst.prod.index()]
        .retract_ces
        .iter()
        .filter_map(|&ce| inst.wmes.get(ce).map(|w| w.timetag))
        .collect()
}

/// Selects the next act group: a dominance-ordered prefix of the unfired
/// conflict set, pairwise non-interfering, at most `cap` members, with any
/// fertile or halting member last. With `cap == 1` this is exactly
/// [`cr::select`].
pub(crate) fn select_group<'a>(
    strategy: Strategy,
    candidates: impl Iterator<Item = &'a Instantiation>,
    prods: &[Production],
    fps: &ActFootprints,
    cap: usize,
    stats: &mut ActStats,
) -> Vec<Instantiation> {
    let mut ordered: Vec<&Instantiation> = candidates.collect();
    if ordered.is_empty() || cap == 0 {
        return Vec::new();
    }
    // Dominant instantiation first: `order_dominates(b, a) == Less` iff `a`
    // fires before `b`.
    ordered.sort_unstable_by(|a, b| cr::order_dominates(strategy, b, a, prods));

    let mut group: Vec<Instantiation> = Vec::new();
    let mut sel_tags: Vec<u64> = Vec::new(); // WMEs matched by selected members
    let mut sel_retracts: Vec<u64> = Vec::new(); // WMEs retracted by selected members
    let mut sel_makes: Vec<SymbolId> = Vec::new(); // classes made by selected members

    for cand in ordered {
        if group.len() >= cap {
            break;
        }
        let fp = &fps.prods[cand.prod.index()];
        if !group.is_empty() {
            // Doomed: a selected member retracts a WME this candidate
            // matched, so serial execution destroys it before its turn.
            if cand.wmes.iter().any(|w| sel_retracts.contains(&w.timetag)) {
                stats.doomed_skips += 1;
                continue;
            }
            let q_retracts = retract_tags(cand, fps);
            let conflicts =
                // The candidate would retract a WME a selected member
                // matched (the selected member must fire off it first).
                q_retracts.iter().any(|t| sel_tags.contains(t))
                // Write∩write: both assert into the same class.
                || fp.make_classes.iter().any(|c| sel_makes.contains(c))
                // Writeᵢ∩readⱼ: a selected member asserts into a class this
                // candidate's LHS depends on.
                || fp.pos_reads.iter().chain(&fp.neg_reads).any(|c| sel_makes.contains(c));
            if conflicts {
                stats.interference_rejects += 1;
                break;
            }
        }
        sel_tags.extend(cand.wmes.iter().map(|w| w.timetag));
        sel_retracts.extend(retract_tags(cand, fps));
        sel_makes.extend_from_slice(&fp.make_classes);
        let closes = fps.fertile[cand.prod.index()] || fp.has_halt;
        group.push(cand.clone());
        if closes {
            break;
        }
    }
    group
}

/// One group member's evaluation: the effects it emitted (in order, up to
/// any interpreter error) and the interpreter's verdict (`Ok(halted)` or
/// the error).
pub(crate) type EvalOut = (Vec<RhsEffect>, Result<bool>);

/// Upper bound on concurrent RHS evaluators per group. Small and per-group
/// (scoped threads) so a serve host multiplexing hundreds of engines never
/// accumulates idle act workers.
const MAX_EVAL_WORKERS: usize = 4;

fn eval_one(
    rhs: &[RhsProgram],
    inst: &Instantiation,
    pre: &[SymbolId],
    syms: &SymbolTable,
) -> EvalOut {
    let mut fx = Vec::new();
    let res = rhs::execute_prealloc(&rhs[inst.prod.index()], inst, syms, pre, |e| fx.push(e));
    (fx, res)
}

/// Evaluates every group member's RHS concurrently against the immutable
/// symbol table, with gensyms pre-interned per member. Results come back
/// indexed like `group` (conflict-set order) for the serial-order merge.
pub(crate) fn eval_group(
    rhs: &[RhsProgram],
    group: &[Instantiation],
    pre: &[Vec<SymbolId>],
    syms: &SymbolTable,
) -> Vec<EvalOut> {
    let n = group.len();
    let workers = n.min(MAX_EVAL_WORKERS);
    if workers <= 1 {
        return group
            .iter()
            .zip(pre)
            .map(|(inst, pre)| eval_one(rhs, inst, pre, syms))
            .collect();
    }
    let mut out: Vec<Option<EvalOut>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers - 1);
        for stripe in 1..workers {
            handles.push(scope.spawn(move || {
                (stripe..n)
                    .step_by(workers)
                    .map(|i| (i, eval_one(rhs, &group[i], &pre[i], syms)))
                    .collect::<Vec<_>>()
            }));
        }
        for i in (0..n).step_by(workers) {
            out[i] = Some(eval_one(rhs, &group[i], &pre[i], syms));
        }
        for h in handles {
            for (i, r) in h.join().expect("act eval worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("act eval stripe missed a member"))
        .collect()
}
