//! Durability: versioned working-memory snapshots plus an append-only
//! change/firing log, and recovery by snapshot-load + log-replay.
//!
//! A [`Snapshot`] captures everything the recognize-act interpreter needs
//! to reconstruct a session: live WMEs with their original timetags, the
//! staged-but-unflushed changes, the timetag clock, the cycle counter, the
//! refraction state (which conflict-set entries have fired), the fired log,
//! and the accumulated `write` output. It deliberately does *not* capture
//! matcher internals: Rete memories are a pure function of the
//! matcher-visible WM contents, so [`Engine::restore`] re-feeds those WMEs
//! as one [`ChangeBatch`], quiesces, and re-marks the fired keys — valid
//! under any of the four matchers, which is what makes a snapshot taken
//! under one matcher restorable under another (time-travel replay).
//!
//! A [`ChangeLog`] is the tail since the last checkpoint: `stage` /
//! `stage_retract` / `fire` records in execution order. Replay re-applies
//! stages and re-fires cycles through the ordinary [`Engine::step`] path;
//! every record is self-verifying (assigned timetags and fired
//! instantiations must match the log), so a divergence surfaces as an
//! error instead of silently corrupted state.
//!
//! Both serialize to a line-oriented text format with no external
//! dependencies. Floats travel as IEEE-754 bit patterns in hex so the
//! round trip is exact; symbols travel by name (OPS5 symbols never contain
//! whitespace); a program fingerprint guards against restoring into a
//! mismatched program.

use crate::interp::Engine;
use ops5::{ChangeBatch, Ops5Error, Program, Result, Sign, SymbolTable, Value, Wme};
use std::collections::HashSet;

/// Current snapshot format version (the `v1` in the header line).
pub const SNAPSHOT_VERSION: u32 = 1;

/// A serialization-neutral value: symbols by name, floats by bit pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapVal {
    Int(i64),
    Float(f64),
    Sym(String),
}

impl SnapVal {
    fn of(v: Value, symbols: &SymbolTable) -> SnapVal {
        match v {
            Value::Int(i) => SnapVal::Int(i),
            Value::Float(f) => SnapVal::Float(f),
            Value::Sym(s) => SnapVal::Sym(symbols.name(s).to_string()),
        }
    }

    fn to_value(&self, symbols: &mut SymbolTable) -> Value {
        match self {
            SnapVal::Int(i) => Value::Int(*i),
            SnapVal::Float(f) => Value::Float(*f),
            SnapVal::Sym(name) => Value::Sym(symbols.intern(name)),
        }
    }

    /// Token form: `i:<dec>`, `f:<bits-hex>`, `s:<name>`.
    fn encode(&self) -> String {
        match self {
            SnapVal::Int(i) => format!("i:{i}"),
            SnapVal::Float(f) => format!("f:{:016x}", f.to_bits()),
            SnapVal::Sym(name) => format!("s:{name}"),
        }
    }

    fn decode(tok: &str) -> Result<SnapVal> {
        let bad = || Ops5Error::Runtime(format!("bad value token `{tok}`"));
        match tok.split_once(':') {
            Some(("i", d)) => d.parse().map(SnapVal::Int).map_err(|_| bad()),
            Some(("f", h)) => u64::from_str_radix(h, 16)
                .map(|b| SnapVal::Float(f64::from_bits(b)))
                .map_err(|_| bad()),
            Some(("s", name)) if !name.is_empty() => Ok(SnapVal::Sym(name.to_string())),
            _ => Err(bad()),
        }
    }
}

/// One serialized WME: timetag, class name, positional field values.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapWme {
    pub tag: u64,
    pub class: String,
    pub fields: Vec<SnapVal>,
}

impl SnapWme {
    fn of(w: &Wme, symbols: &SymbolTable) -> SnapWme {
        SnapWme {
            tag: w.timetag,
            class: symbols.name(w.class).to_string(),
            fields: w.fields.iter().map(|&v| SnapVal::of(v, symbols)).collect(),
        }
    }

    fn encode(&self) -> String {
        let mut s = format!("{} {}", self.tag, self.class);
        for f in &self.fields {
            s.push(' ');
            s.push_str(&f.encode());
        }
        s
    }

    fn decode(body: &str) -> Result<SnapWme> {
        let mut toks = body.split_whitespace();
        let tag = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| Ops5Error::Runtime(format!("bad wme record `{body}`")))?;
        let class = toks
            .next()
            .ok_or_else(|| Ops5Error::Runtime(format!("wme record missing class `{body}`")))?
            .to_string();
        let fields = toks.map(SnapVal::decode).collect::<Result<Vec<_>>>()?;
        Ok(SnapWme { tag, class, fields })
    }
}

/// A production firing or refraction key: production name + matched
/// timetags.
fn encode_key(prod: &str, tags: &[u64]) -> String {
    let mut s = prod.to_string();
    for t in tags {
        s.push(' ');
        s.push_str(&t.to_string());
    }
    s
}

fn decode_key(body: &str) -> Result<(String, Vec<u64>)> {
    let mut toks = body.split_whitespace();
    let prod = toks
        .next()
        .ok_or_else(|| Ops5Error::Runtime("empty instantiation key".into()))?
        .to_string();
    let tags = toks
        .map(|t| {
            t.parse()
                .map_err(|_| Ops5Error::Runtime(format!("bad timetag `{t}` in key `{body}`")))
        })
        .collect::<Result<Vec<u64>>>()?;
    Ok((prod, tags))
}

/// FNV-1a over the parts of a program that must match for a restore to be
/// sound: strategy, production names and shapes, class layouts.
pub fn program_fingerprint(prog: &Program) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    eat(&SNAPSHOT_VERSION.to_le_bytes());
    eat(format!("{:?}", prog.strategy).as_bytes());
    for p in &prog.productions {
        eat(prog.symbols.name(p.name).as_bytes());
        eat(&(p.lhs.len() as u64).to_le_bytes());
        eat(&(p.rhs.len() as u64).to_le_bytes());
    }
    let mut classes: Vec<(String, Vec<String>)> = prog
        .classes
        .classes()
        .map(|(c, info)| {
            (
                prog.symbols.name(*c).to_string(),
                info.attrs
                    .iter()
                    .map(|a| prog.symbols.name(*a).to_string())
                    .collect(),
            )
        })
        .collect();
    classes.sort();
    for (name, attrs) in classes {
        eat(name.as_bytes());
        for a in attrs {
            eat(a.as_bytes());
        }
    }
    h
}

/// A versioned, self-contained capture of one engine's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// [`program_fingerprint`] of the program the state belongs to.
    pub fingerprint: u64,
    /// Timetag clock (next tag to be assigned).
    pub clock: u64,
    /// Recognize-act cycles executed so far.
    pub cycles: u64,
    /// Whether a `halt` action has executed.
    pub halted: bool,
    /// Every live WME, sorted by timetag. Includes staged adds.
    pub wm: Vec<SnapWme>,
    /// Staged-but-unflushed changes: adds reference WMEs also present in
    /// `wm`; deletes carry WMEs that are matcher-visible but no longer
    /// live.
    pub staged: Vec<(Sign, SnapWme)>,
    /// Refraction state: keys of conflict-set entries that have fired.
    pub fired_cs: Vec<(String, Vec<u64>)>,
    /// The per-cycle fired log (production name + matched timetags).
    pub fired_log: Vec<(String, Vec<u64>)>,
    /// Completed `write` output lines.
    pub output: Vec<String>,
    /// Partially assembled `write` line (no `crlf` yet).
    pub line: String,
}

impl Snapshot {
    /// Captures `eng`'s durable state. Pure read; the engine is untouched.
    pub fn capture(eng: &Engine) -> Snapshot {
        let symbols = &eng.prog.symbols;
        let mut wm: Vec<SnapWme> = eng.wm.iter().map(|w| SnapWme::of(w, symbols)).collect();
        wm.sort_by_key(|w| w.tag);
        let staged = eng
            .staged
            .iter()
            .map(|c| (c.sign, SnapWme::of(&c.wme, symbols)))
            .collect();
        let key_name =
            |(p, tags): (ops5::ProdId, Vec<u64>)| (eng.prog.prod_name(p).to_string(), tags);
        Snapshot {
            fingerprint: program_fingerprint(&eng.prog),
            clock: eng.wm.clock(),
            cycles: eng.cycles,
            halted: eng.halted,
            wm,
            staged,
            fired_cs: eng.cs.fired_keys().into_iter().map(key_name).collect(),
            fired_log: eng
                .fired_log
                .iter()
                .map(|(p, tags)| (eng.prog.prod_name(*p).to_string(), tags.clone()))
                .collect(),
            output: eng.output.clone(),
            line: eng.line.clone(),
        }
    }

    /// Serializes to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "ops5-snapshot v{} fp={:016x} clock={} cycles={} halted={}\n",
            SNAPSHOT_VERSION, self.fingerprint, self.clock, self.cycles, self.halted as u8
        );
        for w in &self.wm {
            out.push_str("w ");
            out.push_str(&w.encode());
            out.push('\n');
        }
        for (sign, w) in &self.staged {
            out.push_str(match sign {
                Sign::Plus => "s + ",
                Sign::Minus => "s - ",
            });
            out.push_str(&w.encode());
            out.push('\n');
        }
        for (p, tags) in &self.fired_cs {
            out.push_str("f ");
            out.push_str(&encode_key(p, tags));
            out.push('\n');
        }
        for (p, tags) in &self.fired_log {
            out.push_str("l ");
            out.push_str(&encode_key(p, tags));
            out.push('\n');
        }
        for o in &self.output {
            out.push_str("o ");
            out.push_str(o);
            out.push('\n');
        }
        if !self.line.is_empty() {
            out.push_str("p ");
            out.push_str(&self.line);
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format produced by [`Snapshot::to_text`].
    pub fn parse(text: &str) -> Result<Snapshot> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| Ops5Error::Runtime("empty snapshot".into()))?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some("ops5-snapshot") {
            return Err(Ops5Error::Runtime(format!(
                "not a snapshot header: `{header}`"
            )));
        }
        match toks.next() {
            Some(v) if v == format!("v{SNAPSHOT_VERSION}") => {}
            Some(v) => {
                return Err(Ops5Error::Runtime(format!(
                    "unsupported snapshot version `{v}` (expected v{SNAPSHOT_VERSION})"
                )))
            }
            None => return Err(Ops5Error::Runtime("snapshot header missing version".into())),
        }
        let mut fingerprint = None;
        let mut clock = None;
        let mut cycles = None;
        let mut halted = None;
        for kv in toks {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| Ops5Error::Runtime(format!("bad header field `{kv}`")))?;
            let bad = || Ops5Error::Runtime(format!("bad header value `{kv}`"));
            match k {
                "fp" => fingerprint = Some(u64::from_str_radix(v, 16).map_err(|_| bad())?),
                "clock" => clock = Some(v.parse().map_err(|_| bad())?),
                "cycles" => cycles = Some(v.parse().map_err(|_| bad())?),
                "halted" => halted = Some(v == "1"),
                _ => {} // Forward compatibility: ignore unknown fields.
            }
        }
        let missing = |f: &str| Ops5Error::Runtime(format!("snapshot header missing `{f}`"));
        let mut snap = Snapshot {
            fingerprint: fingerprint.ok_or_else(|| missing("fp"))?,
            clock: clock.ok_or_else(|| missing("clock"))?,
            cycles: cycles.ok_or_else(|| missing("cycles"))?,
            halted: halted.ok_or_else(|| missing("halted"))?,
            wm: Vec::new(),
            staged: Vec::new(),
            fired_cs: Vec::new(),
            fired_log: Vec::new(),
            output: Vec::new(),
            line: String::new(),
        };
        let mut terminated = false;
        for line in lines {
            let (kind, body) = match line.split_once(' ') {
                Some((k, b)) => (k, b),
                None => (line, ""),
            };
            match kind {
                "w" => snap.wm.push(SnapWme::decode(body)?),
                "s" => {
                    let (sign_tok, rest) = body
                        .split_once(' ')
                        .ok_or_else(|| Ops5Error::Runtime(format!("bad staged record `{line}`")))?;
                    let sign = match sign_tok {
                        "+" => Sign::Plus,
                        "-" => Sign::Minus,
                        _ => {
                            return Err(Ops5Error::Runtime(format!("bad staged sign `{sign_tok}`")))
                        }
                    };
                    snap.staged.push((sign, SnapWme::decode(rest)?));
                }
                "f" => snap.fired_cs.push(decode_key(body)?),
                "l" => snap.fired_log.push(decode_key(body)?),
                "o" => snap.output.push(body.to_string()),
                "p" => snap.line = body.to_string(),
                "end" => {
                    terminated = true;
                    break;
                }
                _ => {
                    return Err(Ops5Error::Runtime(format!(
                        "unknown snapshot record `{line}`"
                    )))
                }
            }
        }
        if !terminated {
            return Err(Ops5Error::Runtime("snapshot missing `end` line".into()));
        }
        Ok(snap)
    }
}

/// One append-only log record (the tail since the last checkpoint).
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A WME staged into working memory (`ASSERT`): the tag the engine
    /// assigned plus the full element, so replay can verify determinism.
    Stage {
        tag: u64,
        class: String,
        fields: Vec<SnapVal>,
    },
    /// A staged retraction by timetag (`RETRACT`).
    StageRetract { tag: u64 },
    /// One recognize-act cycle: the production and timetags that fired.
    Fire { prod: String, tags: Vec<u64> },
}

impl LogRecord {
    /// Builds the `Stage` record for a just-staged WME (the engine's
    /// journaling hook).
    pub(crate) fn stage_of(w: &Wme, symbols: &SymbolTable) -> LogRecord {
        LogRecord::Stage {
            tag: w.timetag,
            class: symbols.name(w.class).to_string(),
            fields: w.fields.iter().map(|&v| SnapVal::of(v, symbols)).collect(),
        }
    }

    /// Wire form: `+ <tag> <class> <vals...>` / `- <tag>` /
    /// `! <prod> <tags...>`.
    pub fn to_line(&self) -> String {
        match self {
            LogRecord::Stage { tag, class, fields } => {
                let w = SnapWme {
                    tag: *tag,
                    class: class.clone(),
                    fields: fields.clone(),
                };
                format!("+ {}", w.encode())
            }
            LogRecord::StageRetract { tag } => format!("- {tag}"),
            LogRecord::Fire { prod, tags } => format!("! {}", encode_key(prod, tags)),
        }
    }

    pub fn parse(line: &str) -> Result<LogRecord> {
        let (kind, body) = line
            .split_once(' ')
            .ok_or_else(|| Ops5Error::Runtime(format!("bad log record `{line}`")))?;
        match kind {
            "+" => {
                let w = SnapWme::decode(body)?;
                Ok(LogRecord::Stage {
                    tag: w.tag,
                    class: w.class,
                    fields: w.fields,
                })
            }
            "-" => body
                .trim()
                .parse()
                .map(|tag| LogRecord::StageRetract { tag })
                .map_err(|_| Ops5Error::Runtime(format!("bad retract record `{line}`"))),
            "!" => decode_key(body).map(|(prod, tags)| LogRecord::Fire { prod, tags }),
            _ => Err(Ops5Error::Runtime(format!("unknown log record `{line}`"))),
        }
    }
}

/// The append-only change/firing log: everything that mutated a session
/// since its last checkpoint, in execution order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeLog {
    pub records: Vec<LogRecord>,
}

impl ChangeLog {
    pub fn new() -> ChangeLog {
        ChangeLog::default()
    }

    pub fn push(&mut self, rec: LogRecord) {
        self.records.push(rec);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// One line per record.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a log body (blank lines ignored, so a torn trailing write —
    /// a kill mid-append never produces one because records are
    /// line-buffered, but an empty last line is normal — is harmless).
    pub fn parse(text: &str) -> Result<ChangeLog> {
        let mut log = ChangeLog::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            log.push(LogRecord::parse(line)?);
        }
        Ok(log)
    }

    /// Replays the log against `eng` (normally one freshly restored from
    /// the matching checkpoint). Every record is verified as it applies:
    /// staged tags must come out as logged, and each `fire` record must
    /// select exactly the logged instantiation through the ordinary
    /// [`Engine::step`] path. Returns the number of cycles re-fired.
    pub fn replay(&self, eng: &mut Engine) -> Result<u64> {
        let mut fires = 0u64;
        for (i, rec) in self.records.iter().enumerate() {
            let at = |msg: String| Ops5Error::Runtime(format!("log replay record {i}: {msg}"));
            match rec {
                LogRecord::Stage { tag, class, fields } => {
                    let c = eng
                        .prog
                        .symbols
                        .get(class)
                        .filter(|c| eng.prog.classes.info(*c).is_some())
                        .ok_or_else(|| at(format!("unknown class `{class}`")))?;
                    let vals = fields
                        .iter()
                        .map(|f| f.to_value(&mut eng.prog.symbols))
                        .collect();
                    let w = eng.stage(c, vals)?;
                    if w.timetag != *tag {
                        return Err(at(format!(
                            "stage assigned timetag {} but the log recorded {tag}",
                            w.timetag
                        )));
                    }
                }
                LogRecord::StageRetract { tag } => {
                    eng.stage_retract(*tag).map_err(|e| at(e.to_string()))?;
                }
                LogRecord::Fire { prod, tags } => {
                    let inst = eng
                        .step()?
                        .ok_or_else(|| at(format!("log fires `{prod}` but engine is quiescent")))?;
                    let got = eng.prog.prod_name(inst.prod);
                    let got_tags: Vec<u64> = inst.wmes.iter().map(|w| w.timetag).collect();
                    if got != prod || &got_tags != tags {
                        return Err(at(format!(
                            "divergence: log fires `{prod} {tags:?}`, engine fired `{got} {got_tags:?}`"
                        )));
                    }
                    fires += 1;
                }
            }
        }
        Ok(fires)
    }
}

impl Engine {
    /// Captures a [`Snapshot`] of this engine's durable state.
    ///
    /// Quiesces the matcher first — *without* flushing staged changes — so
    /// the conflict set reflects exactly the matcher-visible WM (a firing's
    /// own retractions may still be pending inside the matcher right after
    /// a `step`). Staged changes stay staged and are captured as such.
    pub fn snapshot(&mut self) -> Snapshot {
        let report = self.matcher.quiesce();
        self.cs.apply_all(report.cs_changes);
        Snapshot::capture(self)
    }

    /// Restores a snapshot into this engine, which must be *fresh*: built
    /// from the same program (fingerprint-checked) with nothing inserted,
    /// staged, or fired yet. Any of the four matchers works — match state
    /// is reconstructed by re-feeding the matcher-visible WMEs as one
    /// batch and quiescing, then re-marking the fired conflict-set keys.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<()> {
        if self.cycles != 0
            || !self.wm.is_empty()
            || !self.staged.is_empty()
            || !self.cs.is_empty()
            || self.wm.clock() != 1
        {
            return Err(Ops5Error::Runtime(
                "restore requires a fresh engine (no WMEs, stages, or cycles)".into(),
            ));
        }
        let fp = program_fingerprint(&self.prog);
        if snap.fingerprint != fp {
            return Err(Ops5Error::Runtime(format!(
                "snapshot fingerprint {:016x} does not match program {:016x}",
                snap.fingerprint, fp
            )));
        }
        let resolve_class = |symbols: &SymbolTable, prog_classes: &ops5::ClassTable, name: &str| {
            symbols
                .get(name)
                .filter(|c| prog_classes.info(*c).is_some())
                .ok_or_else(|| Ops5Error::Runtime(format!("snapshot names unknown class `{name}`")))
        };
        let staged_adds: HashSet<u64> = snap
            .staged
            .iter()
            .filter(|(s, _)| *s == Sign::Plus)
            .map(|(_, w)| w.tag)
            .collect();
        // Re-feed every matcher-visible WME as one batch: all live WMEs
        // except staged adds, plus the targets of staged deletes (removed
        // from WM but not yet flushed to the matcher).
        let mut init = ChangeBatch::new();
        for sw in &snap.wm {
            let class = resolve_class(&self.prog.symbols, &self.prog.classes, &sw.class)?;
            let fields = sw
                .fields
                .iter()
                .map(|f| f.to_value(&mut self.prog.symbols))
                .collect();
            let w = Wme::new(class, fields, sw.tag);
            if !self.wm.restore_insert(w.clone()) {
                return Err(Ops5Error::Runtime(format!(
                    "snapshot repeats timetag {}",
                    sw.tag
                )));
            }
            if !staged_adds.contains(&sw.tag) {
                init.add(w);
            }
        }
        for (sign, sw) in &snap.staged {
            match sign {
                Sign::Plus => {
                    let w = self.wm.get(sw.tag).cloned().ok_or_else(|| {
                        Ops5Error::Runtime(format!(
                            "staged add of timetag {} missing from snapshot WM",
                            sw.tag
                        ))
                    })?;
                    self.staged.add(w);
                }
                Sign::Minus => {
                    let class = resolve_class(&self.prog.symbols, &self.prog.classes, &sw.class)?;
                    let fields = sw
                        .fields
                        .iter()
                        .map(|f| f.to_value(&mut self.prog.symbols))
                        .collect();
                    let w = Wme::new(class, fields, sw.tag);
                    init.add(w.clone());
                    self.staged.delete(w);
                }
            }
        }
        if !init.is_empty() {
            self.matcher.submit(&init);
        }
        let report = self.matcher.quiesce();
        self.cs.apply_all(report.cs_changes);
        for (prod, tags) in &snap.fired_cs {
            let pid = self.prog.find_production(prod).ok_or_else(|| {
                Ops5Error::Runtime(format!("snapshot names unknown production `{prod}`"))
            })?;
            if !self.cs.mark_fired_key(&(pid, tags.clone())) {
                return Err(Ops5Error::Runtime(format!(
                    "fired entry `{prod} {tags:?}` was not re-derived by the matcher"
                )));
            }
        }
        if snap.clock < self.wm.clock() {
            return Err(Ops5Error::Runtime(format!(
                "snapshot clock {} is behind its highest timetag",
                snap.clock
            )));
        }
        self.wm.set_clock(snap.clock);
        self.cycles = snap.cycles;
        self.halted = snap.halted;
        self.fired_log = snap
            .fired_log
            .iter()
            .map(|(prod, tags)| {
                self.prog
                    .find_production(prod)
                    .map(|pid| (pid, tags.clone()))
                    .ok_or_else(|| {
                        Ops5Error::Runtime(format!("fired log names unknown production `{prod}`"))
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        self.output = snap.output.clone();
        self.line = snap.line.clone();
        Ok(())
    }

    /// Starts journaling: every subsequent `stage` / `stage_retract` /
    /// fired cycle appends a [`LogRecord`]. Idempotent.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(ChangeLog::new());
        }
    }

    /// The change log accumulated since [`enable_journal`]
    /// (Self::enable_journal) or the last [`drain_journal`]
    /// (Self::drain_journal) / [`clear_journal`](Self::clear_journal).
    pub fn journal(&self) -> Option<&ChangeLog> {
        self.journal.as_ref()
    }

    /// Takes the accumulated records, leaving the journal enabled and
    /// empty. Returns an empty vec when journaling is off.
    pub fn drain_journal(&mut self) -> Vec<LogRecord> {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(&mut j.records),
            None => Vec::new(),
        }
    }

    /// Empties the journal (checkpoint taken), keeping it enabled.
    pub fn clear_journal(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use ops5::Value;

    const SRC: &str = "(literalize item n tag)
                       (literalize sum total)
                       (p add (item ^n <n>) (sum ^total <t>)
                          --> (remove 1) (modify 2 ^total (compute <t> + <n>)))
                       (p report (sum ^total <t>) - (item)
                          --> (write sum is <t> (crlf)) (halt))";

    fn fresh() -> Engine {
        EngineBuilder::from_source(SRC).unwrap().build().unwrap()
    }

    #[test]
    fn snapshot_text_roundtrip_is_exact() {
        let mut eng = fresh();
        eng.make_wme("sum", &[("total", Value::Int(0))]).unwrap();
        let pi = Value::Float(3.5e-300);
        let sym = eng.sym("weird:sym.2");
        eng.make_wme("item", &[("n", Value::Int(2)), ("tag", pi)])
            .unwrap();
        eng.make_wme("item", &[("n", Value::Int(3)), ("tag", sym)])
            .unwrap();
        eng.run(2).unwrap();
        // Leave something staged so that path serializes too.
        let item = eng.prog.symbols.get("item").unwrap();
        let w = eng.stage(item, vec![Value::Int(9), Value::NIL]).unwrap();
        eng.stage(item, vec![Value::Int(8), Value::NIL]).unwrap();
        eng.stage_retract(w.timetag).unwrap();
        let snap = eng.snapshot();
        let parsed = Snapshot::parse(&snap.to_text()).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn restore_reproduces_wm_cs_and_future_behaviour() {
        let mut a = fresh();
        a.make_wme("sum", &[("total", Value::Int(0))]).unwrap();
        for n in 1..=4 {
            a.make_wme("item", &[("n", Value::Int(n))]).unwrap();
        }
        a.run(2).unwrap();
        let snap = a.snapshot();

        let mut b = fresh();
        b.restore(&snap).unwrap();
        assert_eq!(b.cycles(), a.cycles());
        assert_eq!(b.wm().len(), a.wm().len());
        assert_eq!(
            b.conflict_set().sorted_keys(),
            a.conflict_set().sorted_keys()
        );
        // Both engines continue identically to completion.
        let ra = a.run(100).unwrap();
        let rb = b.run(100).unwrap();
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.reason, rb.reason);
        assert_eq!(a.output(), b.output());
        let names = |e: &Engine| {
            e.fired_log()
                .iter()
                .map(|(p, t)| (e.prog.prod_name(*p).to_string(), t.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn restore_refuses_dirty_engine_and_bad_fingerprint() {
        let mut a = fresh();
        a.make_wme("sum", &[("total", Value::Int(0))]).unwrap();
        let snap = a.snapshot();

        let mut dirty = fresh();
        dirty.make_wme("sum", &[("total", Value::Int(1))]).unwrap();
        assert!(dirty.restore(&snap).is_err(), "dirty engine must refuse");

        let mut other = EngineBuilder::from_source("(p r (a ^x 1) --> (halt))")
            .unwrap()
            .build()
            .unwrap();
        let err = other.restore(&snap).unwrap_err().to_string();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn journal_replays_to_identical_state() {
        let mut a = fresh();
        a.enable_journal();
        a.make_wme("sum", &[("total", Value::Int(0))]).unwrap();
        let base = a.snapshot(); // checkpoint before any staged traffic
        let item = a.prog.symbols.get("item").unwrap();
        a.stage(item, vec![Value::Int(5), Value::NIL]).unwrap();
        let w = a.stage(item, vec![Value::Int(6), Value::NIL]).unwrap();
        a.stage_retract(w.timetag).unwrap();
        a.step().unwrap();
        a.stage(item, vec![Value::Int(7), Value::NIL]).unwrap();
        a.step().unwrap();
        let log = a.journal().unwrap().clone();
        let reparsed = ChangeLog::parse(&log.to_text()).unwrap();
        assert_eq!(log, reparsed);

        let mut b = fresh();
        b.restore(&base).unwrap();
        let fires = reparsed.replay(&mut b).unwrap();
        assert_eq!(fires, 2);
        assert_eq!(b.cycles(), a.cycles());
        assert_eq!(b.wm().clock(), a.wm().clock());
        assert_eq!(
            b.conflict_set().sorted_keys(),
            a.conflict_set().sorted_keys()
        );
        let ra = a.run(100).unwrap();
        let rb = b.run(100).unwrap();
        assert_eq!((ra.cycles, ra.reason), (rb.cycles, rb.reason));
        assert_eq!(a.output(), b.output());
    }

    #[test]
    fn replay_detects_divergence() {
        let mut a = fresh();
        a.make_wme("sum", &[("total", Value::Int(0))]).unwrap();
        let base = a.snapshot();
        // A log that fires a production the engine cannot fire.
        let log = ChangeLog {
            records: vec![LogRecord::Fire {
                prod: "add".into(),
                tags: vec![99, 1],
            }],
        };
        let mut b = fresh();
        b.restore(&base).unwrap();
        let err = log.replay(&mut b).unwrap_err().to_string();
        assert!(
            err.contains("quiescent") || err.contains("divergence"),
            "{err}"
        );
    }

    #[test]
    fn snapshot_restores_across_matchers() {
        use crate::builder::MatcherKind;
        let mut a = fresh();
        a.make_wme("sum", &[("total", Value::Int(0))]).unwrap();
        for n in 1..=3 {
            a.make_wme("item", &[("n", Value::Int(n))]).unwrap();
        }
        a.run(1).unwrap();
        let snap = a.snapshot();
        let final_a = {
            let mut c = fresh();
            c.restore(&snap).unwrap();
            c.run(100).unwrap();
            (c.cycles(), c.output().to_vec())
        };
        for kind in [
            MatcherKind::Vs1,
            MatcherKind::Lisp,
            MatcherKind::Psm(psm::PsmConfig::default()),
        ] {
            let mut b = EngineBuilder::from_source(SRC)
                .unwrap()
                .matcher(kind)
                .build()
                .unwrap();
            b.restore(&snap).unwrap();
            b.run(100).unwrap();
            assert_eq!((b.cycles(), b.output().to_vec()), final_a);
        }
    }
}
