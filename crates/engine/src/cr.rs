//! Conflict resolution — OPS5 LEX and MEA.
//!
//! Both strategies order instantiations by *recency* of the matched WMEs'
//! timetags, with production *specificity* as the tie-breaker:
//!
//! * **LEX** — compare the instantiations' timetags sorted in descending
//!   order, lexicographically; a longer list dominates an exhausted equal
//!   prefix; ties break on specificity (number of LHS tests).
//! * **MEA** — first compare the timetag of the WME matching the *first*
//!   condition element (means-ends analysis on the goal element), then fall
//!   back to the LEX ordering.

use ops5::{Instantiation, Production, Strategy};
use std::cmp::Ordering;

/// Descending timetags of an instantiation.
fn recency(inst: &Instantiation) -> Vec<u64> {
    let mut v: Vec<u64> = inst.wmes.iter().map(|w| w.timetag).collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

/// LEX recency comparison: `Greater` means `a` dominates `b`.
fn lex_recency(a: &[u64], b: &[u64]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    // Equal prefix: the instantiation with more timetags dominates.
    a.len().cmp(&b.len())
}

/// Full ordering for one strategy. `prods` supplies specificity.
/// Returns `Greater` when `a` dominates `b` (should fire first).
pub fn order_dominates(
    strategy: Strategy,
    a: &Instantiation,
    b: &Instantiation,
    prods: &[Production],
) -> Ordering {
    if let Strategy::Mea = strategy {
        let fa = a.wmes.first().map(|w| w.timetag).unwrap_or(0);
        let fb = b.wmes.first().map(|w| w.timetag).unwrap_or(0);
        match fa.cmp(&fb) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    match lex_recency(&recency(a), &recency(b)) {
        Ordering::Equal => {}
        other => return other,
    }
    let sa = prods[a.prod.index()].specificity();
    let sb = prods[b.prod.index()].specificity();
    match sa.cmp(&sb) {
        Ordering::Equal => {}
        other => return other,
    }
    // Final arbitrary-but-deterministic tie-break: production id, then the
    // raw timetag sequence. (OPS5 says "arbitrary"; determinism keeps the
    // differential tests meaningful.)
    match a.prod.0.cmp(&b.prod.0) {
        Ordering::Equal => {}
        other => return other,
    }
    let ta: Vec<u64> = a.wmes.iter().map(|w| w.timetag).collect();
    let tb: Vec<u64> = b.wmes.iter().map(|w| w.timetag).collect();
    ta.cmp(&tb)
}

/// Selects the dominant instantiation among candidates.
pub fn select<'a>(
    strategy: Strategy,
    candidates: impl Iterator<Item = &'a Instantiation>,
    prods: &[Production],
) -> Option<Instantiation> {
    let mut best: Option<&Instantiation> = None;
    for c in candidates {
        best = Some(match best {
            None => c,
            Some(b) => {
                if order_dominates(strategy, c, b, prods) == Ordering::Greater {
                    c
                } else {
                    b
                }
            }
        });
    }
    best.cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{ProdId, Program, SymbolId, Value, Wme};

    fn inst(prod: u32, tags: &[u64]) -> Instantiation {
        Instantiation {
            prod: ProdId(prod),
            wmes: tags
                .iter()
                .map(|&t| Wme::new(SymbolId(1), vec![Value::Int(0)], t))
                .collect(),
        }
    }

    fn prods(n: usize, extra_tests_on_last: bool) -> Vec<Production> {
        // Build n productions; the last one optionally more specific.
        let mut src = String::new();
        for i in 0..n {
            if extra_tests_on_last && i == n - 1 {
                src.push_str(&format!("(p p{i} (a ^x 1 ^y 2 ^z 3) --> (halt))"));
            } else {
                src.push_str(&format!("(p p{i} (a ^x 1) --> (halt))"));
            }
        }
        Program::from_source(&src).unwrap().productions
    }

    #[test]
    fn lex_prefers_recent() {
        let ps = prods(2, false);
        let old = inst(0, &[1, 2]);
        let new = inst(1, &[1, 5]);
        assert_eq!(
            order_dominates(Strategy::Lex, &new, &old, &ps),
            Ordering::Greater
        );
        let sel = select(Strategy::Lex, [&old, &new].into_iter(), &ps).unwrap();
        assert_eq!(sel.prod, ProdId(1));
    }

    #[test]
    fn lex_longer_wins_on_equal_prefix() {
        let ps = prods(2, false);
        let short = inst(0, &[5]);
        let long = inst(1, &[5, 2]);
        assert_eq!(
            order_dominates(Strategy::Lex, &long, &short, &ps),
            Ordering::Greater
        );
    }

    #[test]
    fn lex_sorts_descending_before_compare() {
        let ps = prods(2, false);
        // a matched (3, 10), b matched (9, 4): recencies (10,3) vs (9,4).
        let a = inst(0, &[3, 10]);
        let b = inst(1, &[9, 4]);
        assert_eq!(
            order_dominates(Strategy::Lex, &a, &b, &ps),
            Ordering::Greater
        );
    }

    #[test]
    fn specificity_breaks_ties() {
        let ps = prods(2, true); // p1 more specific
        let a = inst(0, &[7]);
        let b = inst(1, &[7]);
        assert_eq!(
            order_dominates(Strategy::Lex, &b, &a, &ps),
            Ordering::Greater
        );
    }

    #[test]
    fn mea_prioritises_first_ce() {
        let ps = prods(2, false);
        // Under LEX, `a` (recency 10) beats `b` (recency 9). Under MEA,
        // `b`'s first CE (9) beats `a`'s first CE (2).
        let a = inst(0, &[2, 10]);
        let b = inst(1, &[9, 3]);
        assert_eq!(
            order_dominates(Strategy::Lex, &a, &b, &ps),
            Ordering::Greater
        );
        assert_eq!(
            order_dominates(Strategy::Mea, &b, &a, &ps),
            Ordering::Greater
        );
    }

    #[test]
    fn deterministic_final_tiebreak() {
        let ps = prods(2, false);
        let a = inst(0, &[7]);
        let b = inst(1, &[7]);
        // Same recency, same specificity: higher prod id wins (arbitrary but
        // fixed).
        assert_eq!(
            order_dominates(Strategy::Lex, &b, &a, &ps),
            Ordering::Greater
        );
        assert_eq!(order_dominates(Strategy::Lex, &a, &b, &ps), Ordering::Less);
    }

    #[test]
    fn select_empty_is_none() {
        let ps = prods(1, false);
        assert!(select(Strategy::Lex, std::iter::empty(), &ps).is_none());
    }
}
