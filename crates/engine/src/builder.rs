//! Engine construction: one builder for every matcher in the reproduction.
//!
//! The paper compares four match engines over the same control process
//! (lisp interpreter baseline, vs1 linear memories, vs2 hash memories, and
//! the parallel PSM-E matcher); [`EngineBuilder`] is the single construction
//! path that picks between them, replacing the old scatter of ad-hoc
//! `Engine::vs1` / `Engine::vs2` / `Engine::with_matcher` call sites:
//!
//! ```
//! use engine::{EngineBuilder, MatcherKind};
//! use ops5::Program;
//!
//! let src = "(p hi (a ^x 1) --> (write hi (crlf)))";
//! let mut eng = EngineBuilder::from_source(src).unwrap()
//!     .matcher(MatcherKind::Vs2(rete::HashMemConfig::default()))
//!     .build()
//!     .unwrap();
//! eng.make_wme("a", &[("x", ops5::Value::Int(1))]).unwrap();
//! let r = eng.run(10).unwrap();
//! assert_eq!(r.cycles, 1);
//! ```

use crate::act::ActStrategy;
use crate::interp::Engine;
use ops5::{Matcher, Program, Result, Strategy};
use psm::trace::{RunTrace, TraceMatcher};
use rete::network::Network;
use std::sync::{Arc, Mutex};

/// Which match engine the built [`Engine`] drives.
#[derive(Clone)]
pub enum MatcherKind {
    /// vs1: sequential Rete with linear-list memories.
    Vs1,
    /// vs2: sequential Rete with global hash-table memories.
    Vs2(rete::HashMemConfig),
    /// The interpretive lisp-style baseline (Table 4-4's Franz column).
    Lisp,
    /// PSM-E: the parallel matcher (threads, queues, and line locks per the
    /// config).
    Psm(psm::PsmConfig),
    /// col: the columnar set-at-a-time matcher (value-bucketed
    /// struct-of-arrays memories, whole-batch join sweeps).
    Col,
    /// The sequential trace recorder feeding the Multimax simulator.
    Trace {
        buckets: usize,
        sink: Arc<Mutex<RunTrace>>,
    },
}

impl Default for MatcherKind {
    fn default() -> Self {
        MatcherKind::Vs2(rete::HashMemConfig::default())
    }
}

impl MatcherKind {
    /// The canonical stable name of this kind. This is the single
    /// name table shared by the serve registry, the CLI, and the
    /// `OPS5_MATCHER` environment knob; [`MatcherKind::from_name`] is its
    /// inverse for every kind constructible from a name alone.
    pub fn name(&self) -> &'static str {
        match self {
            MatcherKind::Vs1 => "vs1",
            MatcherKind::Vs2(_) => "vs2",
            MatcherKind::Lisp => "lisp",
            MatcherKind::Psm(_) => "psm",
            MatcherKind::Col => "col",
            MatcherKind::Trace { .. } => "trace",
        }
    }

    /// Resolves a canonical name to a kind with default configuration.
    /// `trace` is not constructible by name (it needs a sink) and returns
    /// `None` like any unknown name.
    pub fn from_name(name: &str) -> Option<MatcherKind> {
        Some(match name {
            "vs1" => MatcherKind::Vs1,
            "vs2" => MatcherKind::Vs2(rete::HashMemConfig::default()),
            "lisp" => MatcherKind::Lisp,
            "psm" => MatcherKind::Psm(psm::PsmConfig::default()),
            "col" => MatcherKind::Col,
            _ => return None,
        })
    }

    /// The names [`MatcherKind::from_name`] accepts, for help/error text.
    pub const NAMES: &'static [&'static str] = &["vs1", "vs2", "lisp", "psm", "col"];
}

/// Builder for [`Engine`]: program + matcher choice + interpreter knobs.
///
/// Defaults: vs2 matcher with the default hash-memory config, the program's
/// own `(strategy ...)` directive (LEX if absent), no write echoing, fired
/// log kept.
pub struct EngineBuilder {
    program: Program,
    matcher: MatcherKind,
    matcher_set: bool,
    strategy: Option<Strategy>,
    act: ActStrategy,
    act_set: bool,
    echo_writes: bool,
    keep_fired_log: bool,
    limits: crate::interp::EngineLimits,
    network_options: Option<rete::NetworkOptions>,
    obs: obs::ObsConfig,
    #[allow(clippy::type_complexity)]
    factory: Option<Box<dyn FnOnce(Arc<Network>) -> Box<dyn Matcher>>>,
}

/// Reads the `OPS5_NETWORK_SHARING` / `OPS5_NETWORK_UNLINKING` environment
/// knobs (any of `1`, `true`, `on`, `yes`, case-insensitive, enables). This
/// is how CI runs the whole test suite in the tuned configuration without
/// touching call sites.
fn options_from_env() -> rete::NetworkOptions {
    fn flag(name: &str) -> bool {
        std::env::var(name)
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"))
            .unwrap_or(false)
    }
    rete::NetworkOptions {
        sharing: flag("OPS5_NETWORK_SHARING"),
        unlinking: flag("OPS5_NETWORK_UNLINKING"),
    }
}

impl EngineBuilder {
    /// Starts a builder from an already-parsed program.
    pub fn new(program: Program) -> EngineBuilder {
        EngineBuilder {
            program,
            matcher: MatcherKind::default(),
            matcher_set: false,
            strategy: None,
            act: ActStrategy::Serial,
            act_set: false,
            echo_writes: false,
            keep_fired_log: true,
            limits: crate::interp::EngineLimits::default(),
            network_options: None,
            obs: obs::ObsConfig::default(),
            factory: None,
        }
    }

    /// Parses OPS5 source and starts a builder.
    pub fn from_source(src: &str) -> Result<EngineBuilder> {
        Ok(EngineBuilder::new(Program::from_source(src)?))
    }

    /// Picks the match engine (default: vs2). An explicit choice also opts
    /// the builder out of the `OPS5_MATCHER` environment override.
    pub fn matcher(mut self, kind: MatcherKind) -> Self {
        self.matcher = kind;
        self.matcher_set = true;
        self.factory = None;
        self
    }

    /// Shorthand for [`MatcherKind::Vs1`].
    pub fn vs1(self) -> Self {
        self.matcher(MatcherKind::Vs1)
    }

    /// Shorthand for [`MatcherKind::Vs2`] with the default hash config.
    pub fn vs2(self) -> Self {
        self.matcher(MatcherKind::Vs2(rete::HashMemConfig::default()))
    }

    /// Shorthand for [`MatcherKind::Lisp`].
    pub fn lisp(self) -> Self {
        self.matcher(MatcherKind::Lisp)
    }

    /// Shorthand for [`MatcherKind::Psm`].
    pub fn psm(self, cfg: psm::PsmConfig) -> Self {
        self.matcher(MatcherKind::Psm(cfg))
    }

    /// Shorthand for [`MatcherKind::Col`].
    pub fn col(self) -> Self {
        self.matcher(MatcherKind::Col)
    }

    /// Shorthand for [`MatcherKind::Trace`].
    pub fn trace(self, buckets: usize, sink: Arc<Mutex<RunTrace>>) -> Self {
        self.matcher(MatcherKind::Trace { buckets, sink })
    }

    /// Installs a custom matcher factory (overrides [`Self::matcher`]); the
    /// escape hatch for matchers this crate does not know about.
    pub fn custom_matcher(
        mut self,
        f: impl FnOnce(Arc<Network>) -> Box<dyn Matcher> + 'static,
    ) -> Self {
        self.factory = Some(Box::new(f));
        self
    }

    /// Overrides the program's conflict-resolution strategy directive.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = Some(s);
        self
    }

    /// Picks the act-phase strategy (default: [`ActStrategy::Serial`], the
    /// paper-faithful one-firing-per-cycle loop). An explicit choice also
    /// opts the builder out of the `OPS5_ACT` environment override.
    pub fn act_strategy(mut self, act: ActStrategy) -> Self {
        self.act = act;
        self.act_set = true;
        self
    }

    /// Echo `write` output to stdout as it is produced.
    pub fn echo_writes(mut self, on: bool) -> Self {
        self.echo_writes = on;
        self
    }

    /// Keep the per-cycle fired log (disable for long benchmark runs).
    pub fn keep_fired_log(mut self, on: bool) -> Self {
        self.keep_fired_log = on;
        self
    }

    /// Resource limits for hosts multiplexing many engines (the serve
    /// layer's per-session limits). Unlimited by default.
    pub fn limits(mut self, limits: crate::interp::EngineLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Network compile options: beta-prefix sharing and left/right
    /// unlinking. When not set explicitly, non-trace matchers read the
    /// `OPS5_NETWORK_SHARING` / `OPS5_NETWORK_UNLINKING` environment knobs
    /// (both default off, the paper-faithful configuration); the trace
    /// matcher is pinned to the defaults so the Tables 4-5..4-9 harnesses
    /// stay reproducible regardless of environment.
    pub fn network_options(mut self, options: rete::NetworkOptions) -> Self {
        self.network_options = Some(options);
        self
    }

    /// Observability configuration (metrics registry, per-node match
    /// profiling, per-cycle phase histograms). Disabled by default; when
    /// disabled the engine carries no instruments at all.
    pub fn obs(mut self, cfg: obs::ObsConfig) -> Self {
        self.obs = cfg;
        self
    }

    /// Compiles the network, installs the matcher, and returns the engine.
    pub fn build(self) -> Result<Engine> {
        let mut program = self.program;
        if let Some(s) = self.strategy {
            program.strategy = s;
        }
        // The `OPS5_MATCHER` environment knob re-points builders that kept
        // the default matcher (no explicit `.matcher()` call, no custom
        // factory), the same CI lever as the network-option knobs. A typo'd
        // name is an error, not a silent fall-through.
        let matcher = match std::env::var("OPS5_MATCHER") {
            Ok(name) if !self.matcher_set && self.factory.is_none() && !name.is_empty() => {
                MatcherKind::from_name(&name).ok_or_else(|| {
                    ops5::Ops5Error::Runtime(format!(
                        "OPS5_MATCHER={name} is not one of {:?}",
                        MatcherKind::NAMES
                    ))
                })?
            }
            _ => self.matcher,
        };
        // Same lever for the act phase: `OPS5_ACT` (`serial`, `parallel`,
        // or `parallel:<max_group>`) re-points builders that kept the
        // default. The trace matcher stays pinned to the paper-faithful
        // serial act unless the caller opted in explicitly — grouped
        // submissions would change the recorded task batches and shift the
        // simulator tables.
        let act = match std::env::var("OPS5_ACT") {
            Ok(name)
                if !self.act_set
                    && !name.is_empty()
                    && !matches!(matcher, MatcherKind::Trace { .. }) =>
            {
                ActStrategy::from_name(&name).ok_or_else(|| {
                    ops5::Ops5Error::Runtime(format!(
                        "OPS5_ACT={name} is not `serial`, `parallel`, or `parallel:<max_group>`"
                    ))
                })?
            }
            _ => self.act,
        };
        let opts = match self.network_options {
            Some(o) => o,
            // Pin the trace matcher to the paper-faithful defaults unless
            // the caller opted in explicitly: the simulator tables must not
            // shift under a CI-wide environment override.
            None if matches!(matcher, MatcherKind::Trace { .. }) && self.factory.is_none() => {
                rete::NetworkOptions::default()
            }
            None => options_from_env(),
        };
        let mut eng = if let Some(factory) = self.factory {
            Engine::with_matcher(program, opts, factory)?
        } else {
            match matcher {
                MatcherKind::Vs1 => Engine::with_matcher(program, opts, rete::seq::boxed_vs1)?,
                MatcherKind::Vs2(cfg) => {
                    Engine::with_matcher(program, opts, move |net| rete::seq::boxed_vs2(net, cfg))?
                }
                MatcherKind::Lisp => {
                    // The lisp matcher works from the parsed program (names),
                    // not the compiled network; only unlinking applies.
                    let prog2 = program.clone();
                    Engine::with_matcher(program, opts, move |_net| {
                        lispsim::LispEngineMatcher::boxed_with(&prog2, opts)
                    })?
                }
                MatcherKind::Psm(cfg) => Engine::with_matcher(program, opts, move |net| {
                    psm::ParMatcher::boxed(net, cfg)
                })?,
                MatcherKind::Col => Engine::with_matcher(program, opts, rete::colmatch::boxed_col)?,
                MatcherKind::Trace { buckets, sink } => {
                    Engine::with_matcher(program, opts, move |net| {
                        Box::new(TraceMatcher::new(net, buckets, sink)) as Box<dyn Matcher>
                    })?
                }
            }
        };
        eng.echo_writes = self.echo_writes;
        eng.keep_fired_log = self.keep_fired_log;
        eng.limits = self.limits;
        eng.set_act_strategy(act);
        eng.enable_obs(self.obs);
        Ok(eng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::Value;

    const COUNTER: &str = "(p count
                             (c ^n <n> ^limit <l>)
                             (c ^n < <l>)
                             -->
                             (modify 1 ^n (compute <n> + 1)))
                           (p done (c ^n <n> ^limit <n>) --> (halt))";

    fn run_counter(b: EngineBuilder) -> Engine {
        let mut eng = b.build().unwrap();
        eng.make_wme("c", &[("n", Value::Int(0)), ("limit", Value::Int(3))])
            .unwrap();
        eng.run(50).unwrap();
        eng
    }

    #[test]
    fn all_matcher_kinds_agree() {
        let sink = Arc::new(Mutex::new(RunTrace::default()));
        let kinds: Vec<(&str, MatcherKind)> = vec![
            ("vs1", MatcherKind::Vs1),
            ("vs2", MatcherKind::Vs2(rete::HashMemConfig { buckets: 64 })),
            ("lisp", MatcherKind::Lisp),
            ("psm", MatcherKind::Psm(psm::PsmConfig::default())),
            ("col", MatcherKind::Col),
            (
                "trace",
                MatcherKind::Trace {
                    buckets: 64,
                    sink: sink.clone(),
                },
            ),
        ];
        for (name, kind) in kinds {
            let eng = run_counter(EngineBuilder::from_source(COUNTER).unwrap().matcher(kind));
            assert_eq!(eng.cycles(), 4, "matcher {name}");
        }
        assert!(sink.lock().unwrap().total_tasks() > 0, "trace recorded");
    }

    #[test]
    fn network_options_thread_through_to_the_compiled_network() {
        let opts = rete::NetworkOptions {
            sharing: true,
            unlinking: true,
        };
        let eng = run_counter(
            EngineBuilder::from_source(COUNTER)
                .unwrap()
                .vs2()
                .network_options(opts),
        );
        assert_eq!(eng.cycles(), 4);
        assert!(eng.network().options.sharing);
        assert!(eng.network().options.unlinking);

        // A pair of productions with an identical two-CE prefix must share it.
        let shared_src = "(p p1 (a) (b) (c) --> (halt)) (p p2 (a) (b) (d) --> (halt))";
        let eng2 = EngineBuilder::from_source(shared_src)
            .unwrap()
            .network_options(opts)
            .build()
            .unwrap();
        assert!(eng2.network().summary().shared_prefixes >= 1);
    }

    #[test]
    fn strategy_override_wins() {
        // MEA on a program with no directive: first-CE recency decides.
        let src = "(p pick (goal ^id <g>) (item ^v <v>) --> (write <g> <v>) (remove 2))";
        let mut eng = EngineBuilder::from_source(src)
            .unwrap()
            .strategy(Strategy::Mea)
            .build()
            .unwrap();
        assert_eq!(eng.prog.strategy, Strategy::Mea);
        eng.make_wme("goal", &[("id", Value::Int(1))]).unwrap();
        eng.make_wme("item", &[("v", Value::Int(10))]).unwrap();
        eng.make_wme("goal", &[("id", Value::Int(2))]).unwrap();
        eng.run(10).unwrap();
        assert_eq!(eng.output()[0], "2 10");
    }

    #[test]
    fn interpreter_knobs_apply() {
        let eng = EngineBuilder::from_source(COUNTER)
            .unwrap()
            .keep_fired_log(false)
            .build()
            .unwrap();
        assert!(!eng.keep_fired_log);
        assert!(!eng.echo_writes);
    }

    #[test]
    fn custom_factory_overrides_kind() {
        let eng = run_counter(
            EngineBuilder::from_source(COUNTER)
                .unwrap()
                .custom_matcher(rete::seq::boxed_vs1),
        );
        assert_eq!(eng.matcher().name(), "vs1");
        assert_eq!(eng.cycles(), 4);
    }

    #[test]
    fn matcher_kind_names_round_trip() {
        for name in MatcherKind::NAMES {
            let kind = MatcherKind::from_name(name).expect("canonical name resolves");
            assert_eq!(kind.name(), *name);
        }
        assert!(MatcherKind::from_name("trace").is_none(), "needs a sink");
        assert!(MatcherKind::from_name("frob").is_none());
        // Each kind's built matcher reports a distinct name too (vs1 and
        // vs2 used to both say "seq", which forced special cases upstream).
        for name in ["vs1", "vs2", "col"] {
            let kind = MatcherKind::from_name(name).unwrap();
            let eng = run_counter(EngineBuilder::from_source(COUNTER).unwrap().matcher(kind));
            assert_eq!(eng.matcher().name(), name);
        }
    }

    #[test]
    fn obs_disabled_by_default_and_enabled_on_request() {
        let eng = run_counter(EngineBuilder::from_source(COUNTER).unwrap());
        assert!(eng.obs_registry().is_none());
        assert!(eng.last_phase().is_none());

        for kind in [
            MatcherKind::Vs1,
            MatcherKind::Vs2(rete::HashMemConfig { buckets: 64 }),
            MatcherKind::Psm(psm::PsmConfig::default()),
            MatcherKind::Col,
        ] {
            let eng = run_counter(
                EngineBuilder::from_source(COUNTER)
                    .unwrap()
                    .matcher(kind)
                    .obs(obs::ObsConfig::enabled()),
            );
            let name = eng.matcher().name().to_string();
            let snap = eng.obs_registry().expect("registry present").snapshot();
            let hist: Vec<_> = snap
                .metrics
                .iter()
                .filter(|m| m.name == "engine_match_ns")
                .collect();
            assert_eq!(hist.len(), 1, "{name}: one match-phase histogram");
            match &hist[0].data {
                obs::MetricData::Histogram(h) => {
                    h.validate().unwrap();
                    assert_eq!(h.count, 4, "{name}: one sample per recognize-act cycle");
                }
                other => panic!("unexpected metric shape {other:?}"),
            }
            let phase = eng.last_phase().expect("phase recorded");
            assert!(phase.match_ns > 0, "{name}: match phase took time");
            // Rete matchers also carry a per-join-node profile with every
            // join activation accounted for.
            let profile = eng.node_profile().expect("profile present");
            let stats = eng.match_stats();
            assert_eq!(
                profile.total_activations(),
                stats.join_activations,
                "{name}"
            );
            assert_eq!(
                profile.total_scanned(),
                stats.opp_tokens_left + stats.opp_tokens_right,
                "{name}"
            );
        }
    }
}
