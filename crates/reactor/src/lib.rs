//! # reactor — a vendored, dependency-free epoll shim
//!
//! The serve tier's original front-end spent two OS threads per connection;
//! the paper's whole point is that threads are the scarce resource and work
//! should be multiplexed onto few of them. This crate is the missing
//! substrate: a readiness-polled event loop API in the shape of `mio`
//! (`Poll`/`Token`/`Interest`/`Events` + a cross-thread `Waker`), built
//! directly on raw `epoll`/`eventfd` syscalls because the build environment
//! has no crates registry (the same reason `crossbeam`/`proptest` are
//! vendored as API-subset shims).
//!
//! On top of the selector sit the two buffers every nonblocking line-
//! protocol server needs: [`LineBuf`] (incremental line extraction across
//! arbitrary read boundaries) and [`WriteBuf`] (buffered writes with carry,
//! so a slow client costs memory — which the serve layer bounds — instead
//! of a blocked thread).
//!
//! Consumers in this workspace: the `serve` crate's reactor front-end (one
//! I/O thread for all connections), the `ops5-router` session-sharding
//! proxy, and `bench`'s `serve_load --high-concurrency` driver (10k+
//! nonblocking client connections from a single thread).

mod buf;
mod poll;
mod sys;

pub use buf::{LineBuf, WriteBuf};
pub use poll::{Event, Events, Interest, Poll, Token, Waker};
pub use sys::raise_nofile_limit;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    const LST: Token = Token(0);
    const WKR: Token = Token(1);
    const CONN: Token = Token(2);

    #[test]
    fn accept_read_write_roundtrip() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.register(
            std::os::unix::io::AsRawFd::as_raw_fd(&listener),
            LST,
            Interest::READABLE,
        )
        .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"PING\n").unwrap();

        let mut events = Events::with_capacity(16);
        let mut served: Option<TcpStream> = None;
        let mut got = LineBuf::new();
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in events.iter() {
                match ev.token() {
                    LST => {
                        let (s, _) = listener.accept().unwrap();
                        s.set_nonblocking(true).unwrap();
                        poll.register(
                            std::os::unix::io::AsRawFd::as_raw_fd(&s),
                            CONN,
                            Interest::READABLE | Interest::WRITABLE,
                        )
                        .unwrap();
                        served = Some(s);
                    }
                    CONN if ev.is_readable() => {
                        let s = served.as_mut().unwrap();
                        match got.read_from(s) {
                            Ok(_) | Err(_) => {}
                        }
                    }
                    _ => {}
                }
            }
            if let Some(line) = got.next_line() {
                assert_eq!(line, "PING");
                let mut wb = WriteBuf::new();
                wb.push(b"PONG\n");
                let s = served.as_mut().unwrap();
                while !wb.is_empty() {
                    wb.write_to(s).unwrap();
                }
                let mut reply = [0u8; 5];
                client.read_exact(&mut reply).unwrap();
                assert_eq!(&reply, b"PONG\n");
                return;
            }
        }
        panic!("no line arrived within the poll budget");
    }

    #[test]
    fn waker_crosses_threads() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let waker = std::sync::Arc::new(Waker::new(&poll, WKR).unwrap());

        // Nothing pending: the poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let w = waker.clone();
        let t = std::thread::spawn(move || w.wake().unwrap());
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert!(events.iter().any(|e| e.token() == WKR && e.is_readable()));
        waker.drain();

        // Drained: quiet again (level-triggered, so an undrained eventfd
        // would re-fire here).
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token() != WKR));
    }

    #[test]
    fn interest_controls_delivered_events() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let fd = std::os::unix::io::AsRawFd::as_raw_fd(&server);

        // Write interest on an idle socket: immediately writable.
        poll.register(fd, CONN, Interest::WRITABLE).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_millis(200)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == CONN && e.is_writable()));

        // Drop write interest: no data pending, so nothing fires.
        poll.reregister(fd, CONN, Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| e.token() != CONN));

        // Peer close fires as readable (EOF must be observable).
        drop(client);
        poll.poll(&mut events, Some(Duration::from_millis(200)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == CONN && e.is_readable()));
        poll.deregister(fd).unwrap();
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let cur = raise_nofile_limit(64).unwrap();
        assert!(cur >= 64);
        let again = raise_nofile_limit(cur).unwrap();
        assert!(again >= cur);
    }
}
