//! Incremental I/O buffers for nonblocking connection state machines.
//!
//! [`LineBuf`] accumulates bytes across arbitrary read boundaries and
//! yields complete lines — the parsing half of the line protocol survives
//! commands split anywhere, including mid-token. [`WriteBuf`] is the
//! buffered-write half: replies are appended whole and drained to the
//! socket as far as the kernel accepts, with the unsent tail carried to the
//! next writable event.

use std::io::{self, Read, Write};

/// Read-side accumulator with incremental line extraction.
///
/// `next_line` is O(new bytes) amortized: a `scanned` watermark remembers
/// how far the newline scan got, so a long line arriving one byte at a time
/// is not rescanned from the start on every read.
#[derive(Default)]
pub struct LineBuf {
    buf: Vec<u8>,
    /// Start of unconsumed data.
    pos: usize,
    /// Exclusive end of the region already scanned for `\n`.
    scanned: usize,
}

impl LineBuf {
    pub fn new() -> LineBuf {
        LineBuf::default()
    }

    /// Bytes buffered but not yet returned as lines.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// One nonblocking read from `r` into the buffer. Returns the byte
    /// count (0 = EOF); `WouldBlock` surfaces as an error for the caller's
    /// read loop to stop on.
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        self.compact();
        let mut chunk = [0u8; 4096];
        let n = r.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Next complete line, stripped of `\n`/`\r\n`, lossily decoded.
    /// Returns `None` until a terminator arrives.
    pub fn next_line(&mut self) -> Option<String> {
        let start = self.scanned.max(self.pos);
        match self.buf[start..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let end = start + off;
                let line = String::from_utf8_lossy(&self.buf[self.pos..end])
                    .trim_end_matches('\r')
                    .to_string();
                self.pos = end + 1;
                self.scanned = self.pos;
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Reclaims consumed space once it dominates the buffer.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.scanned -= self.pos;
            self.pos = 0;
        }
    }
}

/// Write-side buffer: append whole replies, flush as far as the kernel
/// accepts, carry the tail.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Unsent bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much as possible without blocking. Returns the bytes
    /// written this call; `Ok(0)` with a non-empty buffer means the socket
    /// is full (`WouldBlock` is absorbed). Other errors surface.
    pub fn write_to(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut total = 0;
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket write returned 0",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() && self.pos > 4096 {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_survive_arbitrary_boundaries() {
        let text = b"OPEN blocks vs2\r\nASSERT item ^n 3\nRUN 100\n";
        for chunk in [1usize, 2, 3, 5, 7, 11, 100] {
            let mut lb = LineBuf::new();
            let mut got = Vec::new();
            for piece in text.chunks(chunk) {
                lb.extend(piece);
                while let Some(l) = lb.next_line() {
                    got.push(l);
                }
            }
            assert_eq!(
                got,
                vec!["OPEN blocks vs2", "ASSERT item ^n 3", "RUN 100"],
                "chunk={chunk}"
            );
            assert!(lb.is_empty());
        }
    }

    #[test]
    fn partial_line_is_held_back() {
        let mut lb = LineBuf::new();
        lb.extend(b"SNAP");
        assert_eq!(lb.next_line(), None);
        lb.extend(b"SHOT?\nRU");
        assert_eq!(lb.next_line().as_deref(), Some("SNAPSHOT?"));
        assert_eq!(lb.next_line(), None);
        assert_eq!(lb.len(), 2);
        lb.extend(b"N 5\n");
        assert_eq!(lb.next_line().as_deref(), Some("RUN 5"));
    }

    proptest::proptest! {
        /// Whatever read boundaries the kernel produces, the extracted line
        /// sequence is identical to a whole-buffer parse.
        #[test]
        fn chunking_is_invariant(cuts in proptest::collection::vec(1usize..24, 1..48)) {
            let text = b"OPEN - vs2\n(literalize a x)\nEND\nBATCH\nASSERT a ^x 1\nEND\nRUN 3\nFIRED?\nCLOSE\n";
            let mut whole = LineBuf::new();
            whole.extend(text);
            let mut want = Vec::new();
            while let Some(l) = whole.next_line() {
                want.push(l);
            }
            let mut lb = LineBuf::new();
            let mut got = Vec::new();
            let mut off = 0;
            let mut cut_iter = cuts.iter().cycle();
            while off < text.len() {
                let n = (*cut_iter.next().unwrap()).min(text.len() - off);
                lb.extend(&text[off..off + n]);
                off += n;
                while let Some(l) = lb.next_line() {
                    got.push(l);
                }
            }
            proptest::prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn write_buf_carries_the_tail() {
        // A writer that accepts at most 3 bytes per call then blocks.
        struct Dribble {
            out: Vec<u8>,
            budget: usize,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(3).min(self.budget);
                self.budget -= n;
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.push(b"OK 1\nOK 2\n");
        let mut w = Dribble {
            out: Vec::new(),
            budget: 4,
        };
        wb.write_to(&mut w).unwrap();
        assert_eq!(wb.len(), 6);
        w.budget = 100;
        wb.write_to(&mut w).unwrap();
        assert!(wb.is_empty());
        assert_eq!(w.out, b"OK 1\nOK 2\n");
    }
}
