//! The mio-like readiness API: [`Poll`], [`Token`], [`Interest`],
//! [`Events`], and a cross-thread [`Waker`].
//!
//! Level-triggered on purpose: the consumer re-arms nothing and can leave
//! bytes unread without losing the readiness edge, which keeps connection
//! state machines simple (read/write until `WouldBlock`, adjust interest,
//! return to the loop). Tokens are plain `usize` slab indices chosen by the
//! caller; the shim never interprets them.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Caller-chosen identifier delivered back with each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// No read/write interest: only error/hangup events are delivered
    /// (epoll reports those regardless). Used to quiesce a connection that
    /// is draining its write buffer after input stopped.
    pub const NONE: Interest = Interest(0);
    pub const READABLE: Interest = Interest(1);
    pub const WRITABLE: Interest = Interest(2);

    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable — includes error/hangup so a subsequent `read` observes
    /// the EOF or error instead of the event being silently dropped.
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    pub fn is_writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0
    }

    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }

    /// Peer closed (full or write half).
    pub fn is_hangup(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// Reusable event buffer for [`Poll::poll`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) struct before use.
            let bits = raw.events;
            let data = raw.data;
            Event {
                token: Token(data as usize),
                bits,
            }
        })
    }
}

/// The readiness selector: an epoll instance.
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            epfd: sys::epoll_create()?,
        })
    }

    /// Starts watching `fd` with the given token and interest. The fd must
    /// be nonblocking (the shim does not set it — std's `set_nonblocking`
    /// covers every socket type, and the eventfd waker is born nonblocking).
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest.epoll_bits(),
            token.0 as u64,
        )
    }

    /// Changes the token/interest of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest.epoll_bits(),
            token.0 as u64,
        )
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until events arrive or `timeout` elapses (`None` = forever).
    /// Returns the number of events written into `events`.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            Some(t) => {
                let ms = t.as_millis();
                // Round up so a sub-millisecond timeout does not spin at 0.
                let ms = if ms == 0 && !t.is_zero() { 1 } else { ms };
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
            None => -1,
        };
        events.len = sys::epoll_wait_events(self.epfd, &mut events.buf, timeout_ms)?;
        Ok(events.len)
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Cross-thread wakeup: an eventfd registered with the poll under a fixed
/// token. Any thread may call [`wake`](Waker::wake); the poll loop drains
/// it with [`drain`](Waker::drain) when the token's event fires.
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let efd = sys::eventfd_new()?;
        poll.register(efd, token, Interest::READABLE)?;
        Ok(Waker { efd })
    }

    pub fn wake(&self) -> io::Result<()> {
        sys::eventfd_signal(self.efd)
    }

    /// Resets the wake counter; call once per delivered wake event.
    pub fn drain(&self) {
        sys::eventfd_drain(self.efd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.efd);
    }
}

// Waker is written from worker threads while the poll loop owns everything
// else; the underlying eventfd write is atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}
