//! Raw Linux syscall bindings for the epoll shim.
//!
//! The build environment has no crates registry, so instead of `libc`/`mio`
//! this module declares the handful of C symbols the reactor needs —
//! `epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd` for the cross-thread
//! waker, and `read`/`write`/`close` for the eventfd itself. std already
//! links libc, so the declarations resolve against the same symbols std
//! uses; everything here is Linux-only by construction (the workspace
//! targets the paper's platform lineage, and CI runs on Linux).

use std::io;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const RLIMIT_NOFILE: i32 = 7;

/// `struct epoll_event`. The kernel packs it on x86_64 (the `data` field
/// sits at offset 4); other architectures use natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub fn epoll_create() -> io::Result<i32> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

pub fn epoll_control(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    let evp = if op == EPOLL_CTL_DEL {
        std::ptr::null_mut()
    } else {
        &mut ev as *mut EpollEvent
    };
    cvt(unsafe { epoll_ctl(epfd, op, fd, evp) }).map(|_| ())
}

/// Waits for events; retries `EINTR` internally. `timeout_ms` of `-1`
/// blocks indefinitely.
pub fn epoll_wait_events(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

pub fn eventfd_new() -> io::Result<i32> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Adds 1 to the eventfd counter, making it readable.
pub fn eventfd_signal(fd: i32) -> io::Result<()> {
    let one: u64 = 1;
    let n = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    // EAGAIN means the counter is already at its max — the fd is readable,
    // which is all a wake needs.
    if n == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Resets the eventfd counter to zero (nonblocking reads drain it in one
/// call).
pub fn eventfd_drain(fd: i32) {
    let mut buf: u64 = 0;
    unsafe { read(fd, (&mut buf as *mut u64).cast(), 8) };
}

pub fn close_fd(fd: i32) {
    unsafe { close(fd) };
}

/// Raises the soft `RLIMIT_NOFILE` toward `target` (clamped to the hard
/// limit) and returns the resulting soft limit. High-concurrency harnesses
/// call this before opening tens of thousands of sockets.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = target.min(lim.rlim_max);
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(lim.rlim_cur)
}
